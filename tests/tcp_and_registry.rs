//! End-to-end over real sockets: a pool hosted on one `TcpHost`, a client
//! on another, with discovery through the RMI registry.

mod common;

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use elasticrmi::{
    decode_args, encode_result, ClientLb, ElasticPool, ElasticService, InvocationContext,
    PoolConfig, PoolDeps, RegistryClient, RegistryServer, RemoteError, RmiMessage, Semantics,
    ServiceContext, Skeleton, Stub,
};
use erm_cluster::{ClusterConfig, ClusterHandle, LatencyModel, ResourceManager};
use erm_kvstore::{Store, StoreConfig};
use erm_metrics::{MetricsHandle, TraceHandle};
use erm_sim::{SimDuration, SystemClock};
use erm_transport::{Network, TcpHost};

struct Adder;
impl ElasticService for Adder {
    fn dispatch(
        &mut self,
        method: &str,
        args: &[u8],
        _ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError> {
        match method {
            "add" => {
                let (a, b): (i64, i64) = decode_args(method, args)?;
                encode_result(&(a + b))
            }
            other => Err(RemoteError::no_such_method(other)),
        }
    }
}

#[test]
fn pool_and_registry_work_across_tcp_hosts() {
    // Server machine.
    let server_host = Arc::new(TcpHost::bind("127.0.0.1:0", 0).unwrap());
    let deps = PoolDeps {
        cluster: ClusterHandle::new(ResourceManager::new(ClusterConfig {
            provisioning: LatencyModel::instant(),
            ..ClusterConfig::default()
        })),
        net: server_host.clone(),
        store: Arc::new(Store::new(StoreConfig::default())),
        clock: Arc::new(SystemClock::new()),
        trace: TraceHandle::disabled(),
        metrics: MetricsHandle::disabled(),
    };
    let mut pool = ElasticPool::instantiate(
        PoolConfig::builder("Adder")
            .min_pool_size(2)
            .max_pool_size(4)
            .build()
            .unwrap(),
        Arc::new(|| Box::new(Adder)),
        deps,
        None,
    )
    .unwrap();

    // Registry runs on the server machine; the pool binds itself.
    let registry = RegistryServer::spawn(server_host.clone());
    {
        let mut binder = RegistryClient::connect(server_host.clone(), registry.endpoint());
        assert!(binder.bind("adder", pool.sentinel()).unwrap());
    }

    // Client machine: the single out-of-band fact it needs is the server's
    // address (as with rmiregistry's host:port). One host route covers the
    // registry, the sentinel, and every member the pool ever adds; the
    // reply route back to us is learned from the advertised sender address
    // on our own frames.
    let client_host = Arc::new(TcpHost::bind("127.0.0.1:0", 1).unwrap());
    client_host.register_host(0, server_host.local_addr());
    let mut lookup = RegistryClient::connect(client_host.clone(), registry.endpoint());

    let sentinel = lookup.lookup("adder").unwrap().expect("bound name");
    assert_eq!(sentinel, pool.sentinel());

    let (client_ep, client_mailbox) = client_host.open_endpoint();
    let net: Arc<dyn Network> = client_host.clone();
    let mut stub = Stub::connect(
        net,
        client_ep,
        client_mailbox,
        sentinel,
        ClientLb::RoundRobin,
        Arc::new(SystemClock::new()),
    )
    .expect("stub connects over TCP");

    for i in 0..20i64 {
        let sum: i64 = stub.invoke("add", &(i, 1000 - i)).unwrap();
        assert_eq!(sum, 1000);
    }

    pool.shutdown();
    registry.shutdown();
    server_host.shutdown();
    client_host.shutdown();
}

#[test]
fn registry_over_inproc_reaches_pool() {
    // Same flow on the in-process network, exercising the lookup-then
    // -connect path the examples use.
    let deps = common::fast_deps();
    let net = deps.net.clone();
    let mut pool = ElasticPool::instantiate(
        PoolConfig::builder("Adder").build().unwrap(),
        Arc::new(|| Box::new(Adder)),
        deps,
        None,
    )
    .unwrap();
    let registry = RegistryServer::spawn(net.clone());
    let mut client = RegistryClient::connect(net.clone(), registry.endpoint());
    client.bind("adder", pool.sentinel()).unwrap();

    let sentinel = client.lookup("adder").unwrap().unwrap();
    let (ep, mailbox) = erm_transport::Host::open(net.as_ref());
    let mut stub = Stub::connect(
        net as Arc<dyn Network>,
        ep,
        mailbox,
        sentinel,
        ClientLb::RoundRobin,
        Arc::new(SystemClock::new()),
    )
    .unwrap();
    let sum: i64 = stub.invoke("add", &(40i64, 2i64)).unwrap();
    assert_eq!(sum, 42);
    pool.shutdown();
    registry.shutdown();
}

/// Counts how many times `count` actually executes, so a duplicate that
/// slips past the reply cache shows up as a second increment.
struct CountingService {
    executions: Arc<AtomicU32>,
}
impl ElasticService for CountingService {
    fn dispatch(
        &mut self,
        method: &str,
        _args: &[u8],
        _ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError> {
        match method {
            "count" => encode_result(&(self.executions.fetch_add(1, Ordering::SeqCst) + 1)),
            other => Err(RemoteError::no_such_method(other)),
        }
    }
}

#[test]
fn at_most_once_survives_tcp_reconnect() {
    // A client loses its TCP connection after the server executed its
    // at-most-once request but before the reply landed. The retry arrives
    // over a *new* connection (fresh host, fresh endpoint) carrying the
    // same (origin, invocation id) identity — the skeleton must replay the
    // cached reply to the new transport address, not execute again.
    let clock: erm_sim::SharedClock = Arc::new(SystemClock::new());
    let executions = Arc::new(AtomicU32::new(0));

    // Server machine: one standalone skeleton serving the counting method.
    let server_host = Arc::new(TcpHost::bind("127.0.0.1:0", 0).unwrap());
    let (server_ep, server_mailbox) = server_host.open_endpoint();
    let (ctl_ep, _ctl_mailbox) = server_host.open_endpoint();
    let ctx = ServiceContext::new(
        Arc::new(Store::new(StoreConfig::default())),
        "Count",
        0,
        Arc::clone(&clock),
        Arc::new(AtomicU32::new(1)),
    );
    let skeleton = Skeleton::new(
        0,
        server_ep,
        ctl_ep,
        server_host.clone(),
        Arc::clone(&clock),
        Box::new(CountingService {
            executions: executions.clone(),
        }),
        ctx,
        TraceHandle::disabled(),
        None,
    );
    let join = std::thread::spawn(move || skeleton.run(server_mailbox));

    let deadline = clock.now() + SimDuration::from_secs(30);
    let context = InvocationContext {
        id: 42,
        deadline,
        attempt: 1,
        origin: erm_transport::EndpointId(0), // patched per attempt below
        semantics: Semantics::AtMostOnce,
    };

    // First connection: send the request, receive the reply... and "lose"
    // it — from the stub's point of view the connection died before the
    // response arrived, so the invocation is still unresolved.
    let host_a = Arc::new(TcpHost::bind("127.0.0.1:0", 1).unwrap());
    host_a.register_host(0, server_host.local_addr());
    let (ep_a, mb_a) = host_a.open_endpoint();
    let first = RmiMessage::Request {
        call: 1,
        context: InvocationContext {
            origin: ep_a,
            ..context
        },
        method: "count".to_string(),
        args: Vec::new(),
    };
    host_a.send(ep_a, server_ep, first.encode()).unwrap();
    let lost = mb_a.recv_timeout(Duration::from_secs(5)).unwrap();
    let lost_payload = match RmiMessage::decode(&lost.payload).unwrap() {
        RmiMessage::Response {
            call: 1,
            outcome: Ok(bytes),
            replayed: false,
        } => bytes,
        other => panic!("expected fresh Ok response, got {other:?}"),
    };
    host_a.shutdown(); // connection gone

    // Second connection: a new host (think: reconnected socket, new source
    // port) retries the same invocation. The wire-level sender is the new
    // endpoint, but `context.origin` still names the stub that issued the
    // invocation — that is the dedup key.
    let host_b = Arc::new(TcpHost::bind("127.0.0.1:0", 2).unwrap());
    host_b.register_host(0, server_host.local_addr());
    let (ep_b, mb_b) = host_b.open_endpoint();
    let retry = RmiMessage::Request {
        call: 2,
        context: InvocationContext {
            origin: ep_a,
            attempt: 2,
            ..context
        },
        method: "count".to_string(),
        args: Vec::new(),
    };
    host_b.send(ep_b, server_ep, retry.encode()).unwrap();
    let replay = mb_b.recv_timeout(Duration::from_secs(5)).unwrap();
    match RmiMessage::decode(&replay.payload).unwrap() {
        RmiMessage::Response {
            call: 2,
            outcome: Ok(bytes),
            replayed: true,
        } => assert_eq!(bytes, lost_payload, "replay must be byte-identical"),
        other => panic!("expected replayed Ok response, got {other:?}"),
    }
    assert_eq!(
        executions.load(Ordering::SeqCst),
        1,
        "the method body must have run exactly once across the reconnect"
    );

    server_host
        .send(ctl_ep, server_ep, RmiMessage::Shutdown.encode())
        .unwrap();
    join.join().unwrap();
    server_host.shutdown();
    host_b.shutdown();
}
