//! End-to-end over real sockets: a pool hosted on one `TcpHost`, a client
//! on another, with discovery through the RMI registry.

mod common;

use std::sync::Arc;

use elasticrmi::{
    decode_args, encode_result, ClientLb, ElasticPool, ElasticService, PoolConfig, PoolDeps,
    RegistryClient, RegistryServer, RemoteError, ServiceContext, Stub,
};
use erm_cluster::{ClusterConfig, ClusterHandle, LatencyModel, ResourceManager};
use erm_kvstore::{Store, StoreConfig};
use erm_metrics::{MetricsHandle, TraceHandle};
use erm_sim::SystemClock;
use erm_transport::{Network, TcpHost};

struct Adder;
impl ElasticService for Adder {
    fn dispatch(
        &mut self,
        method: &str,
        args: &[u8],
        _ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError> {
        match method {
            "add" => {
                let (a, b): (i64, i64) = decode_args(method, args)?;
                encode_result(&(a + b))
            }
            other => Err(RemoteError::no_such_method(other)),
        }
    }
}

#[test]
fn pool_and_registry_work_across_tcp_hosts() {
    // Server machine.
    let server_host = Arc::new(TcpHost::bind("127.0.0.1:0", 0).unwrap());
    let deps = PoolDeps {
        cluster: ClusterHandle::new(ResourceManager::new(ClusterConfig {
            provisioning: LatencyModel::instant(),
            ..ClusterConfig::default()
        })),
        net: server_host.clone(),
        store: Arc::new(Store::new(StoreConfig::default())),
        clock: Arc::new(SystemClock::new()),
        trace: TraceHandle::disabled(),
        metrics: MetricsHandle::disabled(),
    };
    let mut pool = ElasticPool::instantiate(
        PoolConfig::builder("Adder")
            .min_pool_size(2)
            .max_pool_size(4)
            .build()
            .unwrap(),
        Arc::new(|| Box::new(Adder)),
        deps,
        None,
    )
    .unwrap();

    // Registry runs on the server machine; the pool binds itself.
    let registry = RegistryServer::spawn(server_host.clone());
    {
        let mut binder = RegistryClient::connect(server_host.clone(), registry.endpoint());
        assert!(binder.bind("adder", pool.sentinel()).unwrap());
    }

    // Client machine: the single out-of-band fact it needs is the server's
    // address (as with rmiregistry's host:port). One host route covers the
    // registry, the sentinel, and every member the pool ever adds; the
    // reply route back to us is learned from the advertised sender address
    // on our own frames.
    let client_host = Arc::new(TcpHost::bind("127.0.0.1:0", 1).unwrap());
    client_host.register_host(0, server_host.local_addr());
    let mut lookup = RegistryClient::connect(client_host.clone(), registry.endpoint());

    let sentinel = lookup.lookup("adder").unwrap().expect("bound name");
    assert_eq!(sentinel, pool.sentinel());

    let (client_ep, client_mailbox) = client_host.open_endpoint();
    let net: Arc<dyn Network> = client_host.clone();
    let mut stub = Stub::connect(
        net,
        client_ep,
        client_mailbox,
        sentinel,
        ClientLb::RoundRobin,
        Arc::new(SystemClock::new()),
    )
    .expect("stub connects over TCP");

    for i in 0..20i64 {
        let sum: i64 = stub.invoke("add", &(i, 1000 - i)).unwrap();
        assert_eq!(sum, 1000);
    }

    pool.shutdown();
    registry.shutdown();
    server_host.shutdown();
    client_host.shutdown();
}

#[test]
fn registry_over_inproc_reaches_pool() {
    // Same flow on the in-process network, exercising the lookup-then
    // -connect path the examples use.
    let deps = common::fast_deps();
    let net = deps.net.clone();
    let mut pool = ElasticPool::instantiate(
        PoolConfig::builder("Adder").build().unwrap(),
        Arc::new(|| Box::new(Adder)),
        deps,
        None,
    )
    .unwrap();
    let registry = RegistryServer::spawn(net.clone());
    let mut client = RegistryClient::connect(net.clone(), registry.endpoint());
    client.bind("adder", pool.sentinel()).unwrap();

    let sentinel = client.lookup("adder").unwrap().unwrap();
    let (ep, mailbox) = erm_transport::Host::open(net.as_ref());
    let mut stub = Stub::connect(
        net as Arc<dyn Network>,
        ep,
        mailbox,
        sentinel,
        ClientLb::RoundRobin,
        Arc::new(SystemClock::new()),
    )
    .unwrap();
    let sum: i64 = stub.invoke("add", &(40i64, 2i64)).unwrap();
    assert_eq!(sum, 42);
    pool.shutdown();
    registry.shutdown();
}
