//! Elasticity of the *threaded* runtime under actual request load: the
//! implicit CPU policy reacts to measured busy time, and the shared store
//! auto-scales with the pool (§4.2).

mod common;

use std::sync::Arc;

use common::{pool_with, wait_until};
use elasticrmi::{
    encode_result, ClientLb, ElasticService, MethodCallStats, PoolConfig, RemoteError,
    ScalingPolicy, ServiceContext,
};
use erm_sim::{SimDuration, SimTime};
use erm_workloads::{ArrivalProcess, PatternKind, Workload};

/// A service that burns ~2 ms of wall clock per call, so offered load maps
/// to busy fraction the way CPU utilization does on a real node.
struct SlowEcho;
impl ElasticService for SlowEcho {
    fn dispatch(
        &mut self,
        method: &str,
        _args: &[u8],
        ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError> {
        match method {
            "work" => {
                std::thread::sleep(std::time::Duration::from_millis(2));
                encode_result(&ctx.uid())
            }
            other => Err(RemoteError::no_such_method(other)),
        }
    }
}

#[test]
fn implicit_policy_grows_under_sustained_load() {
    // 2 members × 2 ms/call saturate at ~1000 calls/s; we push enough
    // round-robin traffic that average busy fraction exceeds the implicit
    // 90% threshold, and the pool must grow without any explicit votes.
    let config = PoolConfig::builder("SlowEcho")
        .min_pool_size(2)
        .max_pool_size(6)
        .policy(ScalingPolicy::Implicit)
        .burst_interval(SimDuration::from_millis(200))
        .build()
        .unwrap();
    let (mut pool, _deps) = pool_with(config, Arc::new(|| Box::new(SlowEcho)));
    assert_eq!(pool.size(), 2);

    let grew = drive_until(&pool, 10, |size| size > 2);
    assert!(
        grew,
        "implicit CPU policy should add capacity, size {}",
        pool.size()
    );
    pool.shutdown();
}

/// Hammers the pool with 8 concurrent closed-loop clients until `done(size)`
/// or the timeout; returns whether the condition was met.
fn drive_until(pool: &elasticrmi::ElasticPool, secs: u64, done: impl Fn(u32) -> bool) -> bool {
    use std::sync::atomic::{AtomicBool, Ordering};
    let stop = Arc::new(AtomicBool::new(false));
    let mut clients = Vec::new();
    for c in 0..8u64 {
        let mut stub = pool.stub(ClientLb::Random { seed: c }).unwrap();
        stub.set_reply_timeout(erm_sim::SimDuration::from_secs(2));
        let stop = Arc::clone(&stop);
        clients.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let _: Result<u64, _> = stub.invoke("work", &());
            }
        }));
    }
    let ok = common::wait_until(secs, || done(pool.size()));
    stop.store(true, Ordering::Relaxed);
    for c in clients {
        let _ = c.join();
    }
    ok
}

#[test]
fn idle_pool_shrinks_back_under_implicit_policy() {
    let config = PoolConfig::builder("SlowEcho")
        .min_pool_size(2)
        .max_pool_size(6)
        .policy(ScalingPolicy::Implicit)
        .burst_interval(SimDuration::from_millis(150))
        .build()
        .unwrap();
    let (mut pool, _deps) = pool_with(config, Arc::new(|| Box::new(SlowEcho)));
    // Push hard to grow...
    let grew = drive_until(&pool, 10, |size| size >= 3);
    if grew {
        // ...then go silent: busy fraction falls below 60% and the pool
        // steps back down, one object per burst interval.
        assert!(
            wait_until(10, || pool.size() == 2),
            "idle pool should shrink to min, size {}",
            pool.size()
        );
    }
    pool.shutdown();
}

#[test]
fn store_scales_with_the_pool() {
    // §4.2: the runtime adds store nodes as the pool grows.
    use std::sync::atomic::{AtomicI32, Ordering};
    struct Voted(Arc<AtomicI32>);
    impl ElasticService for Voted {
        fn dispatch(
            &mut self,
            m: &str,
            _a: &[u8],
            _c: &mut ServiceContext,
        ) -> Result<Vec<u8>, RemoteError> {
            Err(RemoteError::no_such_method(m))
        }
        fn change_pool_size(&mut self, _s: &MethodCallStats, _c: &mut ServiceContext) -> i32 {
            self.0.load(Ordering::SeqCst)
        }
    }
    let vote = Arc::new(AtomicI32::new(0));
    let fv = Arc::clone(&vote);
    let config = PoolConfig::builder("Voted")
        .min_pool_size(2)
        .max_pool_size(20)
        .policy(ScalingPolicy::FineGrained)
        .burst_interval(SimDuration::from_millis(100))
        .build()
        .unwrap();
    let (mut pool, deps) = pool_with(config, Arc::new(move || Box::new(Voted(Arc::clone(&fv)))));
    assert_eq!(deps.store.nodes(), 1, "store starts on one node");
    vote.store(8, std::sync::atomic::Ordering::SeqCst);
    assert!(wait_until(15, || pool.size() == 20));
    assert!(
        deps.store.nodes() >= 3,
        "store should have grown with the pool, nodes {}",
        deps.store.nodes()
    );
    pool.shutdown();
}

#[test]
fn arrival_process_drives_a_real_pool() {
    // Open-loop: the Fig. 7a pattern (scaled down) generates request counts
    // per window, and every generated request executes on the pool.
    let config = PoolConfig::builder("SlowEcho")
        .min_pool_size(2)
        .max_pool_size(4)
        .build()
        .unwrap();
    let (mut pool, _deps) = pool_with(config, Arc::new(|| Box::new(SlowEcho)));
    let mut stub = pool.stub(ClientLb::RoundRobin).unwrap();
    stub.set_reply_timeout(erm_sim::SimDuration::from_secs(2));

    let workload = Workload::paper_pattern(PatternKind::Abrupt, 40.0); // tiny peak
    let mut arrivals = ArrivalProcess::new(workload, 7);
    let mut served = 0u64;
    // Sample three windows from different phases of the pattern.
    for minute in [0u64, 155, 225] {
        let n = arrivals.count_in(SimTime::from_minutes(minute), SimDuration::from_secs(1));
        for _ in 0..n.min(60) {
            let _: u64 = stub.invoke("work", &()).unwrap();
            served += 1;
        }
    }
    assert!(
        served > 0,
        "the pattern generated traffic and the pool served it"
    );
    pool.shutdown();
}
