//! Randomized tests of the core invariants, spanning crates: codec
//! roundtrips, bin-packing conservation, scaling-engine bounds,
//! agility-metric identities, lock exclusivity, and workload sanity.
//!
//! Formerly proptest properties; now seeded deterministic sweeps (the
//! offline build environment cannot fetch proptest), preserving the same
//! invariants over a few hundred random cases each.

mod common;

use std::collections::HashMap;

use elasticrmi::balance::{apply_plan, plan_redirects, MemberLoad};
use elasticrmi::{PoolConfig, PoolSample, ScalingEngine, ScalingPolicy};
use erm_kvstore::{LockOwner, Store, StoreConfig};
use erm_metrics::AgilityMeter;
use erm_sim::{SimDuration, SimTime};
use erm_transport::EndpointId;
use erm_workloads::{PatternKind, WorkloadBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct Nested {
    id: u64,
    name: String,
    values: Vec<i32>,
    tag: Option<(bool, char)>,
    map: HashMap<String, u16>,
}

fn rand_char(rng: &mut StdRng) -> char {
    loop {
        if let Some(c) = char::from_u32(rng.gen_range(0u32..=0x10FFFF)) {
            return c;
        }
    }
}

fn rand_string(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0usize..=max_len);
    (0..len).map(|_| rand_char(rng)).collect()
}

fn rand_nested(rng: &mut StdRng) -> Nested {
    let values: Vec<i32> = (0..rng.gen_range(0usize..16)).map(|_| rng.gen()).collect();
    let tag = if rng.gen() {
        Some((rng.gen::<bool>(), rand_char(rng)))
    } else {
        None
    };
    let map: HashMap<String, u16> = (0..rng.gen_range(0usize..8))
        .map(|_| (rand_string(rng, 8), rng.gen()))
        .collect();
    Nested {
        id: rng.gen(),
        name: rand_string(rng, 32),
        values,
        tag,
        map,
    }
}

/// The wire codec is lossless for arbitrary nested data.
#[test]
fn codec_roundtrips_arbitrary_structs() {
    let mut rng = StdRng::seed_from_u64(0xC0DEC);
    for _ in 0..200 {
        let value = rand_nested(&mut rng);
        let bytes = erm_transport::to_bytes(&value).unwrap();
        let back: Nested = erm_transport::from_bytes(&bytes).unwrap();
        assert_eq!(back, value);
    }
}

/// Decoding never panics on arbitrary garbage — it returns errors.
#[test]
fn codec_decode_never_panics() {
    let mut rng = StdRng::seed_from_u64(0x6A4BA6E);
    for _ in 0..300 {
        let len = rng.gen_range(0usize..256);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let _ = erm_transport::from_bytes::<Nested>(&bytes);
        let _ = erm_transport::from_bytes::<Vec<String>>(&bytes);
        let _ = elasticrmi::RmiMessage::decode(&bytes);
    }
}

/// Bin packing conserves work, never overloads a receiver, and never moves
/// work from a member at or under capacity.
#[test]
fn bin_packing_invariants() {
    let mut rng = StdRng::seed_from_u64(0xB14);
    for _ in 0..300 {
        let n = rng.gen_range(2usize..24);
        let capacity = rng.gen_range(1u32..40);
        let loads: Vec<MemberLoad> = (0..n)
            .map(|i| MemberLoad {
                endpoint: EndpointId(i as u64),
                pending: rng.gen_range(0u32..60),
            })
            .collect();
        let plan = plan_redirects(&loads, capacity);
        let after = apply_plan(&loads, &plan);
        // Conservation.
        let before_total: u64 = loads.iter().map(|m| u64::from(m.pending)).sum();
        let after_total: u64 = after.iter().map(|m| u64::from(m.pending)).sum();
        assert_eq!(before_total, after_total);
        for (orig, new) in loads.iter().zip(&after) {
            if orig.pending <= capacity {
                // Underloaded members only ever gain, and never past capacity.
                assert!(new.pending >= orig.pending);
                assert!(new.pending <= capacity.max(orig.pending));
            } else {
                // Overloaded members only ever shed, and never below capacity.
                assert!(new.pending <= orig.pending);
                assert!(new.pending >= capacity);
            }
        }
    }
}

/// Whatever the sample says, the engine never drives the pool outside its
/// configured bounds.
#[test]
fn scaling_engine_respects_bounds() {
    let mut rng = StdRng::seed_from_u64(0x5CA1E);
    for _ in 0..200 {
        let pool_size = rng.gen_range(0u32..100);
        let cpu = rng.gen_range(0.0f32..100.0);
        let ram = rng.gen_range(0.0f32..100.0);
        let votes: Vec<i32> = (0..rng.gen_range(0usize..16))
            .map(|_| rng.gen_range(-8i32..8))
            .collect();
        let min = rng.gen_range(2u32..10);
        let max = min + rng.gen_range(0u32..40);
        for policy in [
            ScalingPolicy::Implicit,
            ScalingPolicy::FineGrained,
            ScalingPolicy::AppLevel,
        ] {
            let config = PoolConfig::builder("P")
                .min_pool_size(min)
                .max_pool_size(max)
                .policy(policy)
                .build()
                .unwrap();
            let engine = ScalingEngine::new(config, SimTime::ZERO);
            let sample = PoolSample {
                pool_size,
                avg_cpu: cpu,
                avg_ram: ram,
                fine_votes: votes.clone(),
                desired_size: Some(pool_size / 2),
                ..PoolSample::default()
            };
            let target = i64::from(pool_size) + engine.decide(&sample).delta();
            assert!(
                (i64::from(min)..=i64::from(max)).contains(&target)
                    // From outside the bounds the engine moves toward them,
                    // never further away.
                    || (pool_size > max && target <= i64::from(pool_size))
                    || (pool_size < min && target >= i64::from(pool_size)),
                "policy {policy:?}: size {pool_size} -> target {target} outside [{min},{max}]"
            );
        }
    }
}

/// Agility is non-negative and equals mean excess + mean shortage.
#[test]
fn agility_identity() {
    let mut rng = StdRng::seed_from_u64(0xA611);
    for case in 0..100 {
        let n = rng.gen_range(1usize..200);
        // Every eighth case is perfectly provisioned (req == cap).
        let perfect = case % 8 == 0;
        let samples: Vec<(f64, f64)> = (0..n)
            .map(|_| {
                let req = rng.gen_range(0.0f64..50.0);
                let cap = if perfect {
                    req
                } else {
                    rng.gen_range(0.0f64..50.0)
                };
                (req, cap)
            })
            .collect();
        let mut meter =
            AgilityMeter::new(SimDuration::from_minutes(1), SimDuration::from_minutes(10));
        for (i, &(req, cap)) in samples.iter().enumerate() {
            meter.record(SimTime::from_minutes(i as u64), req, cap);
        }
        let report = meter.finish();
        assert!(report.mean_agility() >= 0.0);
        let identity = report.mean_excess() + report.mean_shortage();
        assert!((report.mean_agility() - identity).abs() < 1e-9);
        // Perfect provisioning iff agility is zero.
        if perfect {
            assert_eq!(report.mean_agility(), 0.0);
        }
    }
}

/// At most one owner ever holds a lock, whatever the operation order.
#[test]
fn lock_exclusivity() {
    let mut rng = StdRng::seed_from_u64(0x10CC);
    for _ in 0..100 {
        let store = Store::new(StoreConfig::default());
        let ttl = SimDuration::from_secs(10);
        let mut holder: Option<(u64, u64)> = None; // (owner, acquired_at)
        let mut clock = 0u64;
        let ops = rng.gen_range(1usize..64);
        for _ in 0..ops {
            let owner = rng.gen_range(0u64..4);
            let action = rng.gen_range(0u64..3);
            clock += rng.gen_range(0u64..100);
            let now = SimTime::from_secs(clock);
            let expired = holder.is_some_and(|(_, at)| clock >= at + 10);
            match action {
                0 | 1 => {
                    let got = store.try_lock("L", LockOwner::new(owner), now, ttl);
                    let expect = match holder {
                        None => true,
                        Some((h, _)) => h == owner || expired,
                    };
                    assert_eq!(got, expect, "owner {owner} at t={clock}");
                    if got {
                        holder = Some((owner, clock));
                    }
                }
                _ => {
                    let ok = store.unlock("L", LockOwner::new(owner)).is_ok();
                    assert_eq!(ok, holder.is_some_and(|(h, _)| h == owner));
                    if ok {
                        holder = None;
                    }
                }
            }
        }
    }
}

/// Workload patterns are bounded by their peak and non-negative.
#[test]
fn workload_bounds() {
    let mut rng = StdRng::seed_from_u64(0xF10F);
    for _ in 0..200 {
        let peak = rng.gen_range(1.0f64..1e6);
        let noise = rng.gen_range(0.0f64..0.3);
        let seed: u64 = rng.gen();
        let minute = rng.gen_range(0u64..500);
        for kind in [PatternKind::Abrupt, PatternKind::Cyclic] {
            let w = WorkloadBuilder::new(kind, peak)
                .noise(noise)
                .seed(seed)
                .build();
            let r = w.noisy_rate_at(SimTime::from_minutes(minute));
            assert!(r >= 0.0);
            assert!(r <= w.peak() * (1.0 + noise) + 1e-6);
        }
    }
}

/// Store versions increase by exactly one per successful write.
#[test]
fn store_version_monotonicity() {
    let mut rng = StdRng::seed_from_u64(0x5704E);
    for _ in 0..50 {
        let store = Store::new(StoreConfig::default());
        let mut expected: HashMap<String, u64> = HashMap::new();
        let n = rng.gen_range(1usize..50);
        for _ in 0..n {
            let key = rand_string(&mut rng, 8);
            let v = store.put(&key, vec![1]);
            let e = expected.entry(key).or_insert(0);
            *e += 1;
            assert_eq!(v, *e);
        }
    }
}

/// No invocation is lost or duplicated when `Overloaded` rejections,
/// rebalance sheds, drain redirects, and deadline expiries interleave:
/// every request the client sends gets exactly one terminal reply
/// (`Response`, `Redirected`, or `Overloaded`).
#[test]
fn skeleton_conserves_invocations_under_overload() {
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    use elasticrmi::{
        AdmissionConfig, InvocationContext, MemberState, RmiMessage, ServiceContext, Skeleton,
    };
    use erm_metrics::TraceHandle;
    use erm_sim::{Clock, SharedClock, VirtualClock};
    use erm_transport::{Host, InProcNetwork};

    struct Null;
    impl elasticrmi::ElasticService for Null {
        fn dispatch(
            &mut self,
            _method: &str,
            _args: &[u8],
            _ctx: &mut ServiceContext,
        ) -> Result<Vec<u8>, elasticrmi::RemoteError> {
            Ok(Vec::new())
        }
    }

    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0xADC0 ^ (seed.wrapping_mul(0x9E37_79B9)));
        let net = InProcNetwork::new();
        let (skel_ep, skel_mb) = net.open();
        let (client_ep, client_mb) = net.open();
        let (runtime_ep, _runtime_mb) = net.open();
        let (peer_ep, _peer_mb) = net.open();
        let clock = Arc::new(VirtualClock::new());
        let ctx = ServiceContext::new(
            Arc::new(Store::new(StoreConfig::default())),
            "P",
            0,
            Arc::<VirtualClock>::clone(&clock) as SharedClock,
            Arc::new(AtomicU32::new(1)),
        );
        let capacity = rng.gen_range(1u32..6);
        let admission = if rng.gen() {
            AdmissionConfig::fifo(capacity)
        } else {
            AdmissionConfig::edf(capacity)
        };
        let mut sk = Skeleton::new(
            0,
            skel_ep,
            runtime_ep,
            Arc::new(net.clone()),
            Arc::<VirtualClock>::clone(&clock) as SharedClock,
            Box::new(Null),
            ctx,
            TraceHandle::disabled(),
            Some(admission),
        );
        // A peer so drain-time redirects have somewhere to point.
        sk.ingest(
            client_ep,
            RmiMessage::StateBroadcast {
                epoch: 1,
                sentinel_uid: 0,
                members: vec![
                    MemberState {
                        endpoint: skel_ep,
                        uid: 0,
                        pending: 0,
                    },
                    MemberState {
                        endpoint: peer_ep,
                        uid: 1,
                        pending: 0,
                    },
                ],
            },
            &skel_mb,
        );

        let mut sent: Vec<u64> = Vec::new();
        let mut next_call = 0u64;
        let ops = rng.gen_range(20usize..120);
        for _ in 0..ops {
            match rng.gen_range(0u32..10) {
                // Mostly requests, some born expired, some with tight
                // deadlines that lapse mid-run.
                0..=5 => {
                    let call = next_call;
                    next_call += 1;
                    let now = clock.now();
                    let deadline = if rng.gen_range(0u32..8) == 0 {
                        now // dead on arrival
                    } else {
                        now + SimDuration::from_millis(rng.gen_range(1u64..500))
                    };
                    sent.push(call);
                    sk.ingest(
                        client_ep,
                        RmiMessage::Request {
                            call,
                            context: InvocationContext {
                                semantics: elasticrmi::Semantics::AtLeastOnce,
                                id: call,
                                deadline,
                                attempt: 1,
                                origin: client_ep,
                            },
                            method: "noop".into(),
                            args: Vec::new(),
                        },
                        &skel_mb,
                    );
                }
                // Rebalance quota: the next few requests are shed.
                6 => {
                    sk.ingest(
                        client_ep,
                        RmiMessage::Rebalance {
                            to: peer_ep,
                            count: rng.gen_range(1u32..4),
                        },
                        &skel_mb,
                    );
                }
                // Time passes; queued work may expire.
                7 => {
                    clock.advance(SimDuration::from_millis(rng.gen_range(1u64..400)));
                }
                // Execute or cull a bit.
                8 => {
                    let steps = rng.gen_range(1usize..4);
                    for _ in 0..steps {
                        sk.step();
                    }
                }
                // Rarely, a drain starts mid-stream; later requests are
                // redirected away, queued work still completes.
                _ => {
                    if rng.gen_range(0u32..4) == 0 {
                        sk.ingest(client_ep, RmiMessage::Shutdown, &skel_mb);
                    }
                }
            }
        }
        // Drain everything still queued.
        while sk.step() {}
        clock.advance(SimDuration::from_secs(600));
        while sk.step() {}

        let mut replies: HashMap<u64, u32> = HashMap::new();
        while let Ok(d) = client_mb.try_recv() {
            match elasticrmi::RmiMessage::decode(&d.payload).unwrap() {
                RmiMessage::Response { call, .. }
                | RmiMessage::Redirected { call, .. }
                | RmiMessage::Overloaded { call, .. } => {
                    *replies.entry(call).or_insert(0) += 1;
                }
                _ => {}
            }
        }
        for call in &sent {
            assert_eq!(
                replies.get(call).copied().unwrap_or(0),
                1,
                "seed {seed}: call {call} must get exactly one terminal reply"
            );
        }
        assert_eq!(
            replies.len(),
            sent.len(),
            "seed {seed}: replies for calls never sent"
        );
    }
}
