//! Property-based tests of the core invariants, spanning crates:
//! codec roundtrips, bin-packing conservation, scaling-engine bounds,
//! agility-metric identities, lock exclusivity, and workload sanity.

mod common;

use std::collections::HashMap;

use elasticrmi::balance::{apply_plan, plan_redirects, MemberLoad};
use elasticrmi::{PoolConfig, PoolSample, ScalingEngine, ScalingPolicy};
use erm_kvstore::{LockOwner, Store, StoreConfig};
use erm_metrics::AgilityMeter;
use erm_sim::{SimDuration, SimTime};
use erm_transport::EndpointId;
use erm_workloads::{PatternKind, WorkloadBuilder};
use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct Nested {
    id: u64,
    name: String,
    values: Vec<i32>,
    tag: Option<(bool, char)>,
    map: HashMap<String, u16>,
}

fn nested_strategy() -> impl Strategy<Value = Nested> {
    (
        any::<u64>(),
        ".{0,32}",
        proptest::collection::vec(any::<i32>(), 0..16),
        proptest::option::of((any::<bool>(), any::<char>())),
        proptest::collection::hash_map(".{0,8}", any::<u16>(), 0..8),
    )
        .prop_map(|(id, name, values, tag, map)| Nested {
            id,
            name,
            values,
            tag,
            map,
        })
}

proptest! {
    /// The wire codec is lossless for arbitrary nested data.
    #[test]
    fn codec_roundtrips_arbitrary_structs(value in nested_strategy()) {
        let bytes = erm_transport::to_bytes(&value).unwrap();
        let back: Nested = erm_transport::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, value);
    }

    /// Decoding never panics on arbitrary garbage — it returns errors.
    #[test]
    fn codec_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = erm_transport::from_bytes::<Nested>(&bytes);
        let _ = erm_transport::from_bytes::<Vec<String>>(&bytes);
        let _ = elasticrmi::RmiMessage::decode(&bytes);
    }

    /// Bin packing conserves work, never overloads a receiver, and never
    /// moves work from a member at or under capacity.
    #[test]
    fn bin_packing_invariants(
        pendings in proptest::collection::vec(0u32..60, 2..24),
        capacity in 1u32..40,
    ) {
        let loads: Vec<MemberLoad> = pendings
            .iter()
            .enumerate()
            .map(|(i, &pending)| MemberLoad { endpoint: EndpointId(i as u64), pending })
            .collect();
        let plan = plan_redirects(&loads, capacity);
        let after = apply_plan(&loads, &plan);
        // Conservation.
        let before_total: u64 = loads.iter().map(|m| u64::from(m.pending)).sum();
        let after_total: u64 = after.iter().map(|m| u64::from(m.pending)).sum();
        prop_assert_eq!(before_total, after_total);
        for (orig, new) in loads.iter().zip(&after) {
            if orig.pending <= capacity {
                // Underloaded members only ever gain, and never past capacity.
                prop_assert!(new.pending >= orig.pending);
                prop_assert!(new.pending <= capacity.max(orig.pending));
            } else {
                // Overloaded members only ever shed, and never below capacity.
                prop_assert!(new.pending <= orig.pending);
                prop_assert!(new.pending >= capacity);
            }
        }
    }

    /// Whatever the sample says, the engine never drives the pool outside
    /// its configured bounds.
    #[test]
    fn scaling_engine_respects_bounds(
        pool_size in 0u32..100,
        cpu in 0.0f32..100.0,
        ram in 0.0f32..100.0,
        votes in proptest::collection::vec(-8i32..8, 0..16),
        min in 2u32..10,
        span in 0u32..40,
    ) {
        let max = min + span;
        for policy in [
            ScalingPolicy::Implicit,
            ScalingPolicy::FineGrained,
            ScalingPolicy::AppLevel,
        ] {
            let config = PoolConfig::builder("P")
                .min_pool_size(min)
                .max_pool_size(max)
                .policy(policy)
                .build()
                .unwrap();
            let engine = ScalingEngine::new(config, SimTime::ZERO);
            let sample = PoolSample {
                pool_size,
                avg_cpu: cpu,
                avg_ram: ram,
                fine_votes: votes.clone(),
                desired_size: Some(pool_size / 2),
            };
            let target = i64::from(pool_size) + engine.decide(&sample).delta();
            prop_assert!(
                (i64::from(min)..=i64::from(max)).contains(&target)
                    // From outside the bounds the engine moves toward them,
                    // never further away.
                    || (pool_size > max && target <= i64::from(pool_size))
                    || (pool_size < min && target >= i64::from(pool_size)),
                "policy {policy:?}: size {pool_size} -> target {target} outside [{min},{max}]"
            );
        }
    }

    /// Agility is non-negative and equals mean excess + mean shortage.
    #[test]
    fn agility_identity(
        samples in proptest::collection::vec((0.0f64..50.0, 0.0f64..50.0), 1..200),
    ) {
        let mut meter = AgilityMeter::new(
            SimDuration::from_minutes(1),
            SimDuration::from_minutes(10),
        );
        for (i, &(req, cap)) in samples.iter().enumerate() {
            meter.record(SimTime::from_minutes(i as u64), req, cap);
        }
        let report = meter.finish();
        prop_assert!(report.mean_agility() >= 0.0);
        let identity = report.mean_excess() + report.mean_shortage();
        prop_assert!((report.mean_agility() - identity).abs() < 1e-9);
        // Perfect provisioning iff agility is zero.
        let perfect = samples.iter().all(|&(req, cap)| req == cap);
        if perfect {
            prop_assert_eq!(report.mean_agility(), 0.0);
        }
    }

    /// At most one owner ever holds a lock, whatever the operation order.
    #[test]
    fn lock_exclusivity(ops in proptest::collection::vec((0u64..4, 0u64..3, 0u64..100), 1..64)) {
        let store = Store::new(StoreConfig::default());
        let ttl = SimDuration::from_secs(10);
        let mut holder: Option<(u64, u64)> = None; // (owner, acquired_at)
        let mut clock = 0u64;
        for (owner, action, dt) in ops {
            clock += dt;
            let now = SimTime::from_secs(clock);
            let expired = holder.is_some_and(|(_, at)| clock >= at + 10);
            match action {
                0 | 1 => {
                    let got = store.try_lock("L", LockOwner::new(owner), now, ttl);
                    let expect = match holder {
                        None => true,
                        Some((h, _)) => h == owner || expired,
                    };
                    prop_assert_eq!(got, expect, "owner {} at t={}", owner, clock);
                    if got {
                        holder = Some((owner, clock));
                    }
                }
                _ => {
                    let ok = store.unlock("L", LockOwner::new(owner)).is_ok();
                    prop_assert_eq!(ok, holder.is_some_and(|(h, _)| h == owner));
                    if ok {
                        holder = None;
                    }
                }
            }
        }
    }

    /// Workload patterns are bounded by their peak and non-negative.
    #[test]
    fn workload_bounds(
        peak in 1.0f64..1e6,
        noise in 0.0f64..0.3,
        seed in any::<u64>(),
        minute in 0u64..500,
    ) {
        for kind in [PatternKind::Abrupt, PatternKind::Cyclic] {
            let w = WorkloadBuilder::new(kind, peak).noise(noise).seed(seed).build();
            let r = w.noisy_rate_at(SimTime::from_minutes(minute));
            prop_assert!(r >= 0.0);
            prop_assert!(r <= w.peak() * (1.0 + noise) + 1e-6);
        }
    }

    /// Store versions increase by exactly one per successful write.
    #[test]
    fn store_version_monotonicity(writes in proptest::collection::vec(".{0,8}", 1..50)) {
        let store = Store::new(StoreConfig::default());
        let mut expected: HashMap<String, u64> = HashMap::new();
        for key in writes {
            let v = store.put(&key, vec![1]);
            let e = expected.entry(key).or_insert(0);
            *e += 1;
            prop_assert_eq!(v, *e);
        }
    }
}
