//! Golden-byte tests pinning the wire format.
//!
//! The codec is a protocol: once two processes (or a client and a pool on
//! different hosts) exchange bytes, its layout must not drift. These tests
//! hard-code the expected encodings so any accidental format change fails
//! loudly instead of corrupting cross-version traffic.

use elasticrmi::{InvocationContext, LoadReport, RemoteError, RmiMessage};
use erm_sim::{SimDuration, SimTime};
use erm_transport::{to_bytes, EndpointId};

#[test]
fn integer_layout_is_little_endian_fixed_width() {
    assert_eq!(to_bytes(&0x01020304u32).unwrap(), [4, 3, 2, 1]);
    assert_eq!(to_bytes(&1u8).unwrap(), [1]);
    assert_eq!(to_bytes(&(-2i16)).unwrap(), [0xfe, 0xff]);
    assert_eq!(
        to_bytes(&0x0102030405060708u64).unwrap(),
        [8, 7, 6, 5, 4, 3, 2, 1]
    );
}

#[test]
fn bool_and_option_tags() {
    assert_eq!(to_bytes(&true).unwrap(), [1]);
    assert_eq!(to_bytes(&false).unwrap(), [0]);
    assert_eq!(to_bytes(&Option::<u8>::None).unwrap(), [0]);
    assert_eq!(to_bytes(&Some(7u8)).unwrap(), [1, 7]);
}

#[test]
fn string_layout_is_length_prefixed_utf8() {
    assert_eq!(to_bytes("hi").unwrap(), [2, 0, 0, 0, b'h', b'i']);
    assert_eq!(to_bytes("").unwrap(), [0, 0, 0, 0]);
}

#[test]
fn vec_layout_is_length_prefixed_elements() {
    assert_eq!(to_bytes(&vec![1u16, 2]).unwrap(), [2, 0, 0, 0, 1, 0, 2, 0]);
}

#[test]
fn float_layout_is_ieee754_le() {
    assert_eq!(to_bytes(&1.0f32).unwrap(), 1.0f32.to_le_bytes());
    assert_eq!(to_bytes(&-2.5f64).unwrap(), (-2.5f64).to_le_bytes());
}

#[test]
fn enum_variants_are_u32_indices() {
    // RmiMessage::Ping is variant 11 of the protocol enum (format v2, which
    // inserted Redirected); its encoding is exactly the 4-byte index.
    // Renumbering variants breaks deployed peers. Format v3 appended
    // Overloaded as variant 13 — earlier indices are frozen.
    assert_eq!(RmiMessage::Ping.encode(), [11, 0, 0, 0]);
    assert_eq!(RmiMessage::Pong.encode(), [12, 0, 0, 0]);
    assert_eq!(RmiMessage::PoolInfoRequest.encode(), [3, 0, 0, 0]);
    assert_eq!(RmiMessage::Shutdown.encode(), [9, 0, 0, 0]);
}

#[test]
fn request_message_golden_bytes() {
    // Format v2: Request carries the InvocationContext (id, deadline,
    // attempt, origin) between `call` and `method`. Format v4 appends the
    // method's invocation semantics to the context — a u32 enum index
    // (AtMostOnce = 0, AtLeastOnce = 1, Maybe = 2).
    let msg = RmiMessage::Request {
        call: 1,
        context: InvocationContext {
            id: 7,
            deadline: SimTime::from_micros(500_000),
            attempt: 1,
            origin: EndpointId(9),
            semantics: elasticrmi::Semantics::AtLeastOnce,
        },
        method: "m".to_string(),
        args: vec![9],
    };
    let expected: Vec<u8> = [
        vec![0, 0, 0, 0],                      // variant 0: Request
        vec![1, 0, 0, 0, 0, 0, 0, 0],          // call: u64 = 1
        vec![7, 0, 0, 0, 0, 0, 0, 0],          // context.id: u64 = 7
        vec![0x20, 0xa1, 0x07, 0, 0, 0, 0, 0], // context.deadline: 500_000 µs
        vec![1, 0, 0, 0],                      // context.attempt: u32 = 1
        vec![9, 0, 0, 0, 0, 0, 0, 0],          // context.origin: EndpointId(9)
        vec![1, 0, 0, 0],                      // context.semantics: AtLeastOnce (v4)
        vec![1, 0, 0, 0, b'm'],                // method: len 1, "m"
        vec![1, 0, 0, 0, 9],                   // args: len 1, [9]
    ]
    .concat();
    assert_eq!(msg.encode(), expected);
}

#[test]
fn request_at_most_once_golden_bytes() {
    // The three semantics wire indices are frozen: AtMostOnce = 0,
    // AtLeastOnce = 1, Maybe = 2. Reordering the enum breaks deployed peers.
    let msg = RmiMessage::Request {
        call: 1,
        context: InvocationContext {
            id: 7,
            deadline: SimTime::from_micros(500_000),
            attempt: 2,
            origin: EndpointId(9),
            semantics: elasticrmi::Semantics::AtMostOnce,
        },
        method: "m".to_string(),
        args: vec![9],
    };
    let bytes = msg.encode();
    // semantics sits right after origin, before the method string:
    // 4 (variant) + 8 (call) + 8 (id) + 8 (deadline) + 4 (attempt) +
    // 8 (origin) = offset 40.
    assert_eq!(&bytes[40..44], &[0, 0, 0, 0]); // AtMostOnce = 0
    assert_eq!(RmiMessage::decode(&bytes).unwrap(), msg);
}

#[test]
fn redirected_message_golden_bytes() {
    // Format v2: Redirected echoes the refused request's deadline so the
    // follow-up attempt runs under the remaining budget.
    let msg = RmiMessage::Redirected {
        call: 3,
        members: vec![EndpointId(5)],
        deadline: SimTime::from_micros(256),
    };
    let expected: Vec<u8> = [
        vec![2, 0, 0, 0],             // variant 2: Redirected
        vec![3, 0, 0, 0, 0, 0, 0, 0], // call: u64 = 3
        vec![1, 0, 0, 0],             // members: len 1
        vec![5, 0, 0, 0, 0, 0, 0, 0], // EndpointId(5)
        vec![0, 1, 0, 0, 0, 0, 0, 0], // deadline: 256 µs
    ]
    .concat();
    assert_eq!(msg.encode(), expected);
}

#[test]
fn response_ok_golden_bytes() {
    // Format v4 appends `replayed` — one byte, 1 when the reply was served
    // from the skeleton's reply cache instead of a fresh execution.
    let msg = RmiMessage::Response {
        call: 2,
        outcome: Ok(vec![7, 8]),
        replayed: false,
    };
    let expected: Vec<u8> = [
        vec![1, 0, 0, 0],             // variant 1: Response
        vec![2, 0, 0, 0, 0, 0, 0, 0], // call
        vec![0, 0, 0, 0],             // Result variant 0: Ok
        vec![2, 0, 0, 0, 7, 8],       // bytes
        vec![0],                      // replayed: false (v4)
    ]
    .concat();
    assert_eq!(msg.encode(), expected);
}

#[test]
fn response_replayed_golden_bytes() {
    let msg = RmiMessage::Response {
        call: 2,
        outcome: Ok(vec![7, 8]),
        replayed: true,
    };
    let bytes = msg.encode();
    assert_eq!(bytes.last(), Some(&1)); // replayed: true (v4)
    assert_eq!(RmiMessage::decode(&bytes).unwrap(), msg);
}

#[test]
fn response_err_golden_bytes() {
    let msg = RmiMessage::Response {
        call: 0,
        outcome: Err(RemoteError::new("E", "d")),
        replayed: false,
    };
    let expected: Vec<u8> = [
        vec![1, 0, 0, 0],       // variant 1: Response
        vec![0; 8],             // call 0
        vec![1, 0, 0, 0],       // Result variant 1: Err
        vec![1, 0, 0, 0, b'E'], // kind
        vec![1, 0, 0, 0, b'd'], // detail
        vec![0],                // replayed: false (v4)
    ]
    .concat();
    assert_eq!(msg.encode(), expected);
}

#[test]
fn overloaded_message_golden_bytes() {
    // Format v3: Overloaded is the appended variant 13 — an explicit
    // admission rejection carrying the refusing member's queue depth and a
    // retry hint.
    let msg = RmiMessage::Overloaded {
        call: 4,
        queue_depth: 16,
        retry_after: SimDuration::from_micros(2_000),
    };
    let expected: Vec<u8> = [
        vec![13, 0, 0, 0],                  // variant 13: Overloaded
        vec![4, 0, 0, 0, 0, 0, 0, 0],       // call: u64 = 4
        vec![16, 0, 0, 0],                  // queue_depth: u32 = 16
        vec![0xd0, 0x07, 0, 0, 0, 0, 0, 0], // retry_after: 2_000 µs
    ]
    .concat();
    assert_eq!(msg.encode(), expected);
    assert_eq!(RmiMessage::decode(&expected).unwrap(), msg);
}

#[test]
fn load_report_v3_golden_bytes() {
    // Format v3: LoadReport appends rejected and the queue-delay
    // percentiles after method_stats. Existing fields keep their v2 layout.
    let msg = RmiMessage::Load(LoadReport {
        uid: 1,
        pending: 2,
        busy: 0.5,
        ram: 0.25,
        fine_vote: Some(1),
        expired: 3,
        method_stats: Vec::new(),
        rejected: 4,
        queue_delay_p50_us: 1_000,
        queue_delay_p99_us: 2_000,
    });
    let expected: Vec<u8> = [
        vec![6, 0, 0, 0],                // variant 6: Load
        vec![1, 0, 0, 0, 0, 0, 0, 0],    // uid: u64 = 1
        vec![2, 0, 0, 0],                // pending: u32 = 2
        0.5f32.to_le_bytes().to_vec(),   // busy
        0.25f32.to_le_bytes().to_vec(),  // ram
        vec![1, 1, 0, 0, 0],             // fine_vote: Some(1)
        vec![3, 0, 0, 0],                // expired: u32 = 3
        vec![0, 0, 0, 0],                // method_stats: len 0
        vec![4, 0, 0, 0],                // rejected: u32 = 4 (v3)
        vec![0xe8, 3, 0, 0, 0, 0, 0, 0], // queue_delay_p50_us (v3)
        vec![0xd0, 7, 0, 0, 0, 0, 0, 0], // queue_delay_p99_us (v3)
    ]
    .concat();
    assert_eq!(msg.encode(), expected);
    assert_eq!(RmiMessage::decode(&expected).unwrap(), msg);
}

#[test]
fn endpoint_id_is_a_bare_u64() {
    assert_eq!(to_bytes(&EndpointId(3)).unwrap(), 3u64.to_le_bytes());
}

#[test]
fn golden_decodes_roundtrip() {
    // The inverse direction: the pinned bytes decode to the original values.
    let bytes = [11u8, 0, 0, 0];
    assert_eq!(RmiMessage::decode(&bytes).unwrap(), RmiMessage::Ping);
    let s: String = erm_transport::from_bytes(&[2, 0, 0, 0, b'h', b'i']).unwrap();
    assert_eq!(s, "hi");
}
