//! Integration tests of the pool lifecycle: instantiation (including the
//! `l < k` degraded case), elastic growth and shrink through the real
//! runtime, the drain protocol, and clean shutdown (slice reuse).

mod common;

use std::sync::atomic::{AtomicI32, Ordering};
use std::sync::Arc;

use common::{fast_deps, pool_with, wait_until};
use elasticrmi::{
    encode_result, ClientLb, ElasticPool, ElasticService, MethodCallStats, PoolConfig, PoolError,
    RemoteError, ScalingPolicy, ServiceContext,
};
use erm_cluster::{ClusterConfig, ClusterHandle, LatencyModel, ResourceManager};
use erm_kvstore::{Store, StoreConfig};
use erm_metrics::{MetricsHandle, TraceHandle};
use erm_sim::{SimDuration, SystemClock};
use erm_transport::InProcNetwork;

/// A service whose fine-grained vote is dictated by the test through a
/// shared atomic — a puppet `changePoolSize`.
struct Puppet {
    vote: Arc<AtomicI32>,
}

impl ElasticService for Puppet {
    fn dispatch(
        &mut self,
        method: &str,
        _args: &[u8],
        ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError> {
        match method {
            "pool_size" => encode_result(&ctx.pool_size()),
            "uid" => encode_result(&ctx.uid()),
            other => Err(RemoteError::no_such_method(other)),
        }
    }

    fn change_pool_size(&mut self, _stats: &MethodCallStats, _ctx: &mut ServiceContext) -> i32 {
        self.vote.load(Ordering::SeqCst)
    }
}

fn puppet_pool(min: u32, max: u32) -> (ElasticPool, Arc<AtomicI32>) {
    let vote = Arc::new(AtomicI32::new(0));
    let factory_vote = Arc::clone(&vote);
    let config = PoolConfig::builder("Puppet")
        .min_pool_size(min)
        .max_pool_size(max)
        .policy(ScalingPolicy::FineGrained)
        .burst_interval(SimDuration::from_millis(100))
        .build()
        .unwrap();
    let (pool, _deps) = pool_with(
        config,
        Arc::new(move || {
            Box::new(Puppet {
                vote: Arc::clone(&factory_vote),
            })
        }),
    );
    (pool, vote)
}

#[test]
fn pool_starts_at_min_size() {
    let (mut pool, _vote) = puppet_pool(3, 8);
    assert_eq!(pool.size(), 3);
    assert_eq!(pool.members().len(), 3);
    pool.shutdown();
}

#[test]
fn fine_grained_votes_grow_the_pool() {
    let (mut pool, vote) = puppet_pool(2, 8);
    vote.store(2, Ordering::SeqCst);
    assert!(
        wait_until(10, || pool.size() >= 6),
        "pool should grow by ~2 per 100ms burst, size {}",
        pool.size()
    );
    // Growth respects the maximum.
    assert!(wait_until(10, || pool.size() == 8));
    std::thread::sleep(std::time::Duration::from_millis(300));
    assert_eq!(pool.size(), 8, "must not exceed max_pool_size");
    assert!(pool.stats().grown >= 6);
    pool.shutdown();
}

#[test]
fn negative_votes_shrink_to_min() {
    let (mut pool, vote) = puppet_pool(2, 8);
    vote.store(3, Ordering::SeqCst);
    assert!(wait_until(10, || pool.size() == 8));
    vote.store(-2, Ordering::SeqCst);
    assert!(
        wait_until(15, || pool.size() == 2),
        "pool should drain back to min, size {}",
        pool.size()
    );
    std::thread::sleep(std::time::Duration::from_millis(300));
    assert_eq!(pool.size(), 2, "must not undershoot min_pool_size");
    let stats = pool.stats();
    assert!(stats.shrunk >= 6, "shrunk {}", stats.shrunk);
    assert_eq!(stats.crashed, 0);
    pool.shutdown();
}

#[test]
fn invocations_keep_succeeding_across_scaling() {
    let (mut pool, vote) = puppet_pool(2, 6);
    let mut stub = pool.stub(ClientLb::RoundRobin).unwrap();
    vote.store(1, Ordering::SeqCst);
    let mut ok = 0u32;
    for _ in 0..200 {
        let _: u32 = stub.invoke("pool_size", &()).unwrap();
        ok += 1;
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert_eq!(ok, 200, "no invocation may be lost during scaling");
    assert!(pool.size() > 2, "pool grew while serving");
    pool.shutdown();
}

#[test]
fn degraded_instantiation_l_less_than_k() {
    // Paper §4.2: ask for k, get l < k, run with l.
    let deps = elasticrmi::PoolDeps {
        cluster: ClusterHandle::new(ResourceManager::new(ClusterConfig {
            nodes: 3,
            slices_per_node: 1,
            provisioning: LatencyModel::instant(),
            ..ClusterConfig::default()
        })),
        net: Arc::new(InProcNetwork::new()),
        store: Arc::new(Store::new(StoreConfig::default())),
        clock: Arc::new(SystemClock::new()),
        trace: TraceHandle::disabled(),
        metrics: MetricsHandle::disabled(),
    };
    let vote = Arc::new(AtomicI32::new(0));
    let fv = Arc::clone(&vote);
    let config = PoolConfig::builder("Puppet")
        .min_pool_size(5)
        .max_pool_size(10)
        .build()
        .unwrap();
    let mut pool = ElasticPool::instantiate(
        config,
        Arc::new(move || {
            Box::new(Puppet {
                vote: Arc::clone(&fv),
            })
        }),
        deps,
        None,
    )
    .unwrap();
    assert!(wait_until(5, || pool.size() == 3));
    let mut stub = pool.stub(ClientLb::RoundRobin).unwrap();
    let n: u32 = stub.invoke("pool_size", &()).unwrap();
    assert_eq!(n, 3, "pool serves with the l it got");
    pool.shutdown();
}

#[test]
fn empty_cluster_fails_instantiation() {
    let deps = elasticrmi::PoolDeps {
        cluster: ClusterHandle::new(ResourceManager::new(ClusterConfig {
            nodes: 1,
            slices_per_node: 1,
            provisioning: LatencyModel::instant(),
            ..ClusterConfig::default()
        })),
        net: Arc::new(InProcNetwork::new()),
        store: Arc::new(Store::new(StoreConfig::default())),
        clock: Arc::new(SystemClock::new()),
        trace: TraceHandle::disabled(),
        metrics: MetricsHandle::disabled(),
    };
    // Exhaust the only slice first.
    deps.cluster
        .request_slices(1, erm_sim::SimTime::ZERO)
        .unwrap();
    let config = PoolConfig::builder("Puppet").build().unwrap();
    let vote = Arc::new(AtomicI32::new(0));
    let err = ElasticPool::instantiate(
        config,
        Arc::new(move || {
            Box::new(Puppet {
                vote: Arc::clone(&vote),
            })
        }),
        deps,
        None,
    )
    .unwrap_err();
    assert_eq!(err, PoolError::NoCapacity);
}

#[test]
fn shutdown_releases_every_slice() {
    let deps = fast_deps();
    let total_free = deps.cluster.free_slices();
    let vote = Arc::new(AtomicI32::new(0));
    let fv = Arc::clone(&vote);
    let config = PoolConfig::builder("Puppet")
        .min_pool_size(4)
        .max_pool_size(8)
        .build()
        .unwrap();
    let mut pool = ElasticPool::instantiate(
        config,
        Arc::new(move || {
            Box::new(Puppet {
                vote: Arc::clone(&fv),
            })
        }),
        deps.clone(),
        None,
    )
    .unwrap();
    assert!(wait_until(5, || deps.cluster.free_slices() == total_free - 4));
    pool.shutdown();
    assert!(
        wait_until(5, || deps.cluster.free_slices() == total_free),
        "slices must return to the cluster on shutdown ({} of {total_free} free)",
        deps.cluster.free_slices()
    );
}

#[test]
fn slices_are_reusable_by_a_second_pool() {
    // "This slice is then available to other elastic objects" (§2.5).
    let deps = fast_deps();
    let mk = |deps: &elasticrmi::PoolDeps| {
        let vote = Arc::new(AtomicI32::new(0));
        let fv = Arc::clone(&vote);
        ElasticPool::instantiate(
            PoolConfig::builder("Puppet")
                .min_pool_size(4)
                .max_pool_size(4)
                .build()
                .unwrap(),
            Arc::new(move || {
                Box::new(Puppet {
                    vote: Arc::clone(&fv),
                })
            }),
            deps.clone(),
            None,
        )
        .unwrap()
    };
    let mut first = mk(&deps);
    first.shutdown();
    let mut second = mk(&deps);
    assert_eq!(second.size(), 4);
    let mut stub = second.stub(ClientLb::RoundRobin).unwrap();
    let n: u32 = stub.invoke("pool_size", &()).unwrap();
    assert_eq!(n, 4);
    second.shutdown();
}

#[test]
fn pool_size_is_visible_to_services() {
    let (mut pool, _vote) = puppet_pool(3, 6);
    let mut stub = pool.stub(ClientLb::RoundRobin).unwrap();
    let n: u32 = stub.invoke("pool_size", &()).unwrap();
    assert_eq!(n, 3, "getPoolSize() inside the service sees the real size");
    pool.shutdown();
}

#[test]
fn app_level_decider_dictates_pool_size() {
    // §3.3: "ElasticRMI also supports decision making at the level of the
    // application using the Decider class." The decider sees the aggregated
    // sample and returns the desired size; the runtime realizes it.
    use std::sync::atomic::AtomicU32 as TargetCell;
    let target = Arc::new(TargetCell::new(2));
    let decider_target = Arc::clone(&target);
    let decider =
        move |_sample: &elasticrmi::PoolSample| -> u32 { decider_target.load(Ordering::SeqCst) };
    let vote = Arc::new(AtomicI32::new(0));
    let fv = Arc::clone(&vote);
    let config = PoolConfig::builder("Puppet")
        .min_pool_size(2)
        .max_pool_size(10)
        .policy(ScalingPolicy::AppLevel)
        .burst_interval(erm_sim::SimDuration::from_millis(100))
        .build()
        .unwrap();
    let deps = fast_deps();
    let mut pool = ElasticPool::instantiate(
        config,
        Arc::new(move || {
            Box::new(Puppet {
                vote: Arc::clone(&fv),
            })
        }),
        deps,
        Some(Box::new(decider)),
    )
    .unwrap();
    assert_eq!(pool.size(), 2);
    target.store(6, Ordering::SeqCst);
    assert!(
        wait_until(10, || pool.size() == 6),
        "decider target 6, size {}",
        pool.size()
    );
    target.store(3, Ordering::SeqCst);
    assert!(
        wait_until(15, || pool.size() == 3),
        "decider target 3, size {}",
        pool.size()
    );
    pool.shutdown();
}

#[test]
#[should_panic(expected = "Decider must be supplied iff")]
fn app_level_without_decider_is_rejected() {
    let vote = Arc::new(AtomicI32::new(0));
    let config = PoolConfig::builder("Puppet")
        .policy(ScalingPolicy::AppLevel)
        .build()
        .unwrap();
    let _ = ElasticPool::instantiate(
        config,
        Arc::new(move || {
            Box::new(Puppet {
                vote: Arc::clone(&vote),
            })
        }),
        fast_deps(),
        None,
    );
}
