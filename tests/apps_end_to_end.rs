//! End-to-end tests of the four evaluation applications running on real
//! elastic pools (stub → network → skeleton → service → shared store),
//! exactly as the examples deploy them.

mod common;

use std::sync::Arc;

use common::pool_with;
use elasticrmi::{ClientLb, ElasticPool, PoolConfig, ScalingPolicy};
use erm_apps::dcs::{Dcs, ZNode};
use erm_apps::hedwig::{Delivery, Hub};
use erm_apps::marketcetera::{Order, OrderRouter, RouteAck, Side};
use erm_apps::paxos::{PaxosReplica, ProposeResult};

fn app_pool(class: &str, factory: elasticrmi::ServiceFactory, min: u32) -> ElasticPool {
    let config = PoolConfig::builder(class)
        .min_pool_size(min)
        .max_pool_size(min + 4)
        .policy(ScalingPolicy::FineGrained)
        .build()
        .unwrap();
    pool_with(config, factory).0
}

#[test]
fn marketcetera_routes_and_persists_through_pool() {
    let mut pool = app_pool(
        OrderRouter::CLASS,
        Arc::new(|| Box::new(OrderRouter::new())),
        2,
    );
    let mut stub = pool.stub(ClientLb::RoundRobin).unwrap();
    let mut venues = std::collections::HashSet::new();
    for i in 0..40u64 {
        let ack: RouteAck = stub
            .invoke(
                "route",
                &Order {
                    id: i,
                    symbol: ["HPQ", "IBM", "AAPL"][(i % 3) as usize].to_string(),
                    side: if i % 2 == 0 { Side::Buy } else { Side::Sell },
                    quantity: 10 + i as u32,
                    limit_cents: Some(100 + i),
                },
            )
            .unwrap();
        venues.insert(ack.venue);
    }
    let count: u64 = stub.invoke("routed_count", &()).unwrap();
    assert_eq!(count, 40);
    // Status lookups work through any member (state is pool-wide).
    let status: Option<Order> = stub.invoke("order_status", &17u64).unwrap();
    assert_eq!(status.unwrap().id, 17);
    pool.shutdown();
}

#[test]
fn hedwig_delivers_once_across_hubs() {
    let mut pool = app_pool(Hub::CLASS, Arc::new(|| Box::new(Hub::new())), 3);
    let mut publisher = pool.stub(ClientLb::RoundRobin).unwrap();
    let mut subscriber = pool.stub(ClientLb::Random { seed: 5 }).unwrap();

    let _: bool = subscriber
        .invoke("subscribe", &("alerts", "ops-team"))
        .unwrap();
    for i in 0..10u8 {
        let _: (u64, u32) = publisher.invoke("publish", &("alerts", vec![i])).unwrap();
    }
    // Fetch through a *different* stub (and likely different hub).
    let got: Vec<Delivery> = subscriber.invoke("fetch", &"ops-team").unwrap();
    assert_eq!(got.len(), 10);
    let seqs: Vec<u64> = got.iter().map(|d| d.seq).collect();
    assert_eq!(seqs, (1..=10).collect::<Vec<_>>(), "gap-free sequence");
    // At-most-once: a second fetch is empty.
    let again: Vec<Delivery> = subscriber.invoke("fetch", &"ops-team").unwrap();
    assert!(again.is_empty());
    pool.shutdown();
}

#[test]
fn paxos_agrees_across_concurrent_pool_clients() {
    let pool = Arc::new(parking_lot::Mutex::new(app_pool(
        PaxosReplica::CLASS,
        Arc::new(|| Box::new(PaxosReplica::default())),
        3,
    )));
    let mut clients = Vec::new();
    for c in 0..3u64 {
        let pool = Arc::clone(&pool);
        clients.push(std::thread::spawn(move || {
            let mut stub = pool.lock().stub(ClientLb::Random { seed: c }).unwrap();
            stub.set_reply_timeout(erm_sim::SimDuration::from_secs(5));
            let mut chosen = Vec::new();
            for instance in 0..10u64 {
                let res: ProposeResult = stub
                    .invoke(
                        "propose",
                        &(instance, format!("c{c}-i{instance}").into_bytes()),
                    )
                    .unwrap();
                chosen.push((instance, res.chosen));
            }
            chosen
        }));
    }
    let outcomes: Vec<Vec<(u64, Vec<u8>)>> =
        clients.into_iter().map(|c| c.join().unwrap()).collect();
    for instance in 0..10u64 {
        let mut values: Vec<&Vec<u8>> = outcomes
            .iter()
            .flat_map(|o| o.iter().filter(|(i, _)| *i == instance).map(|(_, v)| v))
            .collect();
        values.dedup();
        assert_eq!(
            values.len(),
            1,
            "instance {instance} split-brained: {values:?}"
        );
    }
    pool.lock().shutdown();
}

#[test]
fn dcs_totally_orders_updates_from_many_clients() {
    let pool = Arc::new(parking_lot::Mutex::new(app_pool(
        Dcs::CLASS,
        Arc::new(|| Box::new(Dcs::new())),
        3,
    )));
    {
        let mut root = pool.lock().stub(ClientLb::RoundRobin).unwrap();
        let _: u64 = root.invoke("create", &("/jobs", Vec::<u8>::new())).unwrap();
    }
    let mut clients = Vec::new();
    for c in 0..4u64 {
        let pool = Arc::clone(&pool);
        clients.push(std::thread::spawn(move || {
            let mut stub = pool.lock().stub(ClientLb::Random { seed: c }).unwrap();
            stub.set_reply_timeout(erm_sim::SimDuration::from_secs(5));
            let mut zxids = Vec::new();
            for i in 0..10 {
                let z: u64 = stub
                    .invoke("create", &(format!("/jobs/c{c}-{i}"), Vec::<u8>::new()))
                    .unwrap();
                zxids.push(z);
            }
            zxids
        }));
    }
    let mut all: Vec<u64> = clients
        .into_iter()
        .flat_map(|c| c.join().unwrap())
        .collect();
    let n = all.len();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), n, "zxids must be unique (total order)");

    let mut stub = pool.lock().stub(ClientLb::RoundRobin).unwrap();
    let kids: Vec<String> = stub.invoke("children", &"/jobs").unwrap();
    assert_eq!(kids.len(), 40);
    let node: Option<ZNode> = stub.invoke("get", &"/jobs").unwrap();
    assert!(node.is_some());
    pool.lock().shutdown();
}

#[test]
fn two_apps_share_one_cluster() {
    // Two elastic pools with separate stores on separate networks can share
    // nothing but the machine — and two pools *can* also share one cluster,
    // which is the multi-tier deployment of §3.3.
    let deps_a = common::fast_deps();
    let mut deps_b = common::fast_deps();
    deps_b.cluster = deps_a.cluster.clone(); // shared Mesos
    let pool_a = elasticrmi::ElasticPool::instantiate(
        PoolConfig::builder(OrderRouter::CLASS).build().unwrap(),
        Arc::new(|| Box::new(OrderRouter::new())),
        deps_a.clone(),
        None,
    )
    .unwrap();
    let pool_b = elasticrmi::ElasticPool::instantiate(
        PoolConfig::builder(Dcs::CLASS)
            .min_pool_size(3)
            .build()
            .unwrap(),
        Arc::new(|| Box::new(Dcs::new())),
        deps_b,
        None,
    )
    .unwrap();
    let used = deps_a.cluster.slices_in_use();
    assert_eq!(used, 5, "2 router + 3 DCS slices from one cluster");
    drop(pool_a);
    drop(pool_b);
}
