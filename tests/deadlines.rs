//! End-to-end deadline semantics: the `InvocationContext` created in
//! `Stub::invoke` travels through the wire, the skeleton, and every retry or
//! redirect, and no hop ever runs past it. The virtual-clock tests pin the
//! arithmetic exactly; the real-pool tests exercise the same paths under
//! `InProcNetwork` fault injection (lost links, delivery latency).

mod common;

use std::sync::atomic::{AtomicI32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use common::wait_until;
use elasticrmi::{
    encode_result, ClientLb, ElasticPool, ElasticService, InvocationContext, MethodCallStats,
    PoolConfig, PoolDeps, RemoteError, RmiError, RmiMessage, ScalingPolicy, ServiceContext,
};
use erm_cluster::{ClusterConfig, ClusterHandle, LatencyModel, ResourceManager};
use erm_kvstore::{Store, StoreConfig};
use erm_metrics::{MetricsHandle, TraceEvent, TraceHandle};
use erm_sim::{Clock, SimDuration, SimTime, SystemClock, VirtualClock};
use erm_transport::{EndpointId, Host, InProcNetwork, Mailbox, Network};

/// A hand-driven pool member: serves discovery and lets the test script
/// each reply while capturing the request's wire-level context.
struct ScriptedMember {
    net: InProcNetwork,
    endpoint: EndpointId,
    mailbox: Mailbox,
}

impl ScriptedMember {
    fn new(net: &InProcNetwork) -> Self {
        let (endpoint, mailbox) = net.open();
        ScriptedMember {
            net: net.clone(),
            endpoint,
            mailbox,
        }
    }

    /// Serves one `PoolInfoRequest` with the given membership.
    fn serve_discovery(&self, members: &[EndpointId]) {
        let d = self.mailbox.recv().expect("discovery request");
        let info = RmiMessage::PoolInfo {
            epoch: 1,
            sentinel: self.endpoint,
            members: members.to_vec(),
        };
        self.net.send(self.endpoint, d.from, info.encode()).unwrap();
    }

    /// Receives the next `Request`, returning its call id, context, and the
    /// requesting endpoint.
    fn recv_request(&self) -> (u64, InvocationContext, EndpointId) {
        let d = self
            .mailbox
            .recv_timeout(Duration::from_secs(10))
            .expect("request expected");
        match RmiMessage::decode(&d.payload).unwrap() {
            RmiMessage::Request { call, context, .. } => (call, context, d.from),
            other => panic!("expected Request, got {other:?}"),
        }
    }

    fn reply(&self, to: EndpointId, msg: RmiMessage) {
        self.net.send(self.endpoint, to, msg.encode()).unwrap();
    }
}

/// Connects a stub to scripted members over `net`, on `clock`.
fn scripted_stub(
    net: &InProcNetwork,
    sentinel: &ScriptedMember,
    members: &[EndpointId],
    clock: Arc<VirtualClock>,
) -> elasticrmi::Stub {
    let (client_ep, client_mb) = net.open();
    let net_arc: Arc<dyn Network> = Arc::new(net.clone());
    let s_ep = sentinel.endpoint;
    let handle = std::thread::spawn(move || {
        elasticrmi::Stub::connect(
            net_arc,
            client_ep,
            client_mb,
            s_ep,
            ClientLb::RoundRobin,
            clock,
        )
    });
    sentinel.serve_discovery(members);
    handle.join().unwrap().expect("stub connects")
}

#[test]
fn virtual_deadline_expires_exactly_at_the_budget() {
    // Deterministic virtual-time timeout: a member that never answers, a
    // 100 ms budget, and a clock only the test advances. The invocation
    // must carry deadline = exactly t0 + 100 ms and expire the moment the
    // clock reaches it — no real-time sleeps decide anything.
    let net = InProcNetwork::new();
    let member = ScriptedMember::new(&net);
    let clock = Arc::new(VirtualClock::new());
    let mut stub = scripted_stub(&net, &member, &[member.endpoint], Arc::clone(&clock));
    stub.set_reply_timeout(SimDuration::from_millis(100));
    stub.set_invocation_budget(SimDuration::from_millis(100));

    let worker = std::thread::spawn(move || {
        let r: Result<u32, RmiError> = stub.invoke("m", &());
        (r, stub.stats())
    });
    let (_call, context, _from) = member.recv_request();
    assert_eq!(context.deadline, SimTime::from_micros(100_000));
    assert_eq!(context.attempt, 1);
    assert_eq!(
        context.remaining(clock.now()),
        SimDuration::from_millis(100),
        "full budget remains before any virtual time passes"
    );
    // One microsecond short of the deadline nothing may expire; reaching it
    // must end the invocation.
    clock.advance_to(SimTime::from_micros(100_000));
    let (result, stats) = worker.join().unwrap();
    match result {
        Err(RmiError::DeadlineExceeded { attempts }) => assert_eq!(attempts, 1),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(stats.expired, 1);
    assert_eq!(
        stats.invocations, 0,
        "an expired invocation never completes"
    );
}

#[test]
fn redirect_preserves_remaining_budget_and_traces_the_lifecycle() {
    // A redirected attempt inherits (never extends) the deadline: the first
    // member echoes an earlier deadline with its `Redirected`, and the
    // follow-up request on the second member must carry that clamped value
    // with the same invocation id. The shared sink captures the whole
    // lifecycle: attempt -> redirect -> second attempt -> completion.
    let net = InProcNetwork::new();
    let m1 = ScriptedMember::new(&net);
    let m2 = ScriptedMember::new(&net);
    let clock = Arc::new(VirtualClock::new());
    let mut stub = scripted_stub(&net, &m1, &[m1.endpoint], Arc::clone(&clock));
    stub.set_invocation_budget(SimDuration::from_millis(100));
    let (trace, sink) = TraceHandle::buffered(64);
    stub.set_trace(trace);

    let worker = std::thread::spawn(move || {
        let r: Result<u32, RmiError> = stub.invoke("m", &());
        r
    });
    let (call, first, from) = m1.recv_request();
    assert_eq!(first.deadline, SimTime::from_micros(100_000));
    // Pretend 60 ms of the budget were already consumed elsewhere: redirect
    // with a 40 ms deadline, as a draining skeleton echoes it.
    m1.reply(
        from,
        RmiMessage::Redirected {
            call,
            members: vec![m2.endpoint],
            deadline: SimTime::from_micros(40_000),
        },
    );
    let (call2, second, from2) = m2.recv_request();
    assert_eq!(second.id, first.id, "one invocation across the redirect");
    assert_eq!(second.attempt, 2);
    assert_eq!(
        second.deadline,
        SimTime::from_micros(40_000),
        "the redirected attempt runs under the echoed (smaller) deadline"
    );
    m2.reply(
        from2,
        RmiMessage::Response {
            replayed: false,
            call: call2,
            outcome: Ok(erm_transport::to_bytes(&7u32).unwrap()),
        },
    );
    assert_eq!(worker.join().unwrap().unwrap(), 7);

    let events: Vec<TraceEvent> = sink.snapshot().into_iter().map(|r| r.event).collect();
    let lifecycle: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::AttemptStarted { .. }
                    | TraceEvent::AttemptRedirected { .. }
                    | TraceEvent::InvocationCompleted { .. }
            )
        })
        .collect();
    match lifecycle.as_slice() {
        [TraceEvent::AttemptStarted {
            attempt: 1,
            deadline: d1,
            ..
        }, TraceEvent::AttemptRedirected { remaining, .. }, TraceEvent::AttemptStarted {
            attempt: 2,
            deadline: d2,
            ..
        }, TraceEvent::InvocationCompleted {
            attempts: 2,
            ok: true,
            ..
        }] => {
            assert_eq!(*d1, SimTime::from_micros(100_000));
            assert_eq!(*d2, SimTime::from_micros(40_000));
            assert_eq!(*remaining, SimDuration::from_millis(40));
        }
        other => panic!("unexpected lifecycle {other:?}"),
    }
}

/// Counts how many times any method body actually ran.
struct Counting {
    executed: Arc<AtomicU64>,
}

impl ElasticService for Counting {
    fn dispatch(
        &mut self,
        _method: &str,
        _args: &[u8],
        ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError> {
        self.executed.fetch_add(1, Ordering::SeqCst);
        encode_result(&ctx.uid())
    }
}

fn traced_deps(net: &InProcNetwork, trace: TraceHandle) -> PoolDeps {
    PoolDeps {
        cluster: ClusterHandle::new(ResourceManager::new(ClusterConfig {
            nodes: 16,
            slices_per_node: 1,
            provisioning: LatencyModel::instant(),
            ..ClusterConfig::default()
        })),
        net: Arc::new(net.clone()),
        store: Arc::new(Store::new(StoreConfig::default())),
        clock: Arc::new(SystemClock::new()),
        trace,
        metrics: MetricsHandle::disabled(),
    }
}

#[test]
fn skeleton_rejects_requests_that_arrive_expired() {
    // Delivery latency larger than the whole budget: the request reaches
    // the member only after its deadline, so the skeleton must refuse to
    // dispatch it — the method body never runs, and the rejection shows up
    // as a RequestExpired trace event.
    let net = InProcNetwork::new();
    let (trace, sink) = TraceHandle::buffered(256);
    let deps = traced_deps(&net, trace);
    let executed = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&executed);
    let config = PoolConfig::builder("Counting")
        .min_pool_size(2)
        .max_pool_size(2)
        .build()
        .unwrap();
    let mut pool = ElasticPool::instantiate(
        config,
        Arc::new(move || {
            Box::new(Counting {
                executed: Arc::clone(&counter),
            })
        }),
        deps,
        None,
    )
    .unwrap();
    let mut stub = pool.stub(ClientLb::RoundRobin).unwrap();
    stub.set_reply_timeout(SimDuration::from_millis(500));
    stub.set_invocation_budget(SimDuration::from_millis(50));

    net.set_delivery_latency(Duration::from_millis(80));
    let err = stub.invoke::<(), u64>("count", &()).unwrap_err();
    assert!(
        matches!(err, RmiError::DeadlineExceeded { .. }),
        "got {err:?}"
    );
    // The skeleton sees the request ~80 ms in, 30 ms past its deadline.
    assert!(
        wait_until(5, || sink
            .snapshot()
            .iter()
            .any(|r| matches!(r.event, TraceEvent::RequestExpired { .. }))),
        "the skeleton must record the expired request"
    );
    assert_eq!(
        executed.load(Ordering::SeqCst),
        0,
        "an expired request must never be dispatched"
    );
    net.set_delivery_latency(Duration::ZERO);
    pool.shutdown();
}

#[test]
fn hundred_ms_deadline_bounds_retries_under_lost_replies() {
    // Fault injection on the real pool path: every reply is lost (latency
    // far beyond any attempt timeout), so the stub retries until the 100 ms
    // budget is gone and must then give up — it may not keep retrying, and
    // it may not return success after the deadline.
    let net = InProcNetwork::new();
    let deps = traced_deps(&net, TraceHandle::disabled());
    let clock = Arc::clone(&deps.clock);
    let executed = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&executed);
    let config = PoolConfig::builder("Counting")
        .min_pool_size(2)
        .max_pool_size(2)
        .build()
        .unwrap();
    let mut pool = ElasticPool::instantiate(
        config,
        Arc::new(move || {
            Box::new(Counting {
                executed: Arc::clone(&counter),
            })
        }),
        deps,
        None,
    )
    .unwrap();
    // `instantiate` returns once the *first* member is up; connect only
    // after both exist, or the stub may snapshot a one-member view and
    // exhaust its whole target order inside the 100 ms budget
    // (PoolUnreachable instead of the DeadlineExceeded under test).
    assert!(wait_until(5, || pool.size() == 2), "both members up");
    let mut stub = pool.stub(ClientLb::RoundRobin).unwrap();
    stub.set_reply_timeout(SimDuration::from_millis(30));
    stub.set_invocation_budget(SimDuration::from_millis(100));

    net.set_delivery_latency(Duration::from_secs(5));
    let t0 = clock.now();
    let err = stub.invoke::<(), u64>("count", &()).unwrap_err();
    let elapsed = clock.now().saturating_since(t0);
    let stats = stub.stats();
    net.set_delivery_latency(Duration::ZERO);

    match err {
        RmiError::DeadlineExceeded { attempts } => assert!(attempts >= 2, "got {attempts}"),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(stats.retries >= 1, "the stub retried before expiring");
    assert_eq!(stats.expired, 1);
    assert!(
        elapsed >= SimDuration::from_millis(100),
        "cannot expire before the budget: {elapsed:?}"
    );
    assert!(
        elapsed < SimDuration::from_millis(2_000),
        "expiry must track the 100 ms deadline, not the 5 s network: {elapsed:?}"
    );
    pool.shutdown();
}

/// Votes for growth so the runtime emits scaling trace events.
struct Voting {
    vote: Arc<AtomicI32>,
}

impl ElasticService for Voting {
    fn dispatch(
        &mut self,
        _method: &str,
        _args: &[u8],
        ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError> {
        encode_result(&ctx.uid())
    }

    fn change_pool_size(&mut self, _stats: &MethodCallStats, _ctx: &mut ServiceContext) -> i32 {
        self.vote.load(Ordering::SeqCst)
    }
}

#[test]
fn trace_captures_invocations_and_scaling_decisions() {
    // One sink, wired through PoolDeps, sees both planes: the data plane
    // (attempt -> completion of a stub invocation) and the control plane
    // (members joining at instantiation, then a grow decision).
    let net = InProcNetwork::new();
    let (trace, sink) = TraceHandle::buffered(1024);
    let deps = traced_deps(&net, trace);
    let vote = Arc::new(AtomicI32::new(0));
    let fv = Arc::clone(&vote);
    let config = PoolConfig::builder("Voting")
        .min_pool_size(2)
        .max_pool_size(4)
        .policy(ScalingPolicy::FineGrained)
        .burst_interval(SimDuration::from_millis(100))
        .build()
        .unwrap();
    let mut pool = ElasticPool::instantiate(
        config,
        Arc::new(move || {
            Box::new(Voting {
                vote: Arc::clone(&fv),
            })
        }),
        deps,
        None,
    )
    .unwrap();
    // pool.stub() wires the pool's TraceHandle into the stub.
    let mut stub = pool.stub(ClientLb::RoundRobin).unwrap();
    let _: u64 = stub.invoke("ping", &()).unwrap();

    vote.store(2, Ordering::SeqCst);
    assert!(wait_until(10, || pool.size() == 4), "pool must grow");
    vote.store(0, Ordering::SeqCst);

    let events: Vec<TraceEvent> = sink.snapshot().into_iter().map(|r| r.event).collect();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::AttemptStarted { attempt: 1, .. })),
        "missing AttemptStarted: {events:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::InvocationCompleted { ok: true, .. })),
        "missing InvocationCompleted: {events:?}"
    );
    assert!(
        events
            .iter()
            .filter(|e| matches!(e, TraceEvent::MemberJoined { .. }))
            .count()
            >= 4,
        "2 initial + 2 grown members must be traced: {events:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::ScaleDecision { delta, .. } if *delta > 0)),
        "missing grow ScaleDecision: {events:?}"
    );
    pool.shutdown();
}
