//! Behaviour under a slow network: injected delivery latency must slow
//! invocations down, not break them, and timeouts must turn into retries
//! rather than client-visible errors while the pool is healthy.

mod common;

use std::sync::Arc;

use elasticrmi::{
    encode_result, ClientLb, ElasticService, PoolConfig, RemoteError, ServiceContext,
};
use erm_transport::InProcNetwork;

struct Echo;
impl ElasticService for Echo {
    fn dispatch(
        &mut self,
        method: &str,
        _args: &[u8],
        ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError> {
        match method {
            "ping" => encode_result(&ctx.uid()),
            other => Err(RemoteError::no_such_method(other)),
        }
    }
}

#[test]
fn invocations_survive_injected_latency() {
    let net = InProcNetwork::new();
    let deps = elasticrmi::PoolDeps {
        cluster: common::fast_deps().cluster,
        net: Arc::new(net.clone()),
        store: common::fast_deps().store,
        clock: common::fast_deps().clock,
        trace: common::fast_deps().trace,
        metrics: common::fast_deps().metrics,
    };
    let config = PoolConfig::builder("Echo")
        .min_pool_size(2)
        .max_pool_size(2)
        .build()
        .unwrap();
    let mut pool =
        elasticrmi::ElasticPool::instantiate(config, Arc::new(|| Box::new(Echo)), deps, None)
            .unwrap();
    let mut stub = pool.stub(ClientLb::RoundRobin).unwrap();
    stub.set_reply_timeout(erm_sim::SimDuration::from_secs(2));

    // 20 ms each way: a 40 ms RTT, well within the timeout.
    net.set_delivery_latency(std::time::Duration::from_millis(20));
    let start = std::time::Instant::now();
    for _ in 0..5 {
        let _: u64 = stub.invoke("ping", &()).unwrap();
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed >= std::time::Duration::from_millis(5 * 35),
        "RTT should dominate: {elapsed:?}"
    );
    assert_eq!(stub.stats().invocations, 5);
    net.set_delivery_latency(std::time::Duration::ZERO);
    pool.shutdown();
}

#[test]
fn timeout_turns_into_retry_not_error() {
    let net = InProcNetwork::new();
    let deps = elasticrmi::PoolDeps {
        cluster: common::fast_deps().cluster,
        net: Arc::new(net.clone()),
        store: common::fast_deps().store,
        clock: common::fast_deps().clock,
        trace: common::fast_deps().trace,
        metrics: common::fast_deps().metrics,
    };
    let config = PoolConfig::builder("Echo")
        .min_pool_size(2)
        .max_pool_size(2)
        .build()
        .unwrap();
    let mut pool =
        elasticrmi::ElasticPool::instantiate(config, Arc::new(|| Box::new(Echo)), deps, None)
            .unwrap();
    let mut stub = pool.stub(ClientLb::RoundRobin).unwrap();
    // Timeout shorter than one-way latency: the first attempt always times
    // out; later attempts succeed once the (late) responses of earlier
    // requests... cannot match the new call id, so success requires the
    // latency to drop. Verify the error path first:
    net.set_delivery_latency(std::time::Duration::from_millis(200));
    stub.set_reply_timeout(erm_sim::SimDuration::from_millis(30));
    let err = stub.invoke::<(), u64>("ping", &()).unwrap_err();
    assert!(matches!(err, elasticrmi::RmiError::PoolUnreachable { .. }));
    assert!(stub.stats().retries >= 1, "timeouts must drive retries");

    // Network heals: the same stub recovers without reconnecting.
    net.set_delivery_latency(std::time::Duration::ZERO);
    stub.set_reply_timeout(erm_sim::SimDuration::from_secs(2));
    let uid: u64 = stub.invoke("ping", &()).unwrap();
    let _ = uid;
    pool.shutdown();
}
