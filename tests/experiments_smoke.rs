//! Smoke tests of the evaluation pipeline from the outside: every figure
//! renders, the headline comparisons hold, and the reproduction shape
//! documented in EXPERIMENTS.md is stable.

use erm_apps::AppKind;
use erm_harness::{run_experiment, Deployment, ExperimentConfig, FigureId};
use erm_workloads::PatternKind;

#[test]
fn every_figure_renders_nonempty() {
    for (name, figure) in FigureId::all() {
        let text = figure.render(7);
        assert!(
            text.lines().count() > 5,
            "figure {name} rendered almost nothing:\n{text}"
        );
    }
}

#[test]
fn figure_rendering_is_deterministic() {
    let a = FigureId::parse("7g").unwrap().render(123);
    let b = FigureId::parse("7g").unwrap().render(123);
    assert_eq!(a, b);
    let c = FigureId::parse("7g").unwrap().render(124);
    assert_ne!(a, c, "different seeds should perturb the run");
}

#[test]
fn paper_shape_holds_across_seeds() {
    // The qualitative result must not hinge on one lucky seed.
    for seed in [1u64, 99, 2026] {
        let mut ermi_cfg =
            ExperimentConfig::paper(AppKind::Hedwig, PatternKind::Abrupt, Deployment::ElasticRmi);
        ermi_cfg.seed = seed;
        let mut cw_cfg = ermi_cfg.clone();
        cw_cfg.deployment = Deployment::CloudWatch;
        let ermi = run_experiment(&ermi_cfg).agility.mean_agility();
        let cw = run_experiment(&cw_cfg).agility.mean_agility();
        assert!(
            cw / ermi > 2.0,
            "seed {seed}: CloudWatch/ElasticRMI ratio {:.2} collapsed",
            cw / ermi
        );
    }
}

#[test]
fn elastic_rmi_average_agility_is_near_paper_value() {
    // Paper §5.5: "the average agility of ElasticRMI for abruptly changing
    // workload is 1.37" (Marketcetera). Same order of magnitude expected.
    let r = run_experiment(&ExperimentConfig::paper(
        AppKind::Marketcetera,
        PatternKind::Abrupt,
        Deployment::ElasticRmi,
    ));
    let mean = r.agility.mean_agility();
    assert!((0.3..=3.0).contains(&mean), "mean agility {mean:.2}");
}

#[test]
fn overprovisioning_mean_matches_paper_band() {
    // Paper §5.5: overprovisioning averages 24.1 (abrupt) / 17.2 (cyclic)
    // for Marketcetera. Our substrate reproduces the order of magnitude.
    let abrupt = run_experiment(&ExperimentConfig::paper(
        AppKind::Marketcetera,
        PatternKind::Abrupt,
        Deployment::Overprovision,
    ));
    let cyclic = run_experiment(&ExperimentConfig::paper(
        AppKind::Marketcetera,
        PatternKind::Cyclic,
        Deployment::Overprovision,
    ));
    assert!(abrupt.agility.mean_agility() > 8.0);
    assert!(cyclic.agility.mean_agility() > 8.0);
    // The abrupt pattern wastes more than the cyclic one, as in the paper
    // (24.1 vs 17.2).
    assert!(abrupt.agility.mean_agility() > cyclic.agility.mean_agility());
}

#[test]
fn cyclic_overprovisioning_oscillates() {
    // §5.5: the overprovisioning agility under the cyclic workload follows
    // the workload's three cycles (excess falls as load rises).
    let r = run_experiment(&ExperimentConfig::paper(
        AppKind::Hedwig,
        PatternKind::Cyclic,
        Deployment::Overprovision,
    ));
    let series = r.agility.series();
    let values: Vec<f64> = series.iter().map(|(_, v)| v).collect();
    let peaks = values
        .windows(3)
        .filter(|w| w[1] >= w[0] && w[1] >= w[2] && w[1] > 0.8 * series.max().unwrap())
        .count();
    assert!(peaks >= 2, "expected repeating excess peaks, got {peaks}");
}

#[test]
fn provisioning_latency_grows_with_workload() {
    // Fig. 8 text: "as the workload increases, provisioning interval also
    // increases". Compare early-run vs peak-run latencies.
    let r = run_experiment(&ExperimentConfig::paper(
        AppKind::Dcs,
        PatternKind::Abrupt,
        Deployment::ElasticRmi,
    ));
    let series = r.provisioning.series();
    assert!(series.len() >= 4, "need several provisioning events");
    let mid = erm_sim::SimTime::from_minutes(150);
    let early: Vec<f64> = series
        .iter()
        .filter(|&(t, _)| t < mid)
        .map(|(_, v)| v)
        .collect();
    let late: Vec<f64> = series
        .iter()
        .filter(|&(t, _)| t >= mid)
        .map(|(_, v)| v)
        .collect();
    if !early.is_empty() && !late.is_empty() {
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&late) > avg(&early) * 0.8,
            "late provisioning ({:.1}s) should not be faster than early ({:.1}s)",
            avg(&late),
            avg(&early)
        );
    }
}

#[test]
fn summary_table_runs_the_full_grid() {
    let rows = erm_harness::summary_table(3);
    assert_eq!(rows.len(), 32);
    // Every (app, pattern) block has the oracle worst on average.
    for app in AppKind::ALL {
        for pattern in [PatternKind::Abrupt, PatternKind::Cyclic] {
            let block: Vec<_> = rows
                .iter()
                .filter(|r| r.app == app && r.pattern == pattern)
                .collect();
            let worst = block
                .iter()
                .max_by(|a, b| a.mean_agility.total_cmp(&b.mean_agility))
                .unwrap();
            assert_eq!(
                worst.deployment,
                Deployment::Overprovision,
                "{app}/{pattern}"
            );
        }
    }
}

#[test]
fn master_outage_costs_agility() {
    // Fault injection: a Mesos-master outage across the abrupt ramp leaves
    // the pool unable to add capacity (§4.4), so shortage accumulates; after
    // recovery the controller catches up.
    let mut base = ExperimentConfig::paper(
        AppKind::Marketcetera,
        PatternKind::Abrupt,
        Deployment::ElasticRmi,
    );
    base.seed = 7;
    let healthy = run_experiment(&base);
    let mut faulted = base.clone();
    faulted.master_outage = Some((
        erm_sim::SimTime::from_minutes(140),
        erm_sim::SimTime::from_minutes(200),
    ));
    let degraded = run_experiment(&faulted);
    assert!(
        degraded.agility.mean_shortage() > healthy.agility.mean_shortage() + 0.3,
        "outage should add shortage: {:.2} vs {:.2}",
        degraded.agility.mean_shortage(),
        healthy.agility.mean_shortage()
    );
    // After recovery the pool converges again: the last windows are cheap.
    let tail = degraded
        .agility
        .series()
        .samples()
        .iter()
        .rev()
        .take(5)
        .map(|&(_, v)| v)
        .sum::<f64>()
        / 5.0;
    assert!(
        tail < 3.0,
        "post-recovery agility should settle, tail {tail:.2}"
    );
}

#[test]
fn scalability_curves_reflect_shared_state() {
    // §4.1's caveat quantified: the lock-ordered DCS scales worse than the
    // lock-free order router.
    let sizes = [1, 8, 32];
    let dcs = erm_harness::scalability_curve(&AppKind::Dcs.model(), &sizes);
    let mkt = erm_harness::scalability_curve(&AppKind::Marketcetera.model(), &sizes);
    assert!(dcs[2].efficiency < mkt[2].efficiency);
    assert!(mkt[2].efficiency > 0.85);
}
