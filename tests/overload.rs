//! Acceptance test for the admission-control subsystem (`erm-admission`).
//!
//! Under a 2x point-A burst with the pool pinned at its configured size,
//! the bounded deadline-aware run queue plus AIMD client limiter must
//! strictly beat the legacy unbounded FIFO on goodput while keeping the
//! p99 queueing delay bounded — deterministically, for every seed.

use erm_harness::{run_overload, OverloadConfig};
use erm_sim::SimDuration;

const SEEDS: [u64; 3] = [7, 99, 2026];

#[test]
fn admission_control_beats_unbounded_fifo_on_goodput() {
    for seed in SEEDS {
        let baseline = run_overload(&OverloadConfig::baseline(seed));
        let admission = run_overload(&OverloadConfig::with_admission(seed));
        assert_eq!(baseline.offered, admission.offered, "same workload");
        assert!(
            admission.goodput > baseline.goodput,
            "seed {seed}: admission goodput {} must strictly beat baseline {}",
            admission.goodput,
            baseline.goodput
        );
        assert!(
            admission.rejected > 0,
            "seed {seed}: the burst must trigger Overloaded rejections"
        );
    }
}

#[test]
fn queue_delay_p99_stays_bounded_under_admission_control() {
    // The run queue is bounded at 8 entries and the worst jittered service
    // time is 12 ms, so no admitted request can wait longer than 96 ms.
    let bound = SimDuration::from_micros(8 * 12_000);
    for seed in SEEDS {
        let baseline = run_overload(&OverloadConfig::baseline(seed));
        let admission = run_overload(&OverloadConfig::with_admission(seed));
        assert!(
            admission.queue_delay_p99 <= bound,
            "seed {seed}: p99 {:?} exceeds the structural bound {:?}",
            admission.queue_delay_p99,
            bound
        );
        assert!(
            baseline.queue_delay_p99 > bound,
            "seed {seed}: the unbounded baseline should exhibit the queueing \
             delay the admission bound prevents (saw {:?})",
            baseline.queue_delay_p99
        );
    }
}

#[test]
fn overload_runs_are_deterministic_per_seed() {
    for seed in SEEDS {
        for config in [
            OverloadConfig::baseline(seed),
            OverloadConfig::with_admission(seed),
        ] {
            assert_eq!(
                run_overload(&config),
                run_overload(&config),
                "seed {seed}: identical configs must replay identically"
            );
        }
    }
}

#[test]
fn no_request_is_lost_or_double_counted() {
    for seed in SEEDS {
        for config in [
            OverloadConfig::baseline(seed),
            OverloadConfig::with_admission(seed),
        ] {
            let r = run_overload(&config);
            assert_eq!(
                r.offered,
                r.goodput + r.late + r.expired + r.rejected + r.throttled,
                "seed {seed}: conservation violated in {r:?}"
            );
            assert_eq!(
                r.admission.rejected, r.rejected,
                "seed {seed}: the member's reject tally must match the \
                 Overloaded replies the client saw"
            );
        }
    }
}
