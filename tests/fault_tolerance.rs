//! Fault-tolerance integration tests (paper §4.4): member crashes, sentinel
//! re-election by lowest uid, error propagation to clients, and cluster
//! master outages that pause scaling without stopping service.

mod common;

use std::sync::atomic::{AtomicI32, Ordering};
use std::sync::Arc;

use common::{pool_with, wait_until};
use elasticrmi::{
    decode_args, encode_result, ClientLb, ElasticService, MethodCallStats, PoolConfig, RemoteError,
    RmiError, ScalingPolicy, ServiceContext,
};
use erm_sim::SimDuration;

/// A service that can be made to crash (panic) on request — the "object can
/// crash in the middle of a remote method invocation" failure of §4.4.
struct Fragile {
    vote: Arc<AtomicI32>,
}

impl ElasticService for Fragile {
    fn dispatch(
        &mut self,
        method: &str,
        args: &[u8],
        ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError> {
        match method {
            "ping" => encode_result(&ctx.uid()),
            "die_if_uid" => {
                let victim: u64 = decode_args(method, args)?;
                if ctx.uid() == victim {
                    panic!("injected crash of member {victim}");
                }
                encode_result(&false)
            }
            "fail" => Err(RemoteError::new("AppError", "requested")),
            other => Err(RemoteError::no_such_method(other)),
        }
    }

    fn change_pool_size(&mut self, _stats: &MethodCallStats, _ctx: &mut ServiceContext) -> i32 {
        self.vote.load(Ordering::SeqCst)
    }
}

fn fragile_pool(
    min: u32,
    max: u32,
) -> (
    elasticrmi::ElasticPool,
    elasticrmi::PoolDeps,
    Arc<AtomicI32>,
) {
    let vote = Arc::new(AtomicI32::new(0));
    let fv = Arc::clone(&vote);
    let config = PoolConfig::builder("Fragile")
        .min_pool_size(min)
        .max_pool_size(max)
        .policy(ScalingPolicy::FineGrained)
        .burst_interval(SimDuration::from_millis(100))
        .build()
        .unwrap();
    let (pool, deps) = pool_with(
        config,
        Arc::new(move || {
            Box::new(Fragile {
                vote: Arc::clone(&fv),
            })
        }),
    );
    (pool, deps, vote)
}

/// Crashes member `victim` by invoking `die_if_uid` until every member has
/// seen it (round-robin guarantees coverage within `size` calls).
fn crash_member(stub: &mut elasticrmi::Stub, pool_size: u32, victim: u64) {
    for _ in 0..pool_size * 2 {
        // The call that lands on the victim times out (Failed) and is then
        // retried on a survivor, so the client-visible result is Ok(false).
        let _: Result<bool, _> = stub.invoke("die_if_uid", &victim);
    }
}

#[test]
fn sentinel_crash_triggers_reelection() {
    let (mut pool, _deps, _vote) = fragile_pool(3, 6);
    let old_sentinel = pool.sentinel();
    let mut stub = pool.stub(ClientLb::RoundRobin).unwrap();
    stub.set_reply_timeout(erm_sim::SimDuration::from_millis(300));

    // uid 0 is the lowest uid, hence the sentinel.
    crash_member(&mut stub, 3, 0);
    assert!(
        wait_until(10, || pool.stats().crashed == 1
            && pool.sentinel() != old_sentinel),
        "sentinel should change after the crash (size {}, sentinel {:?})",
        pool.size(),
        pool.sentinel()
    );
    let stats = pool.stats();
    assert_eq!(stats.crashed, 1);
    assert!(stats.elections >= 1, "an election must have been recorded");
    // The engine heals the pool back to its minimum size.
    assert!(wait_until(10, || pool.size() >= 3));

    // The pool keeps serving through the new sentinel.
    let mut stub2 = pool.stub(ClientLb::RoundRobin).unwrap();
    let uid: u64 = stub2.invoke("ping", &()).unwrap();
    assert!(uid > 0, "survivors have uid > 0");
    pool.shutdown();
}

#[test]
fn non_sentinel_crash_needs_no_election() {
    let (mut pool, _deps, _vote) = fragile_pool(3, 6);
    let sentinel = pool.sentinel();
    let mut stub = pool.stub(ClientLb::RoundRobin).unwrap();
    stub.set_reply_timeout(erm_sim::SimDuration::from_millis(300));
    crash_member(&mut stub, 3, 2); // highest uid: not the sentinel
    assert!(wait_until(10, || pool.stats().crashed == 1));
    assert_eq!(pool.sentinel(), sentinel, "sentinel unchanged");
    assert_eq!(pool.stats().elections, 0);
    pool.shutdown();
}

#[test]
fn crashed_capacity_is_regrown_by_scaling() {
    let (mut pool, _deps, _vote) = fragile_pool(3, 6);
    let mut stub = pool.stub(ClientLb::RoundRobin).unwrap();
    stub.set_reply_timeout(erm_sim::SimDuration::from_millis(300));
    crash_member(&mut stub, 3, 1);
    assert!(wait_until(10, || pool.stats().crashed == 1));
    // The elasticity mechanism (min-size clamp at the next burst), not a
    // dedicated recovery path, restores capacity.
    assert!(wait_until(10, || pool.size() >= 3));
    assert!(pool.stats().grown >= 1, "regrowth goes through the cluster");
    pool.shutdown();
}

#[test]
fn remote_exceptions_are_not_failover_events() {
    // An application error must propagate, not trigger retries on other
    // members (it is a result, not a failure).
    let (mut pool, _deps, _vote) = fragile_pool(2, 4);
    let mut stub = pool.stub(ClientLb::RoundRobin).unwrap();
    let err = stub.invoke::<(), bool>("fail", &()).unwrap_err();
    assert!(matches!(err, RmiError::Remote(ref e) if e.kind == "AppError"));
    assert_eq!(stub.stats().retries, 0);
    pool.shutdown();
}

#[test]
fn whole_pool_failure_propagates_to_client() {
    // §4.3/§4.4: ElasticRMI does not hide total failures.
    let (mut pool, deps, _vote) = fragile_pool(2, 4);
    let mut stub = pool.stub(ClientLb::RoundRobin).unwrap();
    stub.set_reply_timeout(erm_sim::SimDuration::from_millis(100));
    // Take the whole pool's endpoints off the network.
    let net = deps.net;
    for ep in pool.members() {
        // Close via the concrete network handle.
        let inproc = &net;
        let _ = inproc; // closing requires the Host trait:
        erm_transport::Host::close(net.as_ref(), ep);
    }
    let err = stub.invoke::<(), u64>("ping", &()).unwrap_err();
    assert!(
        matches!(err, RmiError::PoolUnreachable { attempts } if attempts >= 2),
        "got {err:?}"
    );
    pool.shutdown();
}

#[test]
fn master_outage_pauses_scaling_but_not_service() {
    let (mut pool, deps, vote) = fragile_pool(2, 8);
    // Fail the master "forever" (far future on the system clock).
    deps.cluster
        .fail_master_until(erm_sim::SimTime::from_secs(1_000_000));
    vote.store(3, Ordering::SeqCst);
    std::thread::sleep(std::time::Duration::from_millis(500));
    assert_eq!(pool.size(), 2, "no growth while Mesos is down (§4.4)");
    // Service continues during the outage.
    let mut stub = pool.stub(ClientLb::RoundRobin).unwrap();
    let _: u64 = stub.invoke("ping", &()).unwrap();
    pool.shutdown();
}

#[test]
fn stub_failover_is_transparent_during_member_removal() {
    // Clients with a stale member list keep working: removed members answer
    // Unreachable and the stub retries (§4.3).
    let (mut pool, _deps, vote) = fragile_pool(2, 8);
    vote.store(4, Ordering::SeqCst);
    assert!(wait_until(10, || pool.size() == 8));
    let mut stub = pool.stub(ClientLb::RoundRobin).unwrap();
    stub.set_reply_timeout(erm_sim::SimDuration::from_millis(300));
    assert_eq!(stub.members().len(), 8);
    // Shrink hard while the stub holds the 8-member view.
    vote.store(-4, Ordering::SeqCst);
    assert!(wait_until(15, || pool.size() == 2));
    for _ in 0..16 {
        let uid: u64 = stub.invoke("ping", &()).unwrap();
        let _ = uid;
    }
    pool.shutdown();
}

#[test]
fn node_failure_kills_members_and_pool_recovers() {
    // A whole cluster node dies: every member on its slices is lost at
    // once; the pool reaps them and the min-size clamp regrows capacity on
    // surviving nodes.
    let (mut pool, deps, _vote) = fragile_pool(4, 8);
    // instantiate() returns once the first member is up; the rest provision
    // asynchronously, so wait for the full minimum rather than asserting it.
    assert!(wait_until(10, || pool.size() == 4), "initial provisioning");
    // With 64 nodes x 1 slice in the fixture, members sit on nodes 0..=3.
    deps.cluster.fail_node(erm_cluster::NodeId(0));
    assert!(
        wait_until(10, || pool.stats().crashed >= 1),
        "the member on the failed node must be reaped"
    );
    assert!(
        wait_until(10, || pool.size() >= 4),
        "capacity regrows on surviving nodes, size {}",
        pool.size()
    );
    // The replacement slice is NOT on the failed node.
    let mut stub = pool.stub(ClientLb::RoundRobin).unwrap();
    let _: u64 = stub.invoke("ping", &()).unwrap();
    pool.shutdown();
}
