//! Shared fixtures for the integration tests: a fast in-process deployment
//! (instant provisioning, short burst intervals) hosting any service.

// Each test binary compiles this module separately and uses a subset of it.
#![allow(dead_code)]

use std::sync::Arc;

use elasticrmi::{ElasticPool, PoolConfig, PoolDeps, ServiceFactory};
use erm_cluster::{ClusterConfig, ClusterHandle, LatencyModel, ResourceManager};
use erm_kvstore::{Store, StoreConfig};
use erm_metrics::{MetricsHandle, TraceHandle};
use erm_sim::SystemClock;
use erm_transport::InProcNetwork;

/// A ready-to-use set of substrates with instant provisioning.
pub fn fast_deps() -> PoolDeps {
    PoolDeps {
        cluster: ClusterHandle::new(ResourceManager::new(ClusterConfig {
            nodes: 64,
            slices_per_node: 1,
            provisioning: LatencyModel::instant(),
            ..ClusterConfig::default()
        })),
        net: Arc::new(InProcNetwork::new()),
        store: Arc::new(Store::new(StoreConfig::default())),
        clock: Arc::new(SystemClock::new()),
        trace: TraceHandle::disabled(),
        metrics: MetricsHandle::disabled(),
    }
}

/// Instantiates a pool on fresh fast deps.
pub fn pool_with(config: PoolConfig, factory: ServiceFactory) -> (ElasticPool, PoolDeps) {
    let deps = fast_deps();
    let pool = ElasticPool::instantiate(config, factory, deps.clone(), None)
        .expect("pool instantiates on instant cluster");
    (pool, deps)
}

/// Polls `cond` every 10 ms for up to `secs` seconds.
pub fn wait_until(secs: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(secs);
    while std::time::Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    cond()
}
