//! Shared-state integration tests (paper §2.2, §4.1): the elastic pool must
//! behave as a single remote object — field updates made through any member
//! are visible through every other, `synchronized` methods are mutually
//! exclusive pool-wide, and concurrent clients never lose updates.

mod common;

use std::sync::Arc;

use common::pool_with;
use elasticrmi::{
    decode_args, encode_result, ClientLb, ElasticService, PoolConfig, RemoteError, ServiceContext,
};
use parking_lot::Mutex;

/// A bank-account service exercising both lock-free CAS updates and
/// `synchronized` read-modify-write.
struct Account;

impl ElasticService for Account {
    fn dispatch(
        &mut self,
        method: &str,
        args: &[u8],
        ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError> {
        match method {
            // Lock-free: atomic via compare-and-put retry.
            "deposit_cas" => {
                let amount: i64 = decode_args(method, args)?;
                let balance = ctx.shared::<i64>("balance").update(
                    || 0,
                    |b| {
                        *b += amount;
                        *b
                    },
                );
                encode_result(&balance)
            }
            // Synchronized: plain get/set under the class lock (Fig. 6).
            "deposit_locked" => {
                let amount: i64 = decode_args(method, args)?;
                let balance = ctx.synchronized(|| {
                    let field = ctx.shared::<i64>("balance");
                    let b = field.get().unwrap_or(0) + amount;
                    field.set(&b);
                    b
                });
                encode_result(&balance)
            }
            "balance" => encode_result(&ctx.shared::<i64>("balance").get().unwrap_or(0)),
            "served_by" => encode_result(&ctx.uid()),
            other => Err(RemoteError::no_such_method(other)),
        }
    }
}

fn account_pool(size: u32) -> elasticrmi::ElasticPool {
    let config = PoolConfig::builder("Account")
        .min_pool_size(size)
        .max_pool_size(size)
        .build()
        .unwrap();
    pool_with(config, Arc::new(|| Box::new(Account))).0
}

#[test]
fn state_written_via_one_member_is_read_via_another() {
    let mut pool = account_pool(4);
    let mut stub = pool.stub(ClientLb::RoundRobin).unwrap();
    // Round-robin guarantees these two calls hit different members.
    let _: i64 = stub.invoke("deposit_cas", &100i64).unwrap();
    let balance: i64 = stub.invoke("balance", &()).unwrap();
    assert_eq!(balance, 100, "the pool must look like one object (§2.2)");
    pool.shutdown();
}

#[test]
fn concurrent_cas_deposits_never_lose_money() {
    let pool = Arc::new(Mutex::new(account_pool(4)));
    let mut clients = Vec::new();
    for c in 0..6u64 {
        let pool = Arc::clone(&pool);
        clients.push(std::thread::spawn(move || {
            let mut stub = pool.lock().stub(ClientLb::Random { seed: c }).unwrap();
            for _ in 0..50 {
                let _: i64 = stub.invoke("deposit_cas", &1i64).unwrap();
            }
        }));
    }
    for c in clients {
        c.join().unwrap();
    }
    let mut stub = pool.lock().stub(ClientLb::RoundRobin).unwrap();
    let balance: i64 = stub.invoke("balance", &()).unwrap();
    assert_eq!(balance, 300, "6 clients x 50 deposits of 1");
    pool.lock().shutdown();
}

#[test]
fn concurrent_synchronized_deposits_never_lose_money() {
    // The same invariant through the class lock: mutual exclusion across
    // pool members, not just within one JVM.
    let pool = Arc::new(Mutex::new(account_pool(4)));
    let mut clients = Vec::new();
    for c in 0..4u64 {
        let pool = Arc::clone(&pool);
        clients.push(std::thread::spawn(move || {
            let mut stub = pool
                .lock()
                .stub(ClientLb::Random { seed: 100 + c })
                .unwrap();
            stub.set_reply_timeout(erm_sim::SimDuration::from_secs(5));
            for _ in 0..25 {
                let _: i64 = stub.invoke("deposit_locked", &1i64).unwrap();
            }
        }));
    }
    for c in clients {
        c.join().unwrap();
    }
    let mut stub = pool.lock().stub(ClientLb::RoundRobin).unwrap();
    let balance: i64 = stub.invoke("balance", &()).unwrap();
    assert_eq!(balance, 100, "4 clients x 25 locked deposits of 1");
    pool.lock().shutdown();
}

#[test]
fn round_robin_spreads_load_across_members() {
    let mut pool = account_pool(4);
    let mut stub = pool.stub(ClientLb::RoundRobin).unwrap();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..8 {
        let uid: u64 = stub.invoke("served_by", &()).unwrap();
        seen.insert(uid);
    }
    assert_eq!(seen.len(), 4, "round-robin must reach every member");
    pool.shutdown();
}

#[test]
fn random_lb_also_reaches_multiple_members() {
    let mut pool = account_pool(4);
    let mut stub = pool.stub(ClientLb::Random { seed: 9 }).unwrap();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..40 {
        let uid: u64 = stub.invoke("served_by", &()).unwrap();
        seen.insert(uid);
    }
    assert!(
        seen.len() >= 3,
        "random LB should reach most members, saw {seen:?}"
    );
    pool.shutdown();
}

#[test]
fn state_survives_pool_resize() {
    // Deposit, grow the pool indirectly by rebuilding a bigger one on the
    // same store, and read the balance back: state lives in the external
    // store, not in any member (the paper's durability story, §4.1).
    let config = PoolConfig::builder("Account")
        .min_pool_size(2)
        .max_pool_size(2)
        .build()
        .unwrap();
    let (mut pool, deps) = pool_with(config, Arc::new(|| Box::new(Account)));
    let mut stub = pool.stub(ClientLb::RoundRobin).unwrap();
    let _: i64 = stub.invoke("deposit_cas", &77i64).unwrap();
    pool.shutdown();

    let config2 = PoolConfig::builder("Account")
        .min_pool_size(4)
        .max_pool_size(4)
        .build()
        .unwrap();
    let mut pool2 =
        elasticrmi::ElasticPool::instantiate(config2, Arc::new(|| Box::new(Account)), deps, None)
            .unwrap();
    let mut stub2 = pool2.stub(ClientLb::RoundRobin).unwrap();
    let balance: i64 = stub2.invoke("balance", &()).unwrap();
    assert_eq!(balance, 77);
    pool2.shutdown();
}
