#![warn(missing_docs)]

//! HyperDex-like strongly consistent in-memory key-value store (paper §4.1).
//!
//! ElasticRMI keeps the shared state of an elastic object pool — its instance
//! and static fields — in an external in-memory store with strong
//! consistency, and maps `synchronized` methods onto named distributed locks
//! (`ERMI.lock("C1")` in Fig. 6). This crate is that substrate:
//!
//! * a sharded, versioned, linearizable key-value store ([`Store`]) holding
//!   opaque byte values (the RMI codec lives in `erm-transport`; the field
//!   mapping like `"C1$x"` lives in `elasticrmi::state`),
//! * conditional writes (`compare_and_put`) used for atomic read-modify-write
//!   of shared fields,
//! * prefix scans (backing the DCS hierarchical namespace),
//! * a named lock manager with owner tracking and TTL expiry
//!   ([`Store::try_lock`]), and
//! * operation statistics (including lock contention), which applications
//!   surface as fine-grained elasticity metrics (`avgLockAcqFailure` in the
//!   paper's `CacheExplicit2`).
//!
//! Like HyperDex in the paper, durability matches Java RMI's: state lives in
//! memory only.
//!
//! # Example
//!
//! ```
//! use erm_kvstore::{LockOwner, Store, StoreConfig};
//! use erm_sim::{SimDuration, SimTime};
//!
//! let store = Store::new(StoreConfig::default());
//! store.put("C1$x", b"5".to_vec());
//! assert_eq!(store.get("C1$x").unwrap().value, b"5");
//!
//! let me = LockOwner::new(1);
//! assert!(store.try_lock("C1", me, SimTime::ZERO, SimDuration::from_secs(30)));
//! store.unlock("C1", me).unwrap();
//! ```

mod locks;
mod store;

pub use locks::{LockError, LockManager, LockOwner, LockStats};
pub use store::{CasError, Store, StoreConfig, StoreStats, Versioned};
