//! The sharded, versioned store.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use erm_sim::{SimDuration, SimTime};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::locks::{LockError, LockManager, LockOwner, LockStats};

/// A value together with its monotonically increasing version.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Versioned {
    /// The stored bytes.
    pub value: Vec<u8>,
    /// Version assigned by the store; 1 for the first write of a key.
    pub version: u64,
}

/// Error returned by [`Store::compare_and_put`] when the expected version
/// does not match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CasError {
    /// The version actually stored (`None` if the key is absent).
    pub actual: Option<u64>,
}

impl fmt::Display for CasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.actual {
            Some(v) => write!(f, "compare-and-put conflict: stored version is {v}"),
            None => write!(f, "compare-and-put conflict: key is absent"),
        }
    }
}

impl std::error::Error for CasError {}

/// Store construction parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Number of shards (each with its own reader-writer lock). More shards
    /// means more write parallelism, mirroring HyperDex's partitioned space.
    pub shards: usize,
    /// Number of backing "nodes" the store runs on. ElasticRMI instantiates
    /// HyperDex on one Mesos slice and "may add additional nodes to HyperDex
    /// as necessary" (§4.2); the node count scales the modelled op capacity.
    pub initial_nodes: u32,
    /// Modelled operations/second one node sustains; used by the simulation
    /// harness for latency accounting, not enforced on real calls.
    pub ops_per_node_per_sec: f64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: 16,
            initial_nodes: 1,
            ops_per_node_per_sec: 200_000.0,
        }
    }
}

/// Counters exposed for metrics and fine-grained scaling decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StoreStats {
    /// Completed `get` operations.
    pub gets: u64,
    /// Completed `put` operations.
    pub puts: u64,
    /// Completed `delete` operations.
    pub deletes: u64,
    /// `compare_and_put` calls that failed the version check.
    pub cas_conflicts: u64,
}

/// The strongly consistent in-memory store. See the [crate docs](crate).
///
/// All operations are linearizable: each key lives in exactly one shard and
/// every read/write takes that shard's lock.
#[derive(Debug)]
pub struct Store {
    shards: Vec<RwLock<BTreeMap<String, Versioned>>>,
    locks: LockManager,
    nodes: AtomicU64,
    config: StoreConfig,
    gets: AtomicU64,
    puts: AtomicU64,
    deletes: AtomicU64,
    cas_conflicts: AtomicU64,
}

impl Store {
    /// Creates an empty store.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` or `config.initial_nodes` is zero.
    pub fn new(config: StoreConfig) -> Self {
        assert!(config.shards > 0, "store needs at least one shard");
        assert!(config.initial_nodes > 0, "store needs at least one node");
        Store {
            shards: (0..config.shards)
                .map(|_| RwLock::new(BTreeMap::new()))
                .collect(),
            locks: LockManager::new(),
            nodes: AtomicU64::new(u64::from(config.initial_nodes)),
            config,
            gets: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            cas_conflicts: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &str) -> &RwLock<BTreeMap<String, Versioned>> {
        // FNV-1a over the key selects the shard.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(hash % self.shards.len() as u64) as usize]
    }

    /// Reads the current value of `key`.
    pub fn get(&self, key: &str) -> Option<Versioned> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.shard_of(key).read().get(key).cloned()
    }

    /// Writes `value`, returning the new version (1 for a fresh key).
    pub fn put(&self, key: &str, value: Vec<u8>) -> u64 {
        self.puts.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_of(key).write();
        let version = shard.get(key).map_or(1, |v| v.version + 1);
        shard.insert(key.to_string(), Versioned { value, version });
        version
    }

    /// Writes `value` only if the stored version equals `expected`
    /// (`None` = key must be absent). Returns the new version on success.
    ///
    /// # Errors
    ///
    /// Returns [`CasError`] with the actual version on mismatch.
    pub fn compare_and_put(
        &self,
        key: &str,
        expected: Option<u64>,
        value: Vec<u8>,
    ) -> Result<u64, CasError> {
        self.puts.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_of(key).write();
        let actual = shard.get(key).map(|v| v.version);
        if actual != expected {
            self.cas_conflicts.fetch_add(1, Ordering::Relaxed);
            return Err(CasError { actual });
        }
        let version = actual.unwrap_or(0) + 1;
        shard.insert(key.to_string(), Versioned { value, version });
        Ok(version)
    }

    /// Removes `key`, returning whether it existed.
    pub fn delete(&self, key: &str) -> bool {
        self.deletes.fetch_add(1, Ordering::Relaxed);
        self.shard_of(key).write().remove(key).is_some()
    }

    /// Total number of stored keys.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All keys starting with `prefix`, sorted. Backs hierarchical
    /// namespaces (the DCS application lists children of a path this way).
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        let mut keys: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .range(prefix.to_string()..)
                    .take_while(|(k, _)| k.starts_with(prefix))
                    .map(|(k, _)| k.clone())
                    .collect::<Vec<_>>()
            })
            .collect();
        keys.sort();
        keys
    }

    /// Attempts to acquire the named lock for `owner`, valid for `ttl` from
    /// `now`. Lock acquisition is idempotent for the current holder (the
    /// TTL is refreshed). Returns `false` when another owner holds it.
    ///
    /// This is the mechanism behind `synchronized` elastic methods: the
    /// preprocessor-equivalent wraps the method body in a lock named after
    /// the class (Fig. 6).
    pub fn try_lock(&self, name: &str, owner: LockOwner, now: SimTime, ttl: SimDuration) -> bool {
        self.locks.try_lock(name, owner, now, ttl)
    }

    /// Acquires the named lock for `owner`, blocking until the lock frees
    /// up, its holder's TTL (measured on `clock`) lapses, or the holder is
    /// crash-reclaimed. Returns `false` if `owner` itself is fenced. See
    /// [`LockManager::lock_blocking`] for the clock-awareness contract.
    pub fn lock_blocking(
        &self,
        name: &str,
        owner: LockOwner,
        clock: &dyn erm_sim::Clock,
        ttl: SimDuration,
    ) -> bool {
        self.locks.lock_blocking(name, owner, clock, ttl)
    }

    /// Releases the named lock.
    ///
    /// # Errors
    ///
    /// Returns [`LockError`] if `owner` does not hold the lock.
    pub fn unlock(&self, name: &str, owner: LockOwner) -> Result<(), LockError> {
        self.locks.unlock(name, owner)
    }

    /// Releases the named lock, recording hold time (acquire → `now`) when
    /// lock metrics are installed.
    ///
    /// # Errors
    ///
    /// Returns [`LockError`] if `owner` does not hold the lock.
    pub fn unlock_at(&self, name: &str, owner: LockOwner, now: SimTime) -> Result<(), LockError> {
        self.locks.unlock_at(name, owner, now)
    }

    /// Force-releases every lock held by `owner` and fences the owner so a
    /// stale resurrected member can never lock or unlock under its old
    /// identity again. Called by the pool when it reaps a crashed member, so
    /// `synchronized` methods stop stalling on dead holders (§4.4). Returns
    /// the reclaimed lock names, sorted.
    pub fn release_owner(&self, owner: LockOwner, now: SimTime) -> Vec<String> {
        self.locks.release_owner(owner, now)
    }

    /// The fencing epoch at which `owner` was fenced, if it was.
    pub fn fenced_epoch(&self, owner: LockOwner) -> Option<u64> {
        self.locks.fenced_epoch(owner)
    }

    /// Every currently held lock as `(name, owner)`, sorted — the
    /// quiesce-time orphaned-lock check.
    pub fn held_locks(&self) -> Vec<(String, LockOwner)> {
        self.locks.held_locks()
    }

    /// Registers `kv.lock.wait` / `kv.lock.hold` histograms for this store's
    /// lock table.
    pub fn install_lock_metrics(&self, metrics: &erm_metrics::MetricsHandle) {
        self.locks.install_metrics(metrics);
    }

    /// Lock contention statistics (fed into fine-grained scaling metrics).
    pub fn lock_stats(&self) -> LockStats {
        self.locks.stats()
    }

    /// Operation counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            cas_conflicts: self.cas_conflicts.load(Ordering::Relaxed),
        }
    }

    /// Number of backing store nodes.
    pub fn nodes(&self) -> u32 {
        self.nodes.load(Ordering::Relaxed) as u32
    }

    /// Adds `n` store nodes (capacity growth; §4.2 "ElasticRMI may add
    /// additional nodes to HyperDex as necessary").
    pub fn add_nodes(&self, n: u32) {
        self.nodes.fetch_add(u64::from(n), Ordering::Relaxed);
    }

    /// Modelled aggregate throughput capacity in ops/second, used by the
    /// simulation harness to account for store-induced latency.
    pub fn modelled_capacity_ops(&self) -> f64 {
        self.config.ops_per_node_per_sec * self.nodes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn store() -> Store {
        Store::new(StoreConfig::default())
    }

    #[test]
    fn put_get_roundtrip() {
        let s = store();
        s.put("k", b"v".to_vec());
        assert_eq!(s.get("k").unwrap().value, b"v");
        assert_eq!(s.get("absent"), None);
    }

    #[test]
    fn versions_increase_monotonically() {
        let s = store();
        assert_eq!(s.put("k", b"1".to_vec()), 1);
        assert_eq!(s.put("k", b"2".to_vec()), 2);
        assert_eq!(s.get("k").unwrap().version, 2);
    }

    #[test]
    fn cas_succeeds_on_matching_version() {
        let s = store();
        let v = s.put("k", b"1".to_vec());
        let v2 = s.compare_and_put("k", Some(v), b"2".to_vec()).unwrap();
        assert_eq!(v2, 2);
        assert_eq!(s.get("k").unwrap().value, b"2");
    }

    #[test]
    fn cas_fails_on_stale_version() {
        let s = store();
        s.put("k", b"1".to_vec());
        s.put("k", b"2".to_vec());
        let err = s.compare_and_put("k", Some(1), b"x".to_vec()).unwrap_err();
        assert_eq!(err.actual, Some(2));
        assert_eq!(s.stats().cas_conflicts, 1);
        assert_eq!(s.get("k").unwrap().value, b"2");
    }

    #[test]
    fn cas_none_means_create_only() {
        let s = store();
        assert_eq!(s.compare_and_put("k", None, b"1".to_vec()), Ok(1));
        let err = s.compare_and_put("k", None, b"2".to_vec()).unwrap_err();
        assert_eq!(err.actual, Some(1));
    }

    #[test]
    fn delete_removes_and_reports() {
        let s = store();
        s.put("k", b"1".to_vec());
        assert!(s.delete("k"));
        assert!(!s.delete("k"));
        assert_eq!(s.get("k"), None);
        // A fresh write after delete restarts versioning.
        assert_eq!(s.put("k", b"2".to_vec()), 1);
    }

    #[test]
    fn prefix_scan_is_sorted_and_scoped() {
        let s = store();
        for k in ["/a/1", "/a/2", "/b/1", "/a", "/ab"] {
            s.put(k, vec![]);
        }
        assert_eq!(s.keys_with_prefix("/a/"), vec!["/a/1", "/a/2"]);
        assert_eq!(s.keys_with_prefix("/a"), vec!["/a", "/a/1", "/a/2", "/ab"]);
        assert!(s.keys_with_prefix("/zzz").is_empty());
    }

    #[test]
    fn len_spans_shards() {
        let s = store();
        for i in 0..100 {
            s.put(&format!("key-{i}"), vec![]);
        }
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
    }

    #[test]
    fn stats_count_operations() {
        let s = store();
        s.put("a", vec![]);
        s.get("a");
        s.get("b");
        s.delete("a");
        let st = s.stats();
        assert_eq!((st.puts, st.gets, st.deletes), (1, 2, 1));
    }

    #[test]
    fn add_nodes_scales_modelled_capacity() {
        let s = Store::new(StoreConfig {
            ops_per_node_per_sec: 1000.0,
            ..StoreConfig::default()
        });
        assert_eq!(s.modelled_capacity_ops(), 1000.0);
        s.add_nodes(3);
        assert_eq!(s.nodes(), 4);
        assert_eq!(s.modelled_capacity_ops(), 4000.0);
    }

    #[test]
    fn concurrent_puts_are_linearizable_per_key() {
        let s = Arc::new(store());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.put("counter", b"x".to_vec());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 8 threads * 1000 puts -> final version is exactly 8000.
        assert_eq!(s.get("counter").unwrap().version, 8000);
    }

    #[test]
    fn concurrent_cas_admits_exactly_one_winner_per_round() {
        let s = Arc::new(store());
        s.put("k", b"0".to_vec());
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mut wins = 0u32;
                for _ in 0..500 {
                    let cur = s.get("k").unwrap();
                    if s.compare_and_put("k", Some(cur.version), vec![t]).is_ok() {
                        wins += 1;
                    }
                }
                wins
            }));
        }
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // Every successful CAS bumps the version by exactly 1.
        assert_eq!(s.get("k").unwrap().version, u64::from(total) + 1);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = Store::new(StoreConfig {
            shards: 0,
            ..StoreConfig::default()
        });
    }
}

#[cfg(test)]
mod randomized {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap as Model;

    fn rand_key(rng: &mut StdRng, alphabet: &[u8], max_len: usize) -> String {
        let len = rng.gen_range(1usize..=max_len);
        (0..len)
            .map(|_| alphabet[rng.gen_range(0usize..alphabet.len())] as char)
            .collect()
    }

    /// The sharded store behaves exactly like one big ordered map
    /// (seeded-random replacement for the former proptest property).
    #[test]
    fn store_matches_model() {
        let mut rng = StdRng::seed_from_u64(0xCAFE);
        for _ in 0..50 {
            let store = Store::new(StoreConfig::default());
            let mut model: Model<String, Vec<u8>> = Model::new();
            let ops = rng.gen_range(1usize..200);
            for _ in 0..ops {
                let key = rand_key(&mut rng, b"abc", 3);
                match rng.gen_range(0u8..3) {
                    0 => {
                        let len = rng.gen_range(0usize..4);
                        let value: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
                        store.put(&key, value.clone());
                        model.insert(key, value);
                    }
                    1 => {
                        let got = store.get(&key).map(|v| v.value);
                        assert_eq!(got, model.get(&key).cloned());
                    }
                    _ => {
                        let got = store.delete(&key);
                        assert_eq!(got, model.remove(&key).is_some());
                    }
                }
            }
            assert_eq!(store.len(), model.len());
            // Prefix scans agree with the model.
            let scanned = store.keys_with_prefix("a");
            let expected: Vec<String> = model
                .keys()
                .filter(|k| k.starts_with('a'))
                .cloned()
                .collect();
            assert_eq!(scanned, expected);
        }
    }

    /// Versions count writes exactly, independent of interleaving.
    #[test]
    fn versions_count_writes() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for _ in 0..20 {
            let store = Store::new(StoreConfig::default());
            let mut writes: std::collections::HashMap<String, u64> = Default::default();
            let n = rng.gen_range(1usize..100);
            for _ in 0..n {
                let key = rand_key(&mut rng, b"ab", 2);
                let v = store.put(&key, vec![]);
                let n = writes.entry(key).or_insert(0);
                *n += 1;
                assert_eq!(v, *n);
            }
        }
    }
}
