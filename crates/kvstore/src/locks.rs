//! Named distributed locks with TTL expiry.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use erm_metrics::{Histogram, MetricsHandle};
use erm_sim::{Clock, SimDuration, SimTime};
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};

/// How long a blocked [`LockManager::lock_blocking`] waiter sleeps before
/// re-reading the injected clock. Release and crash-reclamation wake it
/// immediately through the condvar; this bound only covers TTL expiry
/// driven by a clock advancing with no table change to signal.
const EXPIRY_POLL: std::time::Duration = std::time::Duration::from_millis(1);

/// Identifies a lock holder (one elastic object / skeleton).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LockOwner(u64);

impl LockOwner {
    /// Creates an owner id.
    pub const fn new(id: u64) -> Self {
        LockOwner(id)
    }

    /// The raw id.
    pub const fn id(self) -> u64 {
        self.0
    }
}

impl fmt::Display for LockOwner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "owner-{}", self.0)
    }
}

/// Errors from lock release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockError {
    /// The lock is not currently held at all.
    NotHeld,
    /// The lock is held by a different owner.
    HeldByOther(LockOwner),
    /// The owner was fenced at the given epoch (its locks were force-released
    /// after a crash) and may no longer act on the lock table.
    Fenced(u64),
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::NotHeld => write!(f, "lock is not held"),
            LockError::HeldByOther(o) => write!(f, "lock is held by {o}"),
            LockError::Fenced(epoch) => write!(f, "owner fenced at epoch {epoch}"),
        }
    }
}

impl std::error::Error for LockError {}

/// Contention counters. `failure_rate()` is the paper's `avgLockAcqFailure`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LockStats {
    /// Total acquisition attempts.
    pub attempts: u64,
    /// Attempts that failed because another owner held the lock.
    pub failures: u64,
    /// Locks reclaimed after their TTL lapsed (crashed holders).
    pub expirations: u64,
    /// Locks force-released by [`LockManager::release_owner`] when their
    /// holder was reaped (crash reclamation, ahead of TTL expiry).
    pub reclaimed: u64,
}

impl LockStats {
    /// Fraction of acquisition attempts that failed, in `[0, 1]`.
    pub fn failure_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.failures as f64 / self.attempts as f64
        }
    }
}

#[derive(Debug)]
struct Holder {
    owner: LockOwner,
    expires_at: SimTime,
    acquired_at: SimTime,
}

/// Both maps live under one mutex so wait bookkeeping can never race the
/// holder table.
#[derive(Debug, Default)]
struct Tables {
    holders: HashMap<String, Holder>,
    /// When each `(lock, owner)` pair first failed to acquire — the start of
    /// its wait, cleared on success.
    waiting: HashMap<(String, LockOwner), SimTime>,
    /// Owners whose locks were force-released, mapped to the fencing epoch at
    /// which that happened. A fenced owner can never touch the table again:
    /// pool uids are never reused, so a fenced owner is a ghost by
    /// definition, and rejecting it is what makes force-release safe against
    /// a stale member resurrected by the cluster.
    fenced: HashMap<LockOwner, u64>,
    /// Monotonic fencing epoch, bumped by every force-release.
    epoch: u64,
}

/// Registry instruments for lock contention, installed once per manager.
#[derive(Debug)]
struct LockTelemetry {
    wait: Histogram,
    hold: Histogram,
}

/// The lock table. Embedded in [`crate::Store`]; usable standalone in tests.
///
/// Locks carry a TTL so that a holder that crashes mid-critical-section
/// (an RMI object "can crash in the middle of a remote method invocation",
/// §4.4) cannot wedge the whole pool: the next attempt after expiry steals
/// the lock.
#[derive(Debug, Default)]
pub struct LockManager {
    table: Mutex<Tables>,
    /// Signalled on every release (explicit or crash reclamation) so
    /// blocked acquirers re-try immediately instead of polling blind.
    changed: Condvar,
    attempts: AtomicU64,
    failures: AtomicU64,
    expirations: AtomicU64,
    reclaimed: AtomicU64,
    telemetry: OnceLock<LockTelemetry>,
}

impl LockManager {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `kv.lock.wait` and `kv.lock.hold` histograms with
    /// `metrics`, making shared-state contention (§4.1) visible in the
    /// registry rather than only as end-to-end latency. Later installs on
    /// the same manager are ignored.
    pub fn install_metrics(&self, metrics: &MetricsHandle) {
        let _ = self.telemetry.set(LockTelemetry {
            wait: metrics.histogram("kv.lock.wait"),
            hold: metrics.histogram("kv.lock.hold"),
        });
    }

    /// Attempts to acquire `name` for `owner` until `now + ttl`.
    ///
    /// Succeeds when the lock is free, expired, or already held by `owner`
    /// (refreshing the TTL). Returns `false` when held by another live
    /// owner.
    ///
    /// When metrics are installed, every successful acquisition records the
    /// acquire-wait time: zero for an uncontended first try, otherwise the
    /// span since this owner's first failed attempt on the lock.
    pub fn try_lock(&self, name: &str, owner: LockOwner, now: SimTime, ttl: SimDuration) -> bool {
        self.attempts.fetch_add(1, Ordering::Relaxed);
        let mut tables = self.table.lock();
        if tables.fenced.contains_key(&owner) {
            // A fenced owner is a reaped member; it must not re-enter any
            // critical section under its old identity.
            self.failures.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        match tables.holders.get(name) {
            Some(holder) if holder.owner != owner && holder.expires_at > now => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                tables
                    .waiting
                    .entry((name.to_string(), owner))
                    .or_insert(now);
                false
            }
            other => {
                if matches!(other, Some(h) if h.owner != owner) {
                    self.expirations.fetch_add(1, Ordering::Relaxed);
                }
                // A TTL refresh by the current holder keeps its original
                // acquisition time so hold measurement spans the whole
                // critical section.
                let acquired_at = match other {
                    Some(h) if h.owner == owner => h.acquired_at,
                    _ => now,
                };
                tables.holders.insert(
                    name.to_string(),
                    Holder {
                        owner,
                        expires_at: now + ttl,
                        acquired_at,
                    },
                );
                let waited = tables
                    .waiting
                    .remove(&(name.to_string(), owner))
                    .map_or(SimDuration::ZERO, |since| now.saturating_since(since));
                if let Some(telemetry) = self.telemetry.get() {
                    telemetry.wait.record(waited);
                }
                true
            }
        }
    }

    /// Releases `name` if held by `owner`, recording the hold time (from
    /// first acquisition to `now`) when metrics are installed.
    ///
    /// # Errors
    ///
    /// [`LockError::NotHeld`] if nobody holds the lock,
    /// [`LockError::HeldByOther`] if another owner does.
    pub fn unlock_at(&self, name: &str, owner: LockOwner, now: SimTime) -> Result<(), LockError> {
        let acquired_at = self.release(name, owner)?;
        if let Some(telemetry) = self.telemetry.get() {
            telemetry.hold.record(now.saturating_since(acquired_at));
        }
        Ok(())
    }

    /// Releases `name` if held by `owner`. Prefer [`LockManager::unlock_at`]
    /// when a clock is available — this variant cannot record hold time.
    ///
    /// # Errors
    ///
    /// [`LockError::NotHeld`] if nobody holds the lock,
    /// [`LockError::HeldByOther`] if another owner does.
    pub fn unlock(&self, name: &str, owner: LockOwner) -> Result<(), LockError> {
        self.release(name, owner).map(|_| ())
    }

    fn release(&self, name: &str, owner: LockOwner) -> Result<SimTime, LockError> {
        let mut tables = self.table.lock();
        if let Some(&epoch) = tables.fenced.get(&owner) {
            // A stale member resurrected by the cluster must not unlock a
            // lock it no longer owns: its release was already performed (and
            // fenced) by `release_owner`.
            return Err(LockError::Fenced(epoch));
        }
        match tables.holders.get(name) {
            None => Err(LockError::NotHeld),
            Some(h) if h.owner != owner => Err(LockError::HeldByOther(h.owner)),
            Some(h) => {
                let acquired_at = h.acquired_at;
                tables.holders.remove(name);
                self.changed.notify_all();
                Ok(acquired_at)
            }
        }
    }

    /// Acquires `name` for `owner`, blocking until the lock is free, its
    /// holder's TTL (measured on `clock`) lapses, or the holder is
    /// crash-reclaimed by [`LockManager::release_owner`]. The wait is
    /// clock-aware: releases and reclamations wake it through a condition
    /// variable, and the injected clock is re-read at least every
    /// millisecond of wall time so a `VirtualClock` advanced past the
    /// holder's TTL unblocks the waiter promptly — there is no real-time
    /// sleep whose length depends on sim-time quantities.
    ///
    /// Returns `false` (never blocks forever) when `owner` is fenced: a
    /// reaped member must not re-enter critical sections, and spinning on
    /// `try_lock` would otherwise never terminate.
    pub fn lock_blocking(
        &self,
        name: &str,
        owner: LockOwner,
        clock: &dyn Clock,
        ttl: SimDuration,
    ) -> bool {
        loop {
            if self.try_lock(name, owner, clock.now(), ttl) {
                return true;
            }
            let mut tables = self.table.lock();
            if tables.fenced.contains_key(&owner) {
                return false;
            }
            // Re-check under the table lock: the holder may have released
            // between the failed try_lock and here, in which case waiting
            // for the *next* notification would stall a full poll tick.
            let now = clock.now();
            let excluded = tables
                .holders
                .get(name)
                .is_some_and(|h| h.owner != owner && h.expires_at > now);
            if excluded {
                self.changed.wait_for(&mut tables, EXPIRY_POLL);
            }
        }
    }

    /// Force-releases every lock held by `owner` and fences the owner so it
    /// can never lock or unlock again. Called when the pool reaps a crashed
    /// member: without this, `synchronized` methods stall pool-wide until
    /// the dead member's TTLs lapse (§4.4).
    ///
    /// Returns the names of the reclaimed locks, sorted. Hold times are
    /// recorded (acquire → `now`) when metrics are installed. Idempotent:
    /// fencing an already-fenced owner reclaims nothing and keeps its
    /// original epoch.
    pub fn release_owner(&self, owner: LockOwner, now: SimTime) -> Vec<String> {
        let mut tables = self.table.lock();
        if tables.fenced.contains_key(&owner) {
            return Vec::new();
        }
        tables.epoch += 1;
        let epoch = tables.epoch;
        tables.fenced.insert(owner, epoch);
        let mut names: Vec<String> = tables
            .holders
            .iter()
            .filter(|(_, h)| h.owner == owner)
            .map(|(name, _)| name.clone())
            .collect();
        names.sort();
        for name in &names {
            if let Some(holder) = tables.holders.remove(name) {
                if let Some(telemetry) = self.telemetry.get() {
                    telemetry
                        .hold
                        .record(now.saturating_since(holder.acquired_at));
                }
            }
        }
        tables.waiting.retain(|(_, waiter), _| *waiter != owner);
        self.reclaimed
            .fetch_add(names.len() as u64, Ordering::Relaxed);
        // Wake blocked acquirers: the reclaimed locks are free, and any
        // waiter that *is* the fenced owner must notice and give up.
        self.changed.notify_all();
        names
    }

    /// The fencing epoch at which `owner` was fenced, if it was.
    pub fn fenced_epoch(&self, owner: LockOwner) -> Option<u64> {
        self.table.lock().fenced.get(&owner).copied()
    }

    /// The current holder of `name`, if any (ignoring expiry).
    pub fn holder(&self, name: &str) -> Option<LockOwner> {
        self.table.lock().holders.get(name).map(|h| h.owner)
    }

    /// Every currently held lock as `(name, owner)`, sorted by name — the
    /// quiesce-time leak check for churn harnesses: after all members have
    /// drained or been reaped, this must be empty.
    pub fn held_locks(&self) -> Vec<(String, LockOwner)> {
        let tables = self.table.lock();
        let mut held: Vec<(String, LockOwner)> = tables
            .holders
            .iter()
            .map(|(name, h)| (name.clone(), h.owner))
            .collect();
        held.sort();
        held
    }

    /// Snapshot of contention counters.
    pub fn stats(&self) -> LockStats {
        LockStats {
            attempts: self.attempts.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            expirations: self.expirations.load(Ordering::Relaxed),
            reclaimed: self.reclaimed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TTL: SimDuration = SimDuration::from_secs(30);

    #[test]
    fn exclusive_acquisition() {
        let locks = LockManager::new();
        let (a, b) = (LockOwner::new(1), LockOwner::new(2));
        assert!(locks.try_lock("C1", a, SimTime::ZERO, TTL));
        assert!(!locks.try_lock("C1", b, SimTime::from_secs(1), TTL));
        assert_eq!(locks.holder("C1"), Some(a));
    }

    #[test]
    fn reacquire_by_holder_refreshes_ttl() {
        let locks = LockManager::new();
        let a = LockOwner::new(1);
        assert!(locks.try_lock("C1", a, SimTime::ZERO, TTL));
        assert!(locks.try_lock("C1", a, SimTime::from_secs(20), TTL));
        // Without the refresh this would be past expiry (t=35 > 0+30).
        let b = LockOwner::new(2);
        assert!(!locks.try_lock("C1", b, SimTime::from_secs(35), TTL));
    }

    #[test]
    fn unlock_then_other_acquires() {
        let locks = LockManager::new();
        let (a, b) = (LockOwner::new(1), LockOwner::new(2));
        locks.try_lock("C1", a, SimTime::ZERO, TTL);
        locks.unlock("C1", a).unwrap();
        assert!(locks.try_lock("C1", b, SimTime::from_secs(1), TTL));
    }

    #[test]
    fn unlock_errors_are_precise() {
        let locks = LockManager::new();
        let (a, b) = (LockOwner::new(1), LockOwner::new(2));
        assert_eq!(locks.unlock("C1", a), Err(LockError::NotHeld));
        locks.try_lock("C1", a, SimTime::ZERO, TTL);
        assert_eq!(locks.unlock("C1", b), Err(LockError::HeldByOther(a)));
    }

    #[test]
    fn expired_lock_is_stolen() {
        let locks = LockManager::new();
        let (a, b) = (LockOwner::new(1), LockOwner::new(2));
        locks.try_lock("C1", a, SimTime::ZERO, TTL);
        assert!(locks.try_lock("C1", b, SimTime::from_secs(31), TTL));
        assert_eq!(locks.holder("C1"), Some(b));
        assert_eq!(locks.stats().expirations, 1);
    }

    #[test]
    fn stats_track_contention() {
        let locks = LockManager::new();
        let (a, b) = (LockOwner::new(1), LockOwner::new(2));
        locks.try_lock("C1", a, SimTime::ZERO, TTL);
        for _ in 0..3 {
            locks.try_lock("C1", b, SimTime::from_secs(1), TTL);
        }
        let stats = locks.stats();
        assert_eq!(stats.attempts, 4);
        assert_eq!(stats.failures, 3);
        assert_eq!(stats.failure_rate(), 0.75);
    }

    #[test]
    fn distinct_locks_are_independent() {
        let locks = LockManager::new();
        let (a, b) = (LockOwner::new(1), LockOwner::new(2));
        assert!(locks.try_lock("C1", a, SimTime::ZERO, TTL));
        assert!(locks.try_lock("C2", b, SimTime::ZERO, TTL));
    }

    #[test]
    fn failure_rate_of_empty_stats_is_zero() {
        assert_eq!(LockStats::default().failure_rate(), 0.0);
    }

    #[test]
    fn metrics_record_wait_and_hold_time() {
        let locks = LockManager::new();
        let (metrics, registry) = MetricsHandle::shared();
        locks.install_metrics(&metrics);
        let (a, b) = (LockOwner::new(1), LockOwner::new(2));

        // a acquires uncontended at t=0 (zero wait), holds 10s.
        assert!(locks.try_lock("C1", a, SimTime::ZERO, TTL));
        // b fails at t=2, fails again, finally gets it at t=12: 10s wait.
        assert!(!locks.try_lock("C1", b, SimTime::from_secs(2), TTL));
        assert!(!locks.try_lock("C1", b, SimTime::from_secs(6), TTL));
        locks.unlock_at("C1", a, SimTime::from_secs(10)).unwrap();
        assert!(locks.try_lock("C1", b, SimTime::from_secs(12), TTL));

        let snap = registry.snapshot(SimTime::from_secs(12));
        let wait = &snap
            .histograms
            .iter()
            .find(|(name, _)| *name == "kv.lock.wait")
            .expect("wait histogram registered")
            .1;
        assert_eq!(wait.count(), 2, "one per successful acquisition");
        assert_eq!(wait.max(), Some(SimDuration::from_secs(10)));
        let hold = &snap
            .histograms
            .iter()
            .find(|(name, _)| *name == "kv.lock.hold")
            .expect("hold histogram registered")
            .1;
        assert_eq!(hold.count(), 1);
        assert_eq!(hold.max(), Some(SimDuration::from_secs(10)));
    }

    #[test]
    fn lock_blocking_acquires_immediately_when_free() {
        let locks = LockManager::new();
        let clock = erm_sim::VirtualClock::new();
        assert!(locks.lock_blocking("C1", LockOwner::new(1), &clock, TTL));
        assert_eq!(locks.holder("C1"), Some(LockOwner::new(1)));
    }

    #[test]
    fn lock_blocking_gives_up_for_fenced_owner() {
        // A fenced owner spinning on try_lock would never terminate; the
        // blocking variant must refuse instead.
        let locks = LockManager::new();
        let clock = erm_sim::VirtualClock::new();
        let dead = LockOwner::new(1);
        assert!(locks.try_lock("C1", dead, SimTime::ZERO, TTL));
        locks.release_owner(dead, SimTime::ZERO);
        assert!(!locks.lock_blocking("C1", dead, &clock, TTL));
    }

    #[test]
    fn release_owner_reclaims_all_locks_and_fences() {
        let locks = LockManager::new();
        let (dead, live) = (LockOwner::new(1), LockOwner::new(2));
        assert!(locks.try_lock("C1", dead, SimTime::ZERO, TTL));
        assert!(locks.try_lock("C2", dead, SimTime::ZERO, TTL));
        assert!(locks.try_lock("C3", live, SimTime::ZERO, TTL));

        let reclaimed = locks.release_owner(dead, SimTime::from_secs(1));
        assert_eq!(reclaimed, vec!["C1".to_string(), "C2".to_string()]);
        assert_eq!(locks.stats().reclaimed, 2);
        // The survivor's lock is untouched; the dead owner's are free.
        assert_eq!(locks.holder("C3"), Some(live));
        assert!(locks.try_lock("C1", live, SimTime::from_secs(1), TTL));
        // Well before the dead owner's TTL would have lapsed.
        assert_eq!(locks.stats().expirations, 0);
    }

    #[test]
    fn fenced_owner_cannot_lock_or_unlock() {
        let locks = LockManager::new();
        let (dead, live) = (LockOwner::new(1), LockOwner::new(2));
        assert!(locks.try_lock("C1", dead, SimTime::ZERO, TTL));
        locks.release_owner(dead, SimTime::from_secs(1));
        // The stale member resurrects and retries its critical section.
        assert!(!locks.try_lock("C1", dead, SimTime::from_secs(2), TTL));
        // It also must not be able to unlock what it no longer owns — even
        // after a live owner has taken the lock over.
        assert!(locks.try_lock("C1", live, SimTime::from_secs(2), TTL));
        assert_eq!(locks.unlock("C1", dead), Err(LockError::Fenced(1)));
        assert_eq!(locks.holder("C1"), Some(live));
    }

    #[test]
    fn release_owner_is_idempotent_and_epochs_are_monotonic() {
        let locks = LockManager::new();
        let (a, b) = (LockOwner::new(1), LockOwner::new(2));
        locks.try_lock("C1", a, SimTime::ZERO, TTL);
        assert_eq!(locks.release_owner(a, SimTime::ZERO).len(), 1);
        assert_eq!(locks.release_owner(a, SimTime::ZERO).len(), 0);
        assert_eq!(locks.fenced_epoch(a), Some(1));
        locks.release_owner(b, SimTime::ZERO);
        assert_eq!(locks.fenced_epoch(b), Some(2));
        assert_eq!(locks.fenced_epoch(LockOwner::new(3)), None);
        assert_eq!(locks.stats().reclaimed, 1);
    }

    #[test]
    fn release_owner_records_hold_time() {
        let locks = LockManager::new();
        let (metrics, registry) = MetricsHandle::shared();
        locks.install_metrics(&metrics);
        let dead = LockOwner::new(1);
        locks.try_lock("C1", dead, SimTime::ZERO, TTL);
        locks.release_owner(dead, SimTime::from_secs(7));
        let snap = registry.snapshot(SimTime::from_secs(7));
        let hold = &snap
            .histograms
            .iter()
            .find(|(name, _)| *name == "kv.lock.hold")
            .unwrap()
            .1;
        assert_eq!(hold.max(), Some(SimDuration::from_secs(7)));
    }

    #[test]
    fn held_locks_reports_live_holders_sorted() {
        let locks = LockManager::new();
        let (a, b) = (LockOwner::new(1), LockOwner::new(2));
        locks.try_lock("C2", b, SimTime::ZERO, TTL);
        locks.try_lock("C1", a, SimTime::ZERO, TTL);
        assert_eq!(
            locks.held_locks(),
            vec![("C1".to_string(), a), ("C2".to_string(), b)]
        );
        locks.unlock("C1", a).unwrap();
        locks.unlock("C2", b).unwrap();
        assert!(locks.held_locks().is_empty());
    }

    #[test]
    fn ttl_refresh_keeps_original_acquisition_time() {
        let locks = LockManager::new();
        let (metrics, registry) = MetricsHandle::shared();
        locks.install_metrics(&metrics);
        let a = LockOwner::new(1);
        assert!(locks.try_lock("C1", a, SimTime::ZERO, TTL));
        assert!(locks.try_lock("C1", a, SimTime::from_secs(20), TTL));
        locks.unlock_at("C1", a, SimTime::from_secs(25)).unwrap();
        let snap = registry.snapshot(SimTime::from_secs(25));
        let hold = &snap
            .histograms
            .iter()
            .find(|(name, _)| *name == "kv.lock.hold")
            .unwrap()
            .1;
        // Hold spans the whole critical section, not just since the refresh.
        assert_eq!(hold.max(), Some(SimDuration::from_secs(25)));
    }
}
