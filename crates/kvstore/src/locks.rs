//! Named distributed locks with TTL expiry.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use erm_sim::{SimDuration, SimTime};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Identifies a lock holder (one elastic object / skeleton).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LockOwner(u64);

impl LockOwner {
    /// Creates an owner id.
    pub const fn new(id: u64) -> Self {
        LockOwner(id)
    }

    /// The raw id.
    pub const fn id(self) -> u64 {
        self.0
    }
}

impl fmt::Display for LockOwner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "owner-{}", self.0)
    }
}

/// Errors from lock release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockError {
    /// The lock is not currently held at all.
    NotHeld,
    /// The lock is held by a different owner.
    HeldByOther(LockOwner),
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::NotHeld => write!(f, "lock is not held"),
            LockError::HeldByOther(o) => write!(f, "lock is held by {o}"),
        }
    }
}

impl std::error::Error for LockError {}

/// Contention counters. `failure_rate()` is the paper's `avgLockAcqFailure`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LockStats {
    /// Total acquisition attempts.
    pub attempts: u64,
    /// Attempts that failed because another owner held the lock.
    pub failures: u64,
    /// Locks reclaimed after their TTL lapsed (crashed holders).
    pub expirations: u64,
}

impl LockStats {
    /// Fraction of acquisition attempts that failed, in `[0, 1]`.
    pub fn failure_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.failures as f64 / self.attempts as f64
        }
    }
}

#[derive(Debug)]
struct Holder {
    owner: LockOwner,
    expires_at: SimTime,
}

/// The lock table. Embedded in [`crate::Store`]; usable standalone in tests.
///
/// Locks carry a TTL so that a holder that crashes mid-critical-section
/// (an RMI object "can crash in the middle of a remote method invocation",
/// §4.4) cannot wedge the whole pool: the next attempt after expiry steals
/// the lock.
#[derive(Debug, Default)]
pub struct LockManager {
    table: Mutex<HashMap<String, Holder>>,
    attempts: AtomicU64,
    failures: AtomicU64,
    expirations: AtomicU64,
}

impl LockManager {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts to acquire `name` for `owner` until `now + ttl`.
    ///
    /// Succeeds when the lock is free, expired, or already held by `owner`
    /// (refreshing the TTL). Returns `false` when held by another live
    /// owner.
    pub fn try_lock(&self, name: &str, owner: LockOwner, now: SimTime, ttl: SimDuration) -> bool {
        self.attempts.fetch_add(1, Ordering::Relaxed);
        let mut table = self.table.lock();
        match table.get(name) {
            Some(holder) if holder.owner != owner && holder.expires_at > now => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                false
            }
            other => {
                if matches!(other, Some(h) if h.owner != owner) {
                    self.expirations.fetch_add(1, Ordering::Relaxed);
                }
                table.insert(
                    name.to_string(),
                    Holder {
                        owner,
                        expires_at: now + ttl,
                    },
                );
                true
            }
        }
    }

    /// Releases `name` if held by `owner`.
    ///
    /// # Errors
    ///
    /// [`LockError::NotHeld`] if nobody holds the lock,
    /// [`LockError::HeldByOther`] if another owner does.
    pub fn unlock(&self, name: &str, owner: LockOwner) -> Result<(), LockError> {
        let mut table = self.table.lock();
        match table.get(name) {
            None => Err(LockError::NotHeld),
            Some(h) if h.owner != owner => Err(LockError::HeldByOther(h.owner)),
            Some(_) => {
                table.remove(name);
                Ok(())
            }
        }
    }

    /// The current holder of `name`, if any (ignoring expiry).
    pub fn holder(&self, name: &str) -> Option<LockOwner> {
        self.table.lock().get(name).map(|h| h.owner)
    }

    /// Snapshot of contention counters.
    pub fn stats(&self) -> LockStats {
        LockStats {
            attempts: self.attempts.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            expirations: self.expirations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TTL: SimDuration = SimDuration::from_secs(30);

    #[test]
    fn exclusive_acquisition() {
        let locks = LockManager::new();
        let (a, b) = (LockOwner::new(1), LockOwner::new(2));
        assert!(locks.try_lock("C1", a, SimTime::ZERO, TTL));
        assert!(!locks.try_lock("C1", b, SimTime::from_secs(1), TTL));
        assert_eq!(locks.holder("C1"), Some(a));
    }

    #[test]
    fn reacquire_by_holder_refreshes_ttl() {
        let locks = LockManager::new();
        let a = LockOwner::new(1);
        assert!(locks.try_lock("C1", a, SimTime::ZERO, TTL));
        assert!(locks.try_lock("C1", a, SimTime::from_secs(20), TTL));
        // Without the refresh this would be past expiry (t=35 > 0+30).
        let b = LockOwner::new(2);
        assert!(!locks.try_lock("C1", b, SimTime::from_secs(35), TTL));
    }

    #[test]
    fn unlock_then_other_acquires() {
        let locks = LockManager::new();
        let (a, b) = (LockOwner::new(1), LockOwner::new(2));
        locks.try_lock("C1", a, SimTime::ZERO, TTL);
        locks.unlock("C1", a).unwrap();
        assert!(locks.try_lock("C1", b, SimTime::from_secs(1), TTL));
    }

    #[test]
    fn unlock_errors_are_precise() {
        let locks = LockManager::new();
        let (a, b) = (LockOwner::new(1), LockOwner::new(2));
        assert_eq!(locks.unlock("C1", a), Err(LockError::NotHeld));
        locks.try_lock("C1", a, SimTime::ZERO, TTL);
        assert_eq!(locks.unlock("C1", b), Err(LockError::HeldByOther(a)));
    }

    #[test]
    fn expired_lock_is_stolen() {
        let locks = LockManager::new();
        let (a, b) = (LockOwner::new(1), LockOwner::new(2));
        locks.try_lock("C1", a, SimTime::ZERO, TTL);
        assert!(locks.try_lock("C1", b, SimTime::from_secs(31), TTL));
        assert_eq!(locks.holder("C1"), Some(b));
        assert_eq!(locks.stats().expirations, 1);
    }

    #[test]
    fn stats_track_contention() {
        let locks = LockManager::new();
        let (a, b) = (LockOwner::new(1), LockOwner::new(2));
        locks.try_lock("C1", a, SimTime::ZERO, TTL);
        for _ in 0..3 {
            locks.try_lock("C1", b, SimTime::from_secs(1), TTL);
        }
        let stats = locks.stats();
        assert_eq!(stats.attempts, 4);
        assert_eq!(stats.failures, 3);
        assert_eq!(stats.failure_rate(), 0.75);
    }

    #[test]
    fn distinct_locks_are_independent() {
        let locks = LockManager::new();
        let (a, b) = (LockOwner::new(1), LockOwner::new(2));
        assert!(locks.try_lock("C1", a, SimTime::ZERO, TTL));
        assert!(locks.try_lock("C2", b, SimTime::ZERO, TTL));
    }

    #[test]
    fn failure_rate_of_empty_stats_is_zero() {
        assert_eq!(LockStats::default().failure_rate(), 0.0);
    }
}
