//! Shared helpers for the benchmark targets and the `figures` binary.
//!
//! The Criterion benches (one per paper figure, plus microbenches of every
//! substrate) live under `benches/`; the figure data itself is produced by
//! the `figures` binary. See EXPERIMENTS.md for the paper-vs-measured
//! record.

use erm_harness::{run_experiment, ExperimentConfig};
use erm_sim::SimDuration;

/// Runs an experiment with the deployment's burst interval overridden
/// (ablation 1 in the `figures --ablation` output) and returns the mean
/// agility.
pub fn run_with_burst(config: &ExperimentConfig, burst: SimDuration) -> f64 {
    let mut config = config.clone();
    config.burst_override = Some(burst);
    run_experiment(&config).agility.mean_agility()
}

#[cfg(test)]
mod tests {
    use super::*;
    use erm_apps::AppKind;
    use erm_harness::Deployment;
    use erm_workloads::PatternKind;

    #[test]
    fn longer_bursts_hurt_agility() {
        let config = ExperimentConfig::paper(
            AppKind::Marketcetera,
            PatternKind::Abrupt,
            Deployment::ElasticRmi,
        );
        let fast = run_with_burst(&config, SimDuration::from_secs(60));
        let slow = run_with_burst(&config, SimDuration::from_minutes(10));
        assert!(
            slow > fast,
            "10-minute bursts ({slow:.2}) should be less agile than 60s ({fast:.2})"
        );
    }
}
