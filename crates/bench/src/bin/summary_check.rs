fn main() {
    let rows = erm_harness::summary_table(7);
    print!("{}", erm_harness::format_summary(&rows));
}
