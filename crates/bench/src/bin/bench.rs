//! Open-loop throughput benchmark: the full RMI stack, inproc vs real TCP
//! loopback, offered load swept to find the knee at 1/4/8 pool members.
//!
//! ```text
//! bench                          # full grid, writes BENCH_throughput.json
//! bench --quick                  # shortened cells for CI smoke runs
//! bench --closed-loop            # the old closed-loop baseline (RTT-bound)
//! bench --out path.json          # choose the output path
//! bench --seed 42                # change the LB seed
//! ```
//!
//! The generator is open-loop: arrivals are injected at the configured
//! rate through one pipelined stub regardless of completions, so the
//! numbers measure the middleware's capacity, not the client's round-trip
//! behaviour. The knee sweep runs a 2 ms *sleeping* service — one member
//! caps at ~500 inv/s — so member-count scaling is honest concurrency in
//! the pool even on a single-core container. Saturation `echo` cells plus
//! a raw-socket pipelined echo give the data-path comparison.
//!
//! Exits nonzero if any invocation is lost (conservation), any knee cell
//! completes nothing, or the inproc knee fails to scale with members
//! (best 8-member rate must beat 1.5x the best 1-member rate).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 7u64;
    let mut quick = false;
    let mut closed_loop = false;
    let mut out = "BENCH_throughput.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--out" => {
                i += 1;
                out = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| usage("--out needs a path"));
            }
            "--quick" => quick = true,
            "--closed-loop" => closed_loop = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    if closed_loop {
        run_closed_loop(seed, quick, &out);
        return;
    }

    println!(
        "# Open-loop throughput (seed {seed}{}): pipelined stub, paced arrivals",
        if quick { ", quick" } else { "" }
    );
    let grid = erm_harness::run_open_loop_grid(seed, quick);
    print!("{}", erm_harness::format_open_loop(&grid));

    let mut failed = false;
    for p in grid.knee.iter().chain(grid.echo.iter()) {
        if p.lost != 0 {
            eprintln!(
                "error: {} x {} members @ {}/s lost {} invocations",
                p.transport, p.members, p.offered_rps, p.lost
            );
            failed = true;
        }
    }
    for p in &grid.knee {
        if p.outcomes.ok == 0 {
            eprintln!(
                "error: {} x {} members @ {}/s completed zero invocations",
                p.transport, p.members, p.offered_rps
            );
            failed = true;
        }
    }
    // The point of the open loop: capacity must scale with pool size.
    let best = |members: u32| -> f64 {
        grid.knee
            .iter()
            .filter(|p| p.transport == erm_harness::TransportKind::Inproc && p.members == members)
            .map(|p| p.completed_rps)
            .fold(0.0, f64::max)
    };
    let (one, eight) = (best(1), best(8));
    if eight <= 1.5 * one {
        eprintln!(
            "error: inproc knee does not scale with members: \
             best 8-member rate {eight:.0}/s <= 1.5x best 1-member rate {one:.0}/s"
        );
        failed = true;
    }
    println!("scaling: inproc best 1-member {one:.0}/s, best 8-member {eight:.0}/s");
    if failed {
        std::process::exit(1);
    }

    let json = erm_harness::open_loop_json(&grid);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote {out}: {} knee + {} echo points",
        grid.knee.len(),
        grid.echo.len()
    );
}

/// The pre-pipelining closed-loop baseline, kept for comparison runs: each
/// client thread waits out the round trip before offering the next
/// invocation, so it measures RTT, not middleware capacity.
fn run_closed_loop(seed: u64, quick: bool, out: &str) {
    println!(
        "# Closed-loop baseline (seed {seed}{}): 4 clients, echo service",
        if quick { ", quick" } else { "" }
    );
    let points = erm_harness::run_throughput_grid(seed, quick);
    print!("{}", erm_harness::format_throughput(&points));
    let empty: Vec<_> = points.iter().filter(|p| p.completed == 0).collect();
    if !empty.is_empty() {
        for p in &empty {
            eprintln!(
                "error: {} x {} members completed zero invocations",
                p.transport, p.members
            );
        }
        std::process::exit(1);
    }
    let json = erm_harness::throughput_json(&points, seed, quick);
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}: {} points", points.len());
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: bench [--quick] [--closed-loop] [--out PATH] [--seed N]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
