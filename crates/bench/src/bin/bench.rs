//! Throughput baseline: the full RMI stack, inproc vs real TCP loopback,
//! at 1/4/8 pool members.
//!
//! ```text
//! bench                          # full grid, writes BENCH_throughput.json
//! bench --quick                  # shortened cells for CI smoke runs
//! bench --out path.json          # choose the output path
//! bench --seed 42                # change the LB seed
//! ```
//!
//! The 1-member point is a standalone skeleton — structurally plain RMI,
//! the baseline the paper compares against; 4 and 8 members run through
//! the full elastic pool (sentinel + members) pinned at size. Exits
//! nonzero if any cell completes zero invocations.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 7u64;
    let mut quick = false;
    let mut out = "BENCH_throughput.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--out" => {
                i += 1;
                out = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| usage("--out needs a path"));
            }
            "--quick" => quick = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    println!(
        "# Throughput baseline (seed {seed}{}): 4 closed-loop clients, echo service",
        if quick { ", quick" } else { "" }
    );
    let points = erm_harness::run_throughput_grid(seed, quick);
    print!("{}", erm_harness::format_throughput(&points));

    let empty: Vec<_> = points.iter().filter(|p| p.completed == 0).collect();
    if !empty.is_empty() {
        for p in &empty {
            eprintln!(
                "error: {} x {} members completed zero invocations",
                p.transport, p.members
            );
        }
        std::process::exit(1);
    }

    let json = erm_harness::throughput_json(&points, seed, quick);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}: {} points", points.len());
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: bench [--quick] [--out PATH] [--seed N]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
