//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! figures                    # everything: Fig. 7a–7j, Fig. 8a/8b, summary
//! figures --fig 7c           # one figure
//! figures --table            # the §5.5 summary grid (T1)
//! figures --ablation         # design-choice ablations (burst interval,
//!                            # policy, provisioning latency)
//! figures --overload         # admission control vs unbounded FIFO under
//!                            # a 2x burst with the pool pinned, then the
//!                            # instrumented elastic run + why-scaled report
//! figures --churn            # the member-crash churn harness: scripted +
//!                            # seeded node failures, master outage, lock
//!                            # reclamation, and the why-recovered report
//! figures --tcp              # the overload scenario end-to-end over real
//!                            # TCP loopback sockets (stub → wire →
//!                            # skeleton → pool → registry); exits nonzero
//!                            # if any invocation is lost
//! figures --tcp --quick      # same, shortened for CI smoke runs
//! figures --seed 42          # change the experiment seed
//! figures --dump-traces      # control-plane trace of one run per
//!                            # app x pattern (scale decisions, joins,
//!                            # drains, in virtual time)
//! figures --overload --export-trace t.json --export-metrics m.csv
//!                            # also write the elastic run's Perfetto/Chrome
//!                            # trace_event JSON and metrics-registry CSV
//! ```

use erm_apps::AppKind;
use erm_harness::{run_experiment, Deployment, ExperimentConfig, FigureId};
use erm_sim::SimDuration;
use erm_workloads::PatternKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 7u64;
    let mut fig: Option<String> = None;
    let mut table = false;
    let mut ablation = false;
    let mut overload = false;
    let mut churn = false;
    let mut tcp = false;
    let mut quick = false;
    let mut dump_traces = false;
    let mut export_trace: Option<String> = None;
    let mut export_metrics: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--fig" => {
                i += 1;
                fig = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--fig needs an id")),
                );
            }
            "--export-trace" => {
                i += 1;
                export_trace = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--export-trace needs a path")),
                );
            }
            "--export-metrics" => {
                i += 1;
                export_metrics = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--export-metrics needs a path")),
                );
            }
            "--table" => table = true,
            "--ablation" => ablation = true,
            "--overload" => overload = true,
            "--churn" => churn = true,
            "--tcp" => tcp = true,
            "--quick" => quick = true,
            "--dump-traces" => dump_traces = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    if let Some(id) = fig {
        let Some(figure) = FigureId::parse(&id) else {
            usage(&format!("unknown figure id {id} (7a-7j, 8a, 8b)"));
        };
        print!("{}", figure.render(seed));
        return;
    }
    if table {
        print_summary(seed);
        return;
    }
    if ablation {
        print_ablations(seed);
        return;
    }
    if overload {
        print!("{}", erm_harness::render_overload(seed));
        print_elastic_telemetry(seed, export_trace.as_deref(), export_metrics.as_deref());
        return;
    }
    if churn {
        print_churn(seed, export_metrics.as_deref());
        return;
    }
    if tcp {
        print_tcp_overload(seed, quick);
        return;
    }
    if quick {
        usage("--quick only applies with --tcp");
    }
    if export_trace.is_some() || export_metrics.is_some() {
        usage("--export-trace/--export-metrics only apply with --overload or --churn");
    }
    if dump_traces {
        print_traces(seed);
        return;
    }
    // Default: everything.
    for (name, figure) in FigureId::all() {
        println!("================ Figure {name} ================");
        print!("{}", figure.render(seed));
        println!();
    }
    println!("================ Summary (§5.5 prose statistics) ================");
    print_summary(seed);
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: figures [--fig 7a..7j|8a|8b] [--table] [--ablation] [--overload] [--churn] \
         [--tcp [--quick]] [--dump-traces] [--seed N] \
         [--export-trace PATH] [--export-metrics PATH]  (exports need --overload or --churn)"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn print_summary(seed: u64) {
    let rows = erm_harness::summary_table(seed);
    print!("{}", erm_harness::format_summary(&rows));
    println!(
        "\nCloudWatch / ElasticRMI mean-agility ratios \
         (paper: Mkt 3.4x/-, Hedwig 4.5x/3.0x, Paxos 6.6x/2.2x, DCS 7.2x/3.2x):"
    );
    for app in AppKind::ALL {
        for pattern in [PatternKind::Abrupt, PatternKind::Cyclic] {
            let get = |d: Deployment| {
                rows.iter()
                    .find(|r| r.app == app && r.pattern == pattern && r.deployment == d)
                    .expect("full grid")
                    .mean_agility
            };
            println!(
                "  {:<13} {:<7} {:.1}x",
                app.to_string(),
                pattern.to_string(),
                get(Deployment::CloudWatch) / get(Deployment::ElasticRmi).max(1e-9)
            );
        }
    }
}

/// The instrumented elastic overload run: prints the why-scaled report and
/// optionally writes the Perfetto trace and the metrics CSV.
fn print_elastic_telemetry(seed: u64, trace_path: Option<&str>, metrics_path: Option<&str>) {
    let run = erm_harness::run_elastic_overload(seed);
    println!("\n================ Elastic run telemetry (seed {seed}) ================");
    print!("{}", run.report);
    if let Some(path) = trace_path {
        if let Err(e) = std::fs::write(path, &run.trace_json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "wrote {path}: {} invocation + {} decision spans \
             (load in Perfetto / chrome://tracing)",
            run.invocations, run.decisions
        );
    }
    if let Some(path) = metrics_path {
        if let Err(e) = std::fs::write(path, &run.metrics_csv) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "wrote {path}: {} metric-registry snapshot rows",
            run.metrics_csv.lines().count().saturating_sub(1)
        );
    }
}

/// The churn harness: prints the why-recovered report and optionally
/// writes the metrics CSV (with the quiesce leak gauges) for CI to check.
fn print_churn(seed: u64, metrics_path: Option<&str>) {
    let run = erm_harness::run_churn(seed);
    println!("================ Churn / crash-recovery run (seed {seed}) ================");
    print!("{}", run.report);
    if let Some(path) = metrics_path {
        if let Err(e) = std::fs::write(path, &run.metrics_csv) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "wrote {path}: {} metric-registry snapshot rows",
            run.metrics_csv.lines().count().saturating_sub(1)
        );
    }
}

/// The overload scenario over real TCP loopback sockets. The run itself is
/// the assertion: if any invocation fails to reach a terminal outcome the
/// process exits nonzero, so CI can gate on it.
fn print_tcp_overload(seed: u64, quick: bool) {
    let run = erm_harness::run_socket_overload(seed, quick);
    println!("================ Overload over TCP loopback (seed {seed}) ================");
    print!("{}", run.report);
    if run.lost != 0 {
        eprintln!("error: {} invocations lost over TCP", run.lost);
        std::process::exit(1);
    }
}

/// One ElasticRMI run per application x pattern with control-plane tracing
/// on, dumped one record per line in virtual time.
fn print_traces(seed: u64) {
    for app in AppKind::ALL {
        for pattern in [PatternKind::Abrupt, PatternKind::Cyclic] {
            let mut config = ExperimentConfig::paper(app, pattern, Deployment::ElasticRmi);
            config.seed = seed;
            config.trace = true;
            let r = run_experiment(&config);
            println!(
                "================ Trace: {app} / {pattern} ({} events) ================",
                r.trace.len()
            );
            if r.trace_dropped > 0 {
                println!(
                    "WARNING: ring buffer dropped {} oldest records; \
                     this trace is incomplete",
                    r.trace_dropped
                );
            }
            for record in &r.trace {
                println!("{record}");
            }
            println!();
        }
    }
}

/// Ablations for the design choices DESIGN.md calls out: burst interval,
/// decision policy, and provisioning latency.
fn print_ablations(seed: u64) {
    let app = AppKind::Marketcetera;
    println!("# Ablation 1: ElasticRMI burst interval (abrupt workload, mean agility)");
    for secs in [15u64, 30, 60, 120, 300, 600] {
        let mut config = ExperimentConfig::paper(app, PatternKind::Abrupt, Deployment::ElasticRmi);
        config.seed = seed;
        let agility = erm_bench::run_with_burst(&config, SimDuration::from_secs(secs));
        println!("  burst={secs:>4}s  agility={agility:.2}");
    }
    println!("\n# Ablation 2: decision policy at equal provisioning latency (abrupt)");
    for dep in [Deployment::ElasticRmi, Deployment::ElasticRmiCpuMem] {
        let mut config = ExperimentConfig::paper(app, PatternKind::Abrupt, dep);
        config.seed = seed;
        let r = run_experiment(&config);
        println!(
            "  {:<18} agility={:.2}",
            dep.to_string(),
            r.agility.mean_agility()
        );
    }
    println!("\n# Ablation 3: provisioning latency at equal policy (threshold policy)");
    for dep in [Deployment::ElasticRmiCpuMem, Deployment::CloudWatch] {
        let mut config = ExperimentConfig::paper(app, PatternKind::Abrupt, dep);
        config.seed = seed;
        let r = run_experiment(&config);
        println!(
            "  {:<18} agility={:.2} prov={:.0}s",
            dep.to_string(),
            r.agility.mean_agility(),
            r.provisioning
                .mean_latency()
                .map_or(0.0, |d| d.as_secs_f64())
        );
    }
    println!("\n# Ablation 4: cluster-master outage during the abrupt ramp (par. 4.4)");
    for outage in [None, Some((140u64, 200u64))] {
        let mut config = ExperimentConfig::paper(app, PatternKind::Abrupt, Deployment::ElasticRmi);
        config.seed = seed;
        config.master_outage = outage.map(|(a, b)| {
            (
                erm_sim::SimTime::from_minutes(a),
                erm_sim::SimTime::from_minutes(b),
            )
        });
        let r = run_experiment(&config);
        println!(
            "  outage={:<14} agility={:.2} (shortage component {:.2})",
            outage.map_or("none".to_string(), |(a, b)| format!("{a}..{b} min")),
            r.agility.mean_agility(),
            r.agility.mean_shortage(),
        );
    }
    println!("\n# Ablation 5: scalability limits from shared state (par. 4.1)");
    print!("{}", erm_harness::render_scalability());
    println!("\n# Ablation 6: two tiers on a scarce shared cluster (par. 3.3 Decider)");
    print!("{}", erm_harness::render_tiered(seed));
}
