//! Microbenchmarks of the substrate crates: the wire codec, the key-value
//! store, the lock manager, the cluster manager, and the event queue.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use erm_cluster::{ClusterConfig, LatencyModel, ResourceManager};
use erm_kvstore::{LockOwner, Store, StoreConfig};
use erm_sim::{EventQueue, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct SampleOrder {
    id: u64,
    symbol: String,
    quantity: i32,
    limit: Option<f64>,
    tags: Vec<String>,
}

fn sample_order() -> SampleOrder {
    SampleOrder {
        id: 424242,
        symbol: "HPQ".into(),
        quantity: -500,
        limit: Some(23.5),
        tags: vec!["algo".into(), "ioc".into()],
    }
}

fn bench_wire_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    let order = sample_order();
    let bytes = erm_transport::to_bytes(&order).unwrap();
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_struct", |b| {
        b.iter(|| erm_transport::to_bytes(black_box(&order)).unwrap())
    });
    group.bench_function("decode_struct", |b| {
        b.iter(|| erm_transport::from_bytes::<SampleOrder>(black_box(&bytes)).unwrap())
    });
    let big: Vec<u64> = (0..1024).collect();
    let big_bytes = erm_transport::to_bytes(&big).unwrap();
    group.bench_function("encode_vec_1k_u64", |b| {
        b.iter(|| erm_transport::to_bytes(black_box(&big)).unwrap())
    });
    group.bench_function("decode_vec_1k_u64", |b| {
        b.iter(|| erm_transport::from_bytes::<Vec<u64>>(black_box(&big_bytes)).unwrap())
    });
    group.finish();
}

fn bench_kvstore(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvstore");
    let store = Store::new(StoreConfig::default());
    for i in 0..10_000u32 {
        store.put(&format!("key-{i}"), vec![0u8; 64]);
    }
    group.bench_function("get_hit", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 10_000;
            store.get(&format!("key-{i}"))
        })
    });
    group.bench_function("put_overwrite", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 10_000;
            store.put(&format!("key-{i}"), vec![1u8; 64])
        })
    });
    group.bench_function("cas_success", |b| {
        let mut version = store.put("cas-key", vec![0]);
        b.iter(|| {
            version = store
                .compare_and_put("cas-key", Some(version), vec![1])
                .unwrap();
        })
    });
    group.bench_function("prefix_scan_100", |b| {
        b.iter(|| store.keys_with_prefix("key-42").len())
    });
    group.finish();
}

fn bench_locks(c: &mut Criterion) {
    let mut group = c.benchmark_group("locks");
    let store = Store::new(StoreConfig::default());
    let owner = LockOwner::new(1);
    let ttl = SimDuration::from_secs(30);
    group.bench_function("uncontended_lock_unlock", |b| {
        b.iter(|| {
            assert!(store.try_lock("C1", owner, SimTime::ZERO, ttl));
            store.unlock("C1", owner).unwrap();
        })
    });
    group.bench_function("contended_try_lock_failure", |b| {
        let holder = LockOwner::new(2);
        assert!(store.try_lock("C2", holder, SimTime::ZERO, ttl));
        b.iter(|| assert!(!store.try_lock("C2", owner, SimTime::ZERO, ttl)))
    });
    group.finish();
}

fn bench_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster");
    group.bench_function("request_poll_release_cycle", |b| {
        let mut cluster = ResourceManager::new(ClusterConfig {
            nodes: 128,
            slices_per_node: 2,
            provisioning: LatencyModel::instant(),
            ..ClusterConfig::default()
        });
        let mut now = SimTime::ZERO;
        b.iter(|| {
            now += SimDuration::from_secs(1);
            cluster.request_slices(8, now).unwrap();
            let grants = cluster.poll_ready(now);
            for g in &grants {
                cluster.release(g.slice, now).unwrap();
            }
            grants.len()
        })
    });
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.bench_function("schedule_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.schedule(SimTime::from_micros(i * 37 % 1_000), i);
            }
            q.pop_due(SimTime::from_secs(1)).count()
        })
    });
    group.finish();
}

criterion_group!(
    substrates,
    bench_wire_codec,
    bench_kvstore,
    bench_locks,
    bench_cluster,
    bench_event_queue
);
criterion_main!(substrates);
