//! Middleware-path benchmarks: the scaling engine, the bin-packing load
//! balancer, shared-field access, and the full RMI invocation path through a
//! live elastic pool (stub → skeleton → service → response).

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use elasticrmi::balance::{plan_redirects, MemberLoad};
use elasticrmi::{
    encode_result, ClientLb, ElasticPool, ElasticService, PoolConfig, PoolDeps, PoolSample,
    RemoteError, ScalingEngine, ScalingPolicy, ServiceContext,
};
use erm_cluster::{ClusterConfig, ClusterHandle, LatencyModel, ResourceManager};
use erm_kvstore::{Store, StoreConfig};
use erm_metrics::{MetricsHandle, TraceHandle};
use erm_sim::{SimTime, SystemClock};
use erm_transport::{EndpointId, InProcNetwork};

fn bench_scaling_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_engine");
    let config = PoolConfig::builder("Bench")
        .min_pool_size(2)
        .max_pool_size(64)
        .policy(ScalingPolicy::FineGrained)
        .build()
        .unwrap();
    let engine = ScalingEngine::new(config, SimTime::ZERO);
    let sample = PoolSample {
        pool_size: 20,
        avg_cpu: 74.0,
        avg_ram: 51.0,
        fine_votes: (0..20).map(|i| (i % 5) - 2).collect(),
        desired_size: None,
        ..PoolSample::default()
    };
    group.bench_function("fine_grained_decide_20_votes", |b| {
        b.iter(|| engine.decide(black_box(&sample)))
    });
    group.finish();
}

fn bench_bin_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("bin_packing");
    for n in [8usize, 64, 512] {
        let loads: Vec<MemberLoad> = (0..n)
            .map(|i| MemberLoad {
                endpoint: EndpointId(i as u64),
                pending: ((i * 37) % 23) as u32,
            })
            .collect();
        group.bench_function(format!("plan_redirects_{n}_members"), |b| {
            b.iter(|| plan_redirects(black_box(&loads), 10).len())
        });
    }
    group.finish();
}

fn bench_shared_field(c: &mut Criterion) {
    let mut group = c.benchmark_group("shared_field");
    let store = Arc::new(Store::new(StoreConfig::default()));
    let ctx = ServiceContext::new(
        Arc::clone(&store),
        "Bench",
        0,
        Arc::new(SystemClock::new()),
        Arc::new(std::sync::atomic::AtomicU32::new(1)),
    );
    let field = ctx.shared::<u64>("counter");
    field.set(&0);
    group.bench_function("update_increment", |b| {
        b.iter(|| field.update(|| 0, |n| *n += 1))
    });
    group.bench_function("get", |b| b.iter(|| field.get()));
    group.finish();
}

/// Echo service for the end-to-end path.
struct Echo;
impl ElasticService for Echo {
    fn dispatch(
        &mut self,
        method: &str,
        args: &[u8],
        _ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError> {
        match method {
            "echo" => Ok(args.to_vec()),
            "sum" => {
                let v: Vec<u64> = elasticrmi::decode_args(method, args)?;
                encode_result(&v.iter().sum::<u64>())
            }
            other => Err(RemoteError::no_such_method(other)),
        }
    }
}

fn bench_full_rmi_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("rmi_invocation");
    group.sample_size(30);
    let deps = PoolDeps {
        cluster: ClusterHandle::new(ResourceManager::new(ClusterConfig {
            provisioning: LatencyModel::instant(),
            ..ClusterConfig::default()
        })),
        net: Arc::new(InProcNetwork::new()),
        store: Arc::new(Store::new(StoreConfig::default())),
        clock: Arc::new(SystemClock::new()),
        trace: TraceHandle::disabled(),
        metrics: MetricsHandle::disabled(),
    };
    let config = PoolConfig::builder("Echo")
        .min_pool_size(3)
        .max_pool_size(3)
        .build()
        .unwrap();
    let mut pool =
        ElasticPool::instantiate(config, Arc::new(|| Box::new(Echo)), deps, None).unwrap();
    let mut stub = pool.stub(ClientLb::RoundRobin).unwrap();
    let payload: Vec<u64> = (0..64).collect();
    group.bench_function("stub_invoke_sum_64_u64", |b| {
        b.iter(|| {
            let total: u64 = stub.invoke("sum", &payload).unwrap();
            total
        })
    });
    group.finish();
    pool.shutdown();
}

fn bench_lb_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("client_lb_policy");
    group.sample_size(30);
    let deps = PoolDeps {
        cluster: ClusterHandle::new(ResourceManager::new(ClusterConfig {
            provisioning: LatencyModel::instant(),
            ..ClusterConfig::default()
        })),
        net: Arc::new(InProcNetwork::new()),
        store: Arc::new(Store::new(StoreConfig::default())),
        clock: Arc::new(SystemClock::new()),
        trace: TraceHandle::disabled(),
        metrics: MetricsHandle::disabled(),
    };
    let config = PoolConfig::builder("Echo")
        .min_pool_size(4)
        .max_pool_size(4)
        .build()
        .unwrap();
    let mut pool =
        ElasticPool::instantiate(config, Arc::new(|| Box::new(Echo)), deps, None).unwrap();
    for (name, lb) in [
        ("round_robin", ClientLb::RoundRobin),
        ("random", ClientLb::Random { seed: 1 }),
    ] {
        let mut stub = pool.stub(lb).unwrap();
        let payload: Vec<u8> = vec![1, 2, 3];
        group.bench_function(name, |b| {
            b.iter(|| {
                let echoed: Vec<u8> = stub.invoke("echo", &payload).unwrap();
                echoed
            })
        });
    }
    group.finish();
    pool.shutdown();
}

fn bench_registry(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry");
    let net = InProcNetwork::new();
    let server = elasticrmi::RegistryServer::spawn(Arc::new(net.clone()));
    let mut client = elasticrmi::RegistryClient::connect(Arc::new(net.clone()), server.endpoint());
    client.bind("svc", EndpointId(1)).unwrap();
    group.bench_function("lookup", |b| b.iter(|| client.lookup("svc").unwrap()));
    group.finish();
    server.shutdown();
}

criterion_group!(
    middleware,
    bench_scaling_engine,
    bench_bin_packing,
    bench_shared_field,
    bench_full_rmi_path,
    bench_lb_policies,
    bench_registry
);
criterion_main!(middleware);
