//! One benchmark per paper figure/table: measures the cost of regenerating
//! each evaluation artifact end-to-end (workload generation, the real
//! scaling engine, cluster provisioning, agility metering). The *data* the
//! figures show is produced by the `figures` binary; these benches prove the
//! regeneration is cheap and track regressions in the experiment pipeline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use erm_apps::AppKind;
use erm_harness::{run_experiment, Deployment, ExperimentConfig, FigureId};
use erm_workloads::{PatternKind, Workload};

fn bench_workload_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7ab_workload_patterns");
    group.sample_size(20);
    group.bench_function("fig7a_abrupt", |b| {
        b.iter(|| {
            let w = Workload::paper_pattern(PatternKind::Abrupt, 50_000.0);
            w.sample(erm_sim::SimDuration::from_minutes(1)).len()
        })
    });
    group.bench_function("fig7b_cyclic", |b| {
        b.iter(|| {
            let w = Workload::paper_pattern(PatternKind::Cyclic, 50_000.0);
            w.sample(erm_sim::SimDuration::from_minutes(1)).len()
        })
    });
    group.finish();
}

fn agility_bench(c: &mut Criterion, figure: &str, app: AppKind, pattern: PatternKind) {
    let mut group = c.benchmark_group(format!("fig{figure}_agility_{app}_{pattern}"));
    group.sample_size(10);
    for deployment in Deployment::ALL {
        group.bench_function(deployment.name(), |b| {
            b.iter_batched(
                || ExperimentConfig::paper(app, pattern, deployment),
                |config| run_experiment(&config).agility.mean_agility(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_fig7c_7d(c: &mut Criterion) {
    agility_bench(c, "7c", AppKind::Marketcetera, PatternKind::Abrupt);
    agility_bench(c, "7d", AppKind::Marketcetera, PatternKind::Cyclic);
}

fn bench_fig7e_7f(c: &mut Criterion) {
    agility_bench(c, "7e", AppKind::Hedwig, PatternKind::Abrupt);
    agility_bench(c, "7f", AppKind::Hedwig, PatternKind::Cyclic);
}

fn bench_fig7g_7h(c: &mut Criterion) {
    agility_bench(c, "7g", AppKind::Paxos, PatternKind::Abrupt);
    agility_bench(c, "7h", AppKind::Paxos, PatternKind::Cyclic);
}

fn bench_fig7i_7j(c: &mut Criterion) {
    agility_bench(c, "7i", AppKind::Dcs, PatternKind::Abrupt);
    agility_bench(c, "7j", AppKind::Dcs, PatternKind::Cyclic);
}

fn bench_fig8_provisioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_provisioning_latency");
    group.sample_size(10);
    for (name, pattern) in [
        ("8a_abrupt", PatternKind::Abrupt),
        ("8b_cyclic", PatternKind::Cyclic),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let figure = FigureId::Provisioning(pattern);
                figure.render(7).len()
            })
        });
    }
    group.finish();
}

fn bench_summary_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_summary");
    group.sample_size(10);
    group.bench_function("full_32_run_grid", |b| {
        b.iter(|| erm_harness::summary_table(7).len())
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_workload_patterns,
    bench_fig7c_7d,
    bench_fig7e_7f,
    bench_fig7g_7h,
    bench_fig7i_7j,
    bench_fig8_provisioning,
    bench_summary_table
);
criterion_main!(figures);
