//! The bounded per-skeleton run queue.

use erm_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Ordering discipline of an [`AdmissionQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Discipline {
    /// First-in first-out: arrival order, the legacy mailbox behaviour.
    Fifo,
    /// Earliest-deadline-first: the entry whose deadline is nearest runs
    /// next, which maximizes the number of requests that still finish in
    /// time when the queue holds more work than one burst interval can
    /// absorb.
    Edf,
}

/// Configuration of one member's admission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Maximum queued (not yet executing) requests before new arrivals are
    /// rejected with `Overloaded`.
    pub capacity: u32,
    /// Run order of admitted requests.
    pub discipline: Discipline,
}

impl AdmissionConfig {
    /// A bounded FIFO queue.
    pub fn fifo(capacity: u32) -> Self {
        AdmissionConfig {
            capacity,
            discipline: Discipline::Fifo,
        }
    }

    /// A bounded deadline-aware (EDF) queue.
    pub fn edf(capacity: u32) -> Self {
        AdmissionConfig {
            capacity,
            discipline: Discipline::Edf,
        }
    }
}

/// Why an offer was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The queue already holds `capacity` live entries.
    QueueFull {
        /// Depth at rejection time (== capacity).
        depth: u32,
    },
    /// The request's deadline had already passed on arrival.
    Expired {
        /// How far past its deadline the request was.
        late_by: SimDuration,
    },
}

/// A rejected offer: the item handed back with the reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected<T> {
    /// The item that was not admitted.
    pub item: T,
    /// Why.
    pub reason: RejectReason,
}

/// An entry popped from the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admitted<T> {
    /// The queued item.
    pub item: T,
    /// Its absolute deadline.
    pub deadline: SimTime,
    /// How long it waited in the queue (pop time − enqueue time).
    pub queue_delay: SimDuration,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    seq: u64,
    deadline: SimTime,
    enqueued_at: SimTime,
    item: T,
}

/// A bounded run queue with pluggable discipline and expired-entry culling.
///
/// The queue is a pure data structure: every operation takes `now`
/// explicitly, so the same code is deterministic under a virtual clock and
/// correct under a system clock.
///
/// # Example
///
/// ```
/// use erm_admission::{AdmissionConfig, AdmissionQueue, RejectReason};
/// use erm_sim::{SimDuration, SimTime};
///
/// let mut q = AdmissionQueue::new(AdmissionConfig::edf(2));
/// let t0 = SimTime::ZERO;
/// let dl = |ms| SimTime::ZERO + SimDuration::from_millis(ms);
/// q.offer(t0, dl(30), "late").unwrap();
/// q.offer(t0, dl(10), "urgent").unwrap();
/// // Full: the third offer is rejected with the current depth.
/// let rejected = q.offer(t0, dl(20), "extra").unwrap_err();
/// assert_eq!(rejected.reason, RejectReason::QueueFull { depth: 2 });
/// // EDF pops the nearest deadline first.
/// assert_eq!(q.pop(t0).unwrap().item, "urgent");
/// ```
#[derive(Debug, Clone)]
pub struct AdmissionQueue<T> {
    config: AdmissionConfig,
    entries: Vec<Entry<T>>,
    next_seq: u64,
    admitted: u64,
    rejected: u64,
    culled: u64,
}

impl<T> AdmissionQueue<T> {
    /// Creates an empty queue.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionQueue {
            config,
            entries: Vec::new(),
            next_seq: 0,
            admitted: 0,
            rejected: 0,
            culled: 0,
        }
    }

    /// An effectively unbounded FIFO queue: the legacy (pre-admission)
    /// skeleton behaviour, expressed through the same code path.
    pub fn unbounded_fifo() -> Self {
        AdmissionQueue::new(AdmissionConfig::fifo(u32::MAX))
    }

    /// The queue's configuration.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Queued entries, expired ones included.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Queued entries whose deadline has not passed at `now` — the work
    /// that is still worth moving or counting as pending.
    pub fn live_len(&self, now: SimTime) -> u32 {
        self.entries.iter().filter(|e| now < e.deadline).count() as u32
    }

    /// Lifetime (admitted, rejected, culled) counters.
    pub fn totals(&self) -> (u64, u64, u64) {
        (self.admitted, self.rejected, self.culled)
    }

    /// Offers an item with an absolute `deadline`. Admits it unless it is
    /// already expired or the queue is full of live entries (expired
    /// entries are culled before counting, so dead work never causes a
    /// rejection — callers collect them via [`AdmissionQueue::cull`]).
    ///
    /// # Errors
    ///
    /// Returns the item back with a [`RejectReason`]. A `QueueFull`
    /// rejection reports the live depth at rejection time.
    pub fn offer(&mut self, now: SimTime, deadline: SimTime, item: T) -> Result<u32, Rejected<T>> {
        if now >= deadline {
            self.rejected += 1;
            return Err(Rejected {
                item,
                reason: RejectReason::Expired {
                    late_by: now.saturating_since(deadline),
                },
            });
        }
        let live = self.live_len(now);
        if live >= self.config.capacity {
            self.rejected += 1;
            return Err(Rejected {
                item,
                reason: RejectReason::QueueFull { depth: live },
            });
        }
        self.entries.push(Entry {
            seq: self.next_seq,
            deadline,
            enqueued_at: now,
            item,
        });
        self.next_seq += 1;
        self.admitted += 1;
        Ok(live + 1)
    }

    /// Admits an item regardless of capacity — for work the member already
    /// accepted before a drain began, which must finish or fail by deadline
    /// but never be refused for queue space.
    ///
    /// # Errors
    ///
    /// Still rejects items whose deadline has already passed.
    pub fn force(&mut self, now: SimTime, deadline: SimTime, item: T) -> Result<u32, Rejected<T>> {
        if now >= deadline {
            self.rejected += 1;
            return Err(Rejected {
                item,
                reason: RejectReason::Expired {
                    late_by: now.saturating_since(deadline),
                },
            });
        }
        self.entries.push(Entry {
            seq: self.next_seq,
            deadline,
            enqueued_at: now,
            item,
        });
        self.next_seq += 1;
        self.admitted += 1;
        Ok(self.live_len(now))
    }

    /// Removes and returns every queued entry whose deadline has passed at
    /// `now`, oldest first — the expired-head cull. The caller answers each
    /// with its deadline rejection instead of dispatching it.
    pub fn cull(&mut self, now: SimTime) -> Vec<Admitted<T>> {
        let mut dead = Vec::new();
        let mut i = 0;
        while i < self.entries.len() {
            if now >= self.entries[i].deadline {
                let e = self.entries.remove(i);
                self.culled += 1;
                dead.push(Admitted {
                    item: e.item,
                    deadline: e.deadline,
                    queue_delay: now.saturating_since(e.enqueued_at),
                });
            } else {
                i += 1;
            }
        }
        dead
    }

    /// Pops the next runnable entry per the discipline, skipping (and
    /// retaining — see [`AdmissionQueue::cull`]) nothing: expired entries
    /// are culled first so the popped entry is always live at `now`.
    pub fn pop(&mut self, now: SimTime) -> Option<Admitted<T>> {
        // Never dispatch dead work: drop expired entries from the books
        // (the caller is expected to have culled already if it wants to
        // answer them; anything left here is silently counted).
        let mut culled = 0u64;
        self.entries.retain(|e| {
            if now >= e.deadline {
                culled += 1;
                false
            } else {
                true
            }
        });
        self.culled += culled;
        let idx = match self.config.discipline {
            Discipline::Fifo => self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.seq)
                .map(|(i, _)| i)?,
            Discipline::Edf => self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.deadline, e.seq))
                .map(|(i, _)| i)?,
        };
        let e = self.entries.remove(idx);
        Some(Admitted {
            item: e.item,
            deadline: e.deadline,
            queue_delay: now.saturating_since(e.enqueued_at),
        })
    }
}

/// A retry hint for an `Overloaded` rejection: roughly the time to drain
/// half the queue at the member's measured mean service time, clamped to
/// [1 ms, 5 s] so a cold or idle estimate still yields a sane backoff.
pub fn suggest_retry_after(queue_depth: u32, mean_service: SimDuration) -> SimDuration {
    const FLOOR: SimDuration = SimDuration::from_millis(1);
    const CEIL: SimDuration = SimDuration::from_secs(5);
    let per = mean_service.as_micros().max(100); // assume ≥100 µs service
    let micros = per.saturating_mul(u64::from(queue_depth / 2 + 1));
    SimDuration::from_micros(micros).clamp(FLOOR, CEIL)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(n)
    }

    #[test]
    fn fifo_pops_in_arrival_order() {
        let mut q = AdmissionQueue::new(AdmissionConfig::fifo(8));
        for (i, dl) in [50u64, 10, 30].iter().enumerate() {
            q.offer(ms(0), ms(*dl), i).unwrap();
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop(ms(0)).map(|a| a.item)).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn edf_pops_nearest_deadline_first() {
        let mut q = AdmissionQueue::new(AdmissionConfig::edf(8));
        for (i, dl) in [50u64, 10, 30].iter().enumerate() {
            q.offer(ms(0), ms(*dl), i).unwrap();
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop(ms(0)).map(|a| a.item)).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn edf_breaks_deadline_ties_by_arrival() {
        let mut q = AdmissionQueue::new(AdmissionConfig::edf(8));
        q.offer(ms(0), ms(10), "first").unwrap();
        q.offer(ms(0), ms(10), "second").unwrap();
        assert_eq!(q.pop(ms(0)).unwrap().item, "first");
        assert_eq!(q.pop(ms(0)).unwrap().item, "second");
    }

    #[test]
    fn full_queue_rejects_with_depth() {
        let mut q = AdmissionQueue::new(AdmissionConfig::fifo(2));
        q.offer(ms(0), ms(100), 0).unwrap();
        q.offer(ms(0), ms(100), 1).unwrap();
        let r = q.offer(ms(0), ms(100), 2).unwrap_err();
        assert_eq!(r.item, 2);
        assert_eq!(r.reason, RejectReason::QueueFull { depth: 2 });
        assert_eq!(q.totals(), (2, 1, 0));
    }

    #[test]
    fn expired_offer_is_rejected_with_lateness() {
        let mut q = AdmissionQueue::new(AdmissionConfig::fifo(2));
        let r = q.offer(ms(10), ms(8), "late").unwrap_err();
        assert_eq!(
            r.reason,
            RejectReason::Expired {
                late_by: SimDuration::from_millis(2)
            }
        );
    }

    #[test]
    fn expired_entries_do_not_hold_capacity() {
        let mut q = AdmissionQueue::new(AdmissionConfig::edf(2));
        q.offer(ms(0), ms(5), "dies").unwrap();
        q.offer(ms(0), ms(100), "lives").unwrap();
        // At t=10 the first entry is dead: a new offer is admitted because
        // only one live entry occupies the queue.
        assert_eq!(q.live_len(ms(10)), 1);
        q.offer(ms(10), ms(100), "fresh").unwrap();
        let culled = q.cull(ms(10));
        assert_eq!(culled.len(), 1);
        assert_eq!(culled[0].item, "dies");
        assert_eq!(culled[0].queue_delay, SimDuration::from_millis(10));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_never_returns_expired_work() {
        let mut q = AdmissionQueue::new(AdmissionConfig::fifo(8));
        q.offer(ms(0), ms(5), "dead").unwrap();
        q.offer(ms(0), ms(50), "live").unwrap();
        let got = q.pop(ms(20)).unwrap();
        assert_eq!(got.item, "live");
        assert_eq!(got.queue_delay, SimDuration::from_millis(20));
        assert!(q.pop(ms(20)).is_none());
        let (_, _, culled) = q.totals();
        assert_eq!(culled, 1);
    }

    #[test]
    fn queue_delay_is_measured_per_entry() {
        let mut q = AdmissionQueue::new(AdmissionConfig::fifo(8));
        q.offer(ms(3), ms(100), ()).unwrap();
        assert_eq!(
            q.pop(ms(7)).unwrap().queue_delay,
            SimDuration::from_millis(4)
        );
    }

    #[test]
    fn unbounded_fifo_never_rejects_live_work() {
        let mut q = AdmissionQueue::unbounded_fifo();
        for i in 0..10_000u32 {
            q.offer(ms(0), ms(1_000), i).unwrap();
        }
        assert_eq!(q.len(), 10_000);
    }

    #[test]
    fn force_bypasses_capacity_but_not_expiry() {
        let mut q = AdmissionQueue::new(AdmissionConfig::fifo(1));
        q.offer(ms(0), ms(100), "a").unwrap();
        assert!(q.offer(ms(0), ms(100), "b").is_err());
        q.force(ms(0), ms(100), "b").unwrap();
        assert_eq!(q.len(), 2);
        let r = q.force(ms(10), ms(5), "late").unwrap_err();
        assert!(matches!(r.reason, RejectReason::Expired { .. }));
    }

    #[test]
    fn retry_hint_scales_with_depth_and_clamps() {
        let short = suggest_retry_after(0, SimDuration::from_micros(10));
        assert_eq!(short, SimDuration::from_millis(1), "clamped to floor");
        let mid = suggest_retry_after(10, SimDuration::from_millis(2));
        assert_eq!(mid, SimDuration::from_millis(12)); // (10/2 + 1) * 2ms
        let long = suggest_retry_after(10_000, SimDuration::from_secs(1));
        assert_eq!(long, SimDuration::from_secs(5), "clamped to ceiling");
    }
}
