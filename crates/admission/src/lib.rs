#![warn(missing_docs)]

//! Admission control and overload management for elastic object pools.
//!
//! The paper's elasticity masks load balancing and provisioning from
//! clients (§4.3), but during a provisioning window (minutes, Fig. 8a) an
//! abrupt burst has nowhere to go: skeletons queue unboundedly and every
//! request eventually dies by deadline instead of being rejected early.
//! This crate provides the two halves of the standard production answer:
//!
//! * **Server side** — [`AdmissionQueue`]: a bounded per-skeleton run queue
//!   with a pluggable [`Discipline`] (FIFO or deadline-aware EDF) and
//!   expired-entry culling, so a member sheds load *early* (an explicit
//!   `Overloaded` rejection with a retry hint) instead of burning its
//!   capacity on answers nobody is waiting for.
//! * **Client side** — [`AimdLimiter`]: an additive-increase /
//!   multiplicative-decrease concurrency limiter that backs off when the
//!   pool signals overload (or deadlines expire) and re-opens on success,
//!   keeping the offered load near what the pool can actually absorb while
//!   the scaling engine provisions capacity.
//!
//! Everything here is pure data-structure code driven by explicit
//! `SimTime`/`SimDuration` values, so it is deterministic under the
//! workspace's `VirtualClock` and directly reusable by both the threaded
//! runtime and the fluid experiment harness.

mod aimd;
mod queue;

pub use aimd::{AimdConfig, AimdLimiter, AimdSnapshot};
pub use queue::{
    suggest_retry_after, AdmissionConfig, AdmissionQueue, Admitted, Discipline, RejectReason,
    Rejected,
};
