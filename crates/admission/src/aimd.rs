//! Client-side AIMD concurrency limiting.

use std::sync::atomic::{AtomicU64, Ordering};

use erm_sim::{SimDuration, SimTime};

/// Tuning knobs for an [`AimdLimiter`].
///
/// The window is tracked in thousandths (milli-units) so the additive
/// increase can be fractional — the classic "+1 per round trip" spread over
/// several successes — while staying in deterministic integer arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AimdConfig {
    /// Lower bound on the concurrency window; never backs off below this.
    pub min_limit: u32,
    /// Upper bound on the concurrency window; also the starting window.
    pub max_limit: u32,
    /// Additive increase per successful invocation, in milli-units
    /// (1000 = +1 whole slot per success).
    pub increase_milli: u64,
    /// Multiplicative decrease factor per congestion signal, in
    /// milli-units (500 = halve the window).
    pub backoff_milli: u64,
}

impl Default for AimdConfig {
    fn default() -> Self {
        AimdConfig {
            min_limit: 1,
            max_limit: 64,
            increase_milli: 200, // +1 slot per 5 successes
            backoff_milli: 500,  // halve on congestion
        }
    }
}

/// A point-in-time view of a limiter, for metrics and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AimdSnapshot {
    /// Current whole-slot concurrency window.
    pub limit: u32,
    /// Invocations currently holding a slot.
    pub in_flight: u32,
    /// Successful invocations observed.
    pub successes: u64,
    /// Congestion signals (`Overloaded` replies or deadline expiries)
    /// observed.
    pub congestions: u64,
    /// Acquisition attempts refused (window full or backoff in force).
    pub throttled: u64,
}

/// An additive-increase / multiplicative-decrease concurrency limiter.
///
/// The stub consults the limiter before sending: while the window is full,
/// or while a server-supplied `retry_after` backoff is in force, new
/// invocations are refused locally (`Throttled`) instead of being thrown at
/// a pool that already said no. Every success widens the window additively;
/// every congestion signal shrinks it multiplicatively and (when the server
/// suggested a pause) blocks new acquisitions until the hint elapses.
///
/// All state is atomic, so one limiter can be shared (`Arc`) by every stub
/// of a client process, giving per-process backpressure like a TCP
/// congestion window shared across connections.
#[derive(Debug)]
pub struct AimdLimiter {
    config: AimdConfig,
    limit_milli: AtomicU64,
    in_flight: AtomicU64,
    blocked_until_us: AtomicU64,
    successes: AtomicU64,
    congestions: AtomicU64,
    throttled: AtomicU64,
}

impl AimdLimiter {
    /// Creates a limiter with the window fully open at `max_limit`.
    pub fn new(config: AimdConfig) -> Self {
        AimdLimiter {
            limit_milli: AtomicU64::new(u64::from(config.max_limit) * 1000),
            in_flight: AtomicU64::new(0),
            blocked_until_us: AtomicU64::new(0),
            successes: AtomicU64::new(0),
            congestions: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
            config,
        }
    }

    /// The configuration this limiter was built with.
    pub fn config(&self) -> AimdConfig {
        self.config
    }

    /// Current whole-slot window.
    pub fn current_limit(&self) -> u32 {
        (self.limit_milli.load(Ordering::SeqCst) / 1000) as u32
    }

    /// Invocations currently holding a slot.
    pub fn in_flight(&self) -> u32 {
        self.in_flight.load(Ordering::SeqCst) as u32
    }

    /// How much longer acquisitions are blocked by a server `retry_after`
    /// hint, or zero if not blocked at `now`.
    pub fn blocked_for(&self, now: SimTime) -> SimDuration {
        let until = self.blocked_until_us.load(Ordering::SeqCst);
        SimDuration::from_micros(until.saturating_sub(now.as_micros()))
    }

    /// Tries to claim a concurrency slot at `now`. Returns `false` (and
    /// counts a throttle) when a backoff window is in force or the window
    /// is full; the caller should fail fast with `Throttled` rather than
    /// send. A `true` return must be paired with [`AimdLimiter::release`].
    pub fn try_acquire(&self, now: SimTime) -> bool {
        if !self.blocked_for(now).is_zero() {
            self.throttled.fetch_add(1, Ordering::SeqCst);
            return false;
        }
        let limit = u64::from(self.current_limit().max(1));
        let claimed = self
            .in_flight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < limit).then_some(n + 1)
            })
            .is_ok();
        if !claimed {
            self.throttled.fetch_add(1, Ordering::SeqCst);
        }
        claimed
    }

    /// Returns a slot claimed by [`AimdLimiter::try_acquire`].
    pub fn release(&self) {
        let _ = self
            .in_flight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1));
    }

    /// Records a successful invocation: widens the window additively, up to
    /// `max_limit`.
    pub fn on_success(&self) {
        self.successes.fetch_add(1, Ordering::SeqCst);
        let cap = u64::from(self.config.max_limit) * 1000;
        let inc = self.config.increase_milli;
        let _ = self
            .limit_milli
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |l| {
                Some((l + inc).min(cap))
            });
    }

    /// Records a congestion signal — an `Overloaded` rejection or a
    /// deadline expiry: shrinks the window multiplicatively (never below
    /// `min_limit`) and, when the server supplied a `retry_after` hint,
    /// blocks new acquisitions until `now + retry_after`.
    pub fn on_congestion(&self, now: SimTime, retry_after: Option<SimDuration>) {
        self.congestions.fetch_add(1, Ordering::SeqCst);
        let floor = u64::from(self.config.min_limit) * 1000;
        let backoff = self.config.backoff_milli;
        let _ = self
            .limit_milli
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |l| {
                Some((l * backoff / 1000).max(floor))
            });
        if let Some(pause) = retry_after {
            let until = (now + pause).as_micros();
            let _ = self
                .blocked_until_us
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| {
                    (until > b).then_some(until)
                });
        }
    }

    /// A consistent-enough snapshot for metrics and tests.
    pub fn snapshot(&self) -> AimdSnapshot {
        AimdSnapshot {
            limit: self.current_limit(),
            in_flight: self.in_flight(),
            successes: self.successes.load(Ordering::SeqCst),
            congestions: self.congestions.load(Ordering::SeqCst),
            throttled: self.throttled.load(Ordering::SeqCst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn window_caps_concurrent_acquisitions() {
        let l = AimdLimiter::new(AimdConfig {
            max_limit: 2,
            ..AimdConfig::default()
        });
        assert!(l.try_acquire(at(0)));
        assert!(l.try_acquire(at(0)));
        assert!(!l.try_acquire(at(0)), "third slot refused");
        l.release();
        assert!(l.try_acquire(at(0)), "released slot reusable");
        assert_eq!(l.snapshot().throttled, 1);
    }

    #[test]
    fn congestion_halves_and_success_reopens() {
        let l = AimdLimiter::new(AimdConfig {
            min_limit: 1,
            max_limit: 16,
            increase_milli: 1000,
            backoff_milli: 500,
        });
        assert_eq!(l.current_limit(), 16);
        l.on_congestion(at(0), None);
        assert_eq!(l.current_limit(), 8);
        l.on_congestion(at(0), None);
        assert_eq!(l.current_limit(), 4);
        for _ in 0..12 {
            l.on_success();
        }
        assert_eq!(l.current_limit(), 16, "additive reopen caps at max");
    }

    #[test]
    fn backoff_never_drops_below_min() {
        let l = AimdLimiter::new(AimdConfig {
            min_limit: 2,
            max_limit: 4,
            ..AimdConfig::default()
        });
        for _ in 0..10 {
            l.on_congestion(at(0), None);
        }
        assert_eq!(l.current_limit(), 2);
    }

    #[test]
    fn retry_after_blocks_until_hint_elapses() {
        let l = AimdLimiter::new(AimdConfig::default());
        l.on_congestion(at(10), Some(SimDuration::from_millis(25)));
        assert!(!l.try_acquire(at(20)));
        assert_eq!(l.blocked_for(at(20)), SimDuration::from_millis(15));
        assert!(l.try_acquire(at(35)), "block lifts exactly at the hint");
        // A later, longer hint extends the block; an earlier one does not
        // shorten it.
        l.on_congestion(at(35), Some(SimDuration::from_millis(100)));
        l.on_congestion(at(36), Some(SimDuration::from_millis(1)));
        assert_eq!(l.blocked_for(at(36)), SimDuration::from_millis(99));
    }

    #[test]
    fn fractional_increase_accumulates() {
        let l = AimdLimiter::new(AimdConfig {
            min_limit: 1,
            max_limit: 8,
            increase_milli: 200,
            backoff_milli: 500,
        });
        for _ in 0..3 {
            l.on_congestion(at(0), None);
        }
        assert_eq!(l.current_limit(), 1);
        for _ in 0..4 {
            l.on_success();
        }
        assert_eq!(l.current_limit(), 1, "0.8 of a slot is not a slot");
        l.on_success();
        assert_eq!(l.current_limit(), 2, "five successes add one slot");
    }

    #[test]
    fn snapshot_reflects_counters() {
        let l = AimdLimiter::new(AimdConfig::default());
        assert!(l.try_acquire(at(0)));
        l.on_success();
        l.on_congestion(at(0), None);
        let s = l.snapshot();
        assert_eq!(s.in_flight, 1);
        assert_eq!(s.successes, 1);
        assert_eq!(s.congestions, 1);
    }
}
