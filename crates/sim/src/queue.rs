//! A generic future-event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A priority queue of events keyed by their due time.
///
/// Events scheduled for the same instant pop in insertion order (FIFO), which
/// keeps simulations deterministic. Used by the cluster substrate for
/// provisioning completions and by the simulated network for message
/// delivery.
///
/// # Example
///
/// ```
/// use erm_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "b");
/// q.schedule(SimTime::from_secs(1), "a");
/// let order: Vec<_> = q.pop_due(SimTime::from_secs(2)).collect();
/// assert_eq!(order, vec!["a", "b"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    due: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to become due at `due`.
    pub fn schedule(&mut self, due: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { due, seq, event }));
    }

    /// The due time of the earliest pending event, if any. Simulation drivers
    /// use this to skip idle stretches of virtual time.
    pub fn next_due(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.due)
    }

    /// Pops and returns every event due at or before `now`, in
    /// (time, insertion) order. The returned iterator borrows the queue;
    /// events scheduled while it is alive are not observed by it.
    pub fn pop_due(&mut self, now: SimTime) -> PopDue<'_, E> {
        PopDue { queue: self, now }
    }

    /// Pops the single earliest event due at or before `now`.
    pub fn pop_one_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.heap.peek() {
            Some(Reverse(e)) if e.due <= now => {
                let Reverse(e) = self.heap.pop().expect("peeked entry exists");
                Some((e.due, e.event))
            }
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Drains every pending event regardless of due time, in order.
    pub fn drain_all(&mut self) -> Vec<(SimTime, E)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(Reverse(e)) = self.heap.pop() {
            out.push((e.due, e.event));
        }
        out
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Iterator returned by [`EventQueue::pop_due`].
#[derive(Debug)]
pub struct PopDue<'a, E> {
    queue: &'a mut EventQueue<E>,
    now: SimTime,
}

impl<E> Iterator for PopDue<'_, E> {
    type Item = E;

    fn next(&mut self) -> Option<E> {
        self.queue.pop_one_due(self.now).map(|(_, e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        let got: Vec<_> = q.pop_due(SimTime::from_secs(10)).collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let got: Vec<_> = q.pop_due(t).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn future_events_stay_queued() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "later");
        assert!(q.pop_due(SimTime::from_secs(4)).next().is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_due(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn pop_one_due_is_incremental() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(
            q.pop_one_due(SimTime::from_secs(3)),
            Some((SimTime::from_secs(1), "a"))
        );
        assert_eq!(
            q.pop_one_due(SimTime::from_secs(3)),
            Some((SimTime::from_secs(2), "b"))
        );
        assert_eq!(q.pop_one_due(SimTime::from_secs(3)), None);
    }

    #[test]
    fn drain_all_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(9), 9);
        q.schedule(SimTime::from_secs(4), 4);
        let drained = q.drain_all();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].1, 4);
        assert!(q.is_empty());
    }

    #[test]
    fn clear_discards_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.next_due(), None);
    }
}

#[cfg(test)]
mod randomized {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Pop order is always non-decreasing in due time, whatever the
    /// schedule order (seeded-random replacement for the former proptest).
    #[test]
    fn pop_order_is_chronological() {
        let mut rng = StdRng::seed_from_u64(0x0E0E);
        for _ in 0..50 {
            let n = rng.gen_range(1usize..128);
            let times: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..1_000)).collect();
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_micros(t), i);
            }
            let drained = q.drain_all();
            for pair in drained.windows(2) {
                assert!(pair[0].0 <= pair[1].0);
            }
            assert_eq!(drained.len(), times.len());
        }
    }

    /// pop_due never returns an event later than `now` and never loses
    /// events.
    #[test]
    fn pop_due_respects_cutoff() {
        let mut rng = StdRng::seed_from_u64(0x90B5);
        for _ in 0..50 {
            let n = rng.gen_range(1usize..128);
            let times: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..1_000)).collect();
            let cutoff = rng.gen_range(0u64..1_000);
            let mut q = EventQueue::new();
            for &t in &times {
                q.schedule(SimTime::from_micros(t), t);
            }
            let now = SimTime::from_micros(cutoff);
            let popped: Vec<u64> = q.pop_due(now).collect();
            assert!(popped.iter().all(|&t| t <= cutoff));
            let expected = times.iter().filter(|&&t| t <= cutoff).count();
            assert_eq!(popped.len(), expected);
            assert_eq!(q.len(), times.len() - expected);
        }
    }
}
