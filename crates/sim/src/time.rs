//! Simulation timestamps and durations.
//!
//! Both types wrap a microsecond count in a `u64`. Microsecond resolution
//! comfortably spans the paper's 500-minute experiments (3×10¹⁰ µs) while
//! staying far from overflow (u64 holds ~584,000 years of microseconds).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulated (or real, when produced by a system clock) time,
/// measured in microseconds since the start of the run.
///
/// `SimTime` is ordered, copyable and cheap; arithmetic with
/// [`SimDuration`] is saturating on subtraction so metric code never panics
/// on slightly out-of-order samples.
///
/// # Example
///
/// ```
/// use erm_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(90);
/// assert_eq!(t.as_secs_f64(), 90.0);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_secs(90));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a timestamp from a raw microsecond count.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a timestamp `secs` seconds after the origin.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Creates a timestamp `minutes` minutes after the origin; experiment
    /// configuration in the paper is expressed in minutes.
    pub const fn from_minutes(minutes: u64) -> Self {
        SimTime(minutes * 60 * 1_000_000)
    }

    /// Raw microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as a float (lossy above 2^53 µs).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Minutes since the origin, as a float. The paper's figures all use a
    /// minutes x-axis.
    pub fn as_minutes_f64(self) -> f64 {
        self.0 as f64 / 60e6
    }

    /// The duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

/// A span of simulated time, in microseconds.
///
/// # Example
///
/// ```
/// use erm_sim::SimDuration;
///
/// let burst = SimDuration::from_secs(60);
/// assert_eq!(burst * 5, SimDuration::from_minutes(5));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_minutes(minutes: u64) -> Self {
        SimDuration(minutes * 60 * 1_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    /// Panics on division by zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl From<std::time::Duration> for SimDuration {
    fn from(d: std::time::Duration) -> Self {
        SimDuration(d.as_micros() as u64)
    }
}

impl From<SimDuration> for std::time::Duration {
    fn from(d: SimDuration) -> Self {
        std::time::Duration::from_micros(d.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 10_500_000);
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_millis(500));
    }

    #[test]
    fn subtraction_saturates_instead_of_panicking() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs(1) - SimDuration::from_secs(2),
            SimDuration::ZERO
        );
    }

    #[test]
    fn minutes_constructor_matches_seconds() {
        assert_eq!(SimTime::from_minutes(5), SimTime::from_secs(300));
        assert_eq!(SimDuration::from_minutes(2), SimDuration::from_secs(120));
    }

    #[test]
    fn float_conversions() {
        assert_eq!(SimTime::from_minutes(450).as_minutes_f64(), 450.0);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_micros(), 1_500_000);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_duration_rejected() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn std_duration_conversion_roundtrips() {
        let d = SimDuration::from_millis(1234);
        let std: std::time::Duration = d.into();
        assert_eq!(SimDuration::from(std), d);
    }

    #[test]
    fn display_is_nonempty_and_readable() {
        assert_eq!(format!("{}", SimTime::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "0.250s");
    }

    #[test]
    fn mul_div_scale_durations() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d * 6, SimDuration::from_minutes(1));
        assert_eq!(d / 2, SimDuration::from_secs(5));
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }
}
