#![warn(missing_docs)]

//! Discrete-event simulation substrate for the ElasticRMI reproduction.
//!
//! The paper's evaluation runs each experiment for 450–500 *minutes* of wall
//! clock. This crate provides the pieces that let the same elasticity logic
//! run in virtual time instead: a monotonic [`SimTime`] timestamp, a
//! [`Clock`] abstraction implemented both by the [`VirtualClock`] used in
//! experiments and by the [`SystemClock`] used by the threaded runtime, a
//! generic [`EventQueue`] for scheduling future completions (provisioning,
//! message delivery), and deterministic RNG helpers so every experiment is
//! reproducible from a seed.
//!
//! # Example
//!
//! ```
//! use erm_sim::{Clock, EventQueue, SimDuration, SimTime, VirtualClock};
//!
//! let clock = VirtualClock::new();
//! let mut queue = EventQueue::new();
//! queue.schedule(clock.now() + SimDuration::from_secs(30), "provisioned");
//! clock.advance(SimDuration::from_secs(60));
//! let ready: Vec<_> = queue.pop_due(clock.now()).collect();
//! assert_eq!(ready, vec!["provisioned"]);
//! ```

mod clock;
mod queue;
mod rng;
mod series;
mod time;

pub use clock::{Clock, SharedClock, SystemClock, VirtualClock};
pub use queue::EventQueue;
pub use rng::{derive_seed, seeded_rng};
pub use series::TimeSeries;
pub use time::{SimDuration, SimTime};
