//! Timestamped value series used throughout the harness and metrics crates.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// An append-only series of `(time, value)` samples.
///
/// This is the common currency between the experiment runner (which records
/// pool sizes, workload rates and utilizations) and the figure printers. It
/// deliberately stays minimal: ordered pushes, iteration, interpolation-free
/// lookup, and simple summary statistics.
///
/// # Example
///
/// ```
/// use erm_sim::{SimTime, TimeSeries};
///
/// let mut s = TimeSeries::new("pool_size");
/// s.push(SimTime::from_minutes(0), 5.0);
/// s.push(SimTime::from_minutes(10), 8.0);
/// assert_eq!(s.mean(), Some(6.5));
/// assert_eq!(s.value_at(SimTime::from_minutes(7)), Some(5.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series labelled `name`.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// The series label (used as the column header by figure printers).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the last sample; series are recorded in
    /// chronological order.
    pub fn push(&mut self, t: SimTime, value: f64) {
        if let Some(&(last, _)) = self.samples.last() {
            assert!(t >= last, "time series {} sample out of order", self.name);
        }
        self.samples.push((t, value));
    }

    /// The samples, in chronological order.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Iterates over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.samples.iter().copied()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The last value recorded at or before `t` (step interpolation), or
    /// `None` if `t` precedes the first sample.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.samples.binary_search_by_key(&t, |&(st, _)| st) {
            Ok(i) => Some(self.samples[i].1),
            Err(0) => None,
            Err(i) => Some(self.samples[i - 1].1),
        }
    }

    /// Arithmetic mean of the values, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().map(|&(_, v)| v).sum::<f64>() / self.samples.len() as f64)
    }

    /// Maximum value, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().map(|&(_, v)| v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(m) => m.max(v),
            })
        })
    }

    /// Minimum value, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().map(|&(_, v)| v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(m) => m.min(v),
            })
        })
    }

    /// Fraction of samples whose value is exactly zero. The paper highlights
    /// how often ElasticRMI's agility "oscillates back to zero"; this is the
    /// statistic behind that observation.
    pub fn zero_fraction(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let zeros = self.samples.iter().filter(|&&(_, v)| v == 0.0).count();
        Some(zeros as f64 / self.samples.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[(u64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new("test");
        for &(min, v) in values {
            s.push(SimTime::from_minutes(min), v);
        }
        s
    }

    #[test]
    fn mean_min_max() {
        let s = series(&[(0, 1.0), (10, 3.0), (20, 5.0)]);
        assert_eq!(s.mean(), Some(3.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(5.0));
    }

    #[test]
    fn empty_series_has_no_stats() {
        let s = TimeSeries::new("empty");
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.zero_fraction(), None);
    }

    #[test]
    fn value_at_uses_step_interpolation() {
        let s = series(&[(10, 1.0), (20, 2.0)]);
        assert_eq!(s.value_at(SimTime::from_minutes(5)), None);
        assert_eq!(s.value_at(SimTime::from_minutes(10)), Some(1.0));
        assert_eq!(s.value_at(SimTime::from_minutes(15)), Some(1.0));
        assert_eq!(s.value_at(SimTime::from_minutes(20)), Some(2.0));
        assert_eq!(s.value_at(SimTime::from_minutes(99)), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_push_panics() {
        let mut s = series(&[(10, 1.0)]);
        s.push(SimTime::from_minutes(5), 2.0);
    }

    #[test]
    fn zero_fraction_counts_exact_zeros() {
        let s = series(&[(0, 0.0), (1, 2.0), (2, 0.0), (3, 4.0)]);
        assert_eq!(s.zero_fraction(), Some(0.5));
    }
}
