//! Deterministic random number helpers.
//!
//! Every stochastic component of an experiment (provisioning latency jitter,
//! workload noise, client load-balancing choices) derives its RNG from the
//! experiment seed through these helpers, so a run is exactly reproducible
//! from its seed.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a seeded [`StdRng`].
///
/// # Example
///
/// ```
/// use rand::Rng;
///
/// let mut a = erm_sim::seeded_rng(42);
/// let mut b = erm_sim::seeded_rng(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a stable sub-seed for a named component from a base seed.
///
/// Uses the FNV-1a hash of the label mixed into the base seed, so adding a
/// new component to an experiment does not perturb the random streams of the
/// existing ones (unlike drawing sub-seeds sequentially from one RNG).
///
/// # Example
///
/// ```
/// let cluster_seed = erm_sim::derive_seed(7, "cluster");
/// let workload_seed = erm_sim::derive_seed(7, "workload");
/// assert_ne!(cluster_seed, workload_seed);
/// assert_eq!(cluster_seed, erm_sim::derive_seed(7, "cluster"));
/// ```
pub fn derive_seed(base: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET ^ base.rotate_left(17);
    for byte in label.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    // Final avalanche (splitmix64 finalizer) so similar labels diverge.
    let mut z = hash.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u32> = seeded_rng(1)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = seeded_rng(1)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_different_stream() {
        let a: u64 = seeded_rng(1).gen();
        let b: u64 = seeded_rng(2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn derive_seed_is_stable_and_label_sensitive() {
        assert_eq!(derive_seed(9, "x"), derive_seed(9, "x"));
        assert_ne!(derive_seed(9, "x"), derive_seed(9, "y"));
        assert_ne!(derive_seed(9, "x"), derive_seed(10, "x"));
    }

    #[test]
    fn similar_labels_diverge() {
        let seeds: Vec<u64> = (0..32)
            .map(|i| derive_seed(0, &format!("node-{i}")))
            .collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            seeds.len(),
            "derived seeds collided: {seeds:?}"
        );
    }
}
