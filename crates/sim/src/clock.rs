//! Clock abstraction shared by the simulated and threaded runtimes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::time::{SimDuration, SimTime};

/// A source of monotonic timestamps.
///
/// The elasticity control loop (burst intervals, provisioning latency,
/// agility sampling) only ever *reads* time through this trait, which is what
/// lets the identical code run under a [`VirtualClock`] in experiments and a
/// [`SystemClock`] in the threaded runtime.
///
/// Implementations must be monotonic: successive calls to [`Clock::now`]
/// never go backwards.
pub trait Clock: Send + Sync {
    /// The current time.
    fn now(&self) -> SimTime;
}

/// A shareable clock handle.
pub type SharedClock = Arc<dyn Clock>;

/// A manually advanced clock for simulations and tests.
///
/// Cloning shares the underlying counter, so every component of a simulated
/// deployment observes the same instant.
///
/// # Example
///
/// ```
/// use erm_sim::{Clock, SimDuration, VirtualClock};
///
/// let clock = VirtualClock::new();
/// let view = clock.clone();
/// clock.advance(SimDuration::from_secs(5));
/// assert_eq!(view.now().as_secs_f64(), 5.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    micros: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock already advanced to `start`.
    pub fn starting_at(start: SimTime) -> Self {
        let clock = Self::new();
        clock.micros.store(start.as_micros(), Ordering::SeqCst);
        clock
    }

    /// Moves time forward by `delta`.
    pub fn advance(&self, delta: SimDuration) {
        self.micros.fetch_add(delta.as_micros(), Ordering::SeqCst);
    }

    /// Jumps directly to `target`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is earlier than the current time, since clocks are
    /// monotonic.
    pub fn advance_to(&self, target: SimTime) {
        let prev = self.micros.swap(target.as_micros(), Ordering::SeqCst);
        assert!(
            prev <= target.as_micros(),
            "virtual clock moved backwards: {prev} -> {}",
            target.as_micros()
        );
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.micros.load(Ordering::SeqCst))
    }
}

/// A wall-clock [`Clock`] anchored at its creation instant.
///
/// Used by the threaded runtime (examples, TCP transport) so the same pool
/// code measures real elapsed time.
#[derive(Debug, Clone)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// Creates a clock whose zero is "now".
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.origin.elapsed().as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_starts_at_zero_and_advances() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), SimTime::ZERO);
        clock.advance(SimDuration::from_minutes(10));
        assert_eq!(clock.now(), SimTime::from_minutes(10));
    }

    #[test]
    fn clones_share_time() {
        let a = VirtualClock::new();
        let b = a.clone();
        b.advance(SimDuration::from_secs(3));
        assert_eq!(a.now(), SimTime::from_secs(3));
    }

    #[test]
    fn advance_to_moves_forward() {
        let clock = VirtualClock::starting_at(SimTime::from_secs(10));
        clock.advance_to(SimTime::from_secs(20));
        assert_eq!(clock.now(), SimTime::from_secs(20));
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn advance_to_rejects_backwards_motion() {
        let clock = VirtualClock::starting_at(SimTime::from_secs(10));
        clock.advance_to(SimTime::from_secs(5));
    }

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn clock_trait_object_is_usable() {
        let shared: SharedClock = Arc::new(VirtualClock::new());
        assert_eq!(shared.now(), SimTime::ZERO);
    }
}
