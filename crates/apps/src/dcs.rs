//! DCS: a distributed coordination service on ElasticRMI (paper §5.2).
//!
//! "DCS is a distributed co-ordination service for datacenter applications,
//! similar to Chubby and Apache Zookeeper. DCS has a hierarchical name space
//! which can be used for distributed configuration and synchronization.
//! Updates are totally ordered."
//!
//! The namespace is a tree of slash-separated paths. Every mutation is
//! stamped with a **zxid** drawn from a shared atomic sequencer, giving a
//! single total order of updates across the whole pool, observable through
//! each node's `modified_zxid`.
//!
//! Remote methods:
//!
//! * `create(path, data)` — create a node (parent must exist; `/` is
//!   implicit),
//! * `set(path, data)` / `get(path)` / `delete(path)`,
//! * `exists(path)`, `children(path)` (sorted),
//! * `sync()` — returns the current zxid high-water mark.
//!
//! Delete requires the node to be childless, as in ZooKeeper. Watch-style
//! change polling is available through `changes_since(zxid)`, backed by a
//! bounded, totally ordered changelog.
//!
//! Sessions and ephemeral nodes (the Chubby/ZooKeeper feature the paper's
//! DCS alludes to) are supported as an extension: `create_session(ttl_secs)`
//! returns a session id kept alive by `heartbeat`; `create_ephemeral` ties a
//! node to a session, and `expire_sessions` reaps nodes of lapsed sessions.

use elasticrmi::{
    decode_args, encode_result, ElasticService, MethodCallStats, RemoteError, ServiceContext,
};
use serde::{Deserialize, Serialize};

use crate::model::{demand_vote, AppKind};

/// A node in the hierarchical namespace, as returned by `get`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZNode {
    /// The node's payload.
    pub data: Vec<u8>,
    /// zxid of the update that created the node.
    pub created_zxid: u64,
    /// zxid of the most recent update to the node.
    pub modified_zxid: u64,
}

/// The elastic coordination service.
#[derive(Debug, Default)]
pub struct Dcs {
    updates_here: u64,
}

impl Dcs {
    /// Creates a DCS server instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// The elastic class name.
    pub const CLASS: &'static str = "DCS";

    const TREE_PREFIX: &'static str = "dcs!";

    fn validate_path(path: &str) -> Result<(), RemoteError> {
        let ok = path.starts_with('/')
            && !path.contains("//")
            && (path == "/" || !path.ends_with('/'))
            && path.len() <= 512;
        if ok {
            Ok(())
        } else {
            Err(RemoteError::new("InvalidPath", format!("{path:?}")))
        }
    }

    fn node_key(path: &str) -> String {
        format!("{}{path}", Self::TREE_PREFIX)
    }

    fn parent_of(path: &str) -> Option<&str> {
        if path == "/" {
            return None;
        }
        match path.rfind('/') {
            Some(0) => Some("/"),
            Some(i) => Some(&path[..i]),
            None => None,
        }
    }

    /// Appends to the bounded shared changelog (the data source for
    /// ZooKeeper-style watch polling).
    fn log_change(ctx: &ServiceContext, zxid: u64, op: &str, path: &str) {
        const CAP: usize = 1_000;
        ctx.shared::<Vec<(u64, String, String)>>("changelog")
            .update(Vec::new, |log| {
                log.push((zxid, op.to_string(), path.to_string()));
                if log.len() > CAP {
                    let excess = log.len() - CAP;
                    log.drain(..excess);
                }
            });
    }

    fn next_zxid(ctx: &ServiceContext) -> u64 {
        ctx.shared::<u64>("zxid").update(
            || 0,
            |z| {
                *z += 1;
                *z
            },
        )
    }

    fn session_key(id: u64) -> String {
        format!("dcs-session/{id}")
    }

    fn ephemeral_index_key(id: u64) -> String {
        format!("dcs-ephemeral/{id}")
    }

    fn node_exists(ctx: &ServiceContext, path: &str) -> bool {
        path == "/" || ctx.store().get(&Self::node_key(path)).is_some()
    }

    fn read_node(ctx: &ServiceContext, path: &str) -> Result<Option<ZNode>, RemoteError> {
        match ctx.store().get(&Self::node_key(path)) {
            Some(v) => {
                Ok(Some(erm_transport::from_bytes(&v.value).map_err(|e| {
                    RemoteError::new("CorruptNode", e.to_string())
                })?))
            }
            None => Ok(None),
        }
    }

    fn write_node(ctx: &ServiceContext, path: &str, node: &ZNode) {
        let bytes = erm_transport::to_bytes(node).expect("znode encodes");
        ctx.store().put(&Self::node_key(path), bytes);
    }

    fn children_of(ctx: &ServiceContext, path: &str) -> Vec<String> {
        let prefix = if path == "/" {
            format!("{}/", Self::TREE_PREFIX)
        } else {
            format!("{}{path}/", Self::TREE_PREFIX)
        };
        ctx.store()
            .keys_with_prefix(&prefix)
            .into_iter()
            .filter(|k| !k[prefix.len()..].contains('/')) // direct children only
            .map(|k| k[Self::TREE_PREFIX.len()..].to_string())
            .collect()
    }
}

impl ElasticService for Dcs {
    fn dispatch(
        &mut self,
        method: &str,
        args: &[u8],
        ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError> {
        match method {
            "create" => {
                let (path, data): (String, Vec<u8>) = decode_args(method, args)?;
                Self::validate_path(&path)?;
                if path == "/" {
                    return Err(RemoteError::new("NodeExists", "/"));
                }
                let parent = Self::parent_of(&path).expect("non-root has a parent");
                // Creation is serialized per class so parent checks and the
                // zxid stamp are atomic (a synchronized elastic method).
                let result = ctx.synchronized(|| {
                    if !Self::node_exists(ctx, parent) {
                        return Err(RemoteError::new("NoParent", parent.to_string()));
                    }
                    if Self::node_exists(ctx, &path) {
                        return Err(RemoteError::new("NodeExists", path.clone()));
                    }
                    let zxid = Self::next_zxid(ctx);
                    Self::write_node(
                        ctx,
                        &path,
                        &ZNode {
                            data: data.clone(),
                            created_zxid: zxid,
                            modified_zxid: zxid,
                        },
                    );
                    Self::log_change(ctx, zxid, "create", &path);
                    Ok(zxid)
                });
                self.updates_here += 1;
                encode_result(&result?)
            }
            "set" => {
                let (path, data): (String, Vec<u8>) = decode_args(method, args)?;
                Self::validate_path(&path)?;
                let result = ctx.synchronized(|| {
                    let Some(mut node) = Self::read_node(ctx, &path)? else {
                        return Err(RemoteError::new("NoNode", path.clone()));
                    };
                    let zxid = Self::next_zxid(ctx);
                    node.data = data.clone();
                    node.modified_zxid = zxid;
                    Self::write_node(ctx, &path, &node);
                    Self::log_change(ctx, zxid, "set", &path);
                    Ok(zxid)
                });
                self.updates_here += 1;
                encode_result(&result?)
            }
            "get" => {
                let path: String = decode_args(method, args)?;
                Self::validate_path(&path)?;
                encode_result(&Self::read_node(ctx, &path)?)
            }
            "exists" => {
                let path: String = decode_args(method, args)?;
                Self::validate_path(&path)?;
                encode_result(&Self::node_exists(ctx, &path))
            }
            "children" => {
                let path: String = decode_args(method, args)?;
                Self::validate_path(&path)?;
                if !Self::node_exists(ctx, &path) {
                    return Err(RemoteError::new("NoNode", path));
                }
                encode_result(&Self::children_of(ctx, &path))
            }
            "delete" => {
                let path: String = decode_args(method, args)?;
                Self::validate_path(&path)?;
                if path == "/" {
                    return Err(RemoteError::new("InvalidPath", "cannot delete root"));
                }
                let result = ctx.synchronized(|| {
                    if !Self::node_exists(ctx, &path) {
                        return Err(RemoteError::new("NoNode", path.clone()));
                    }
                    if !Self::children_of(ctx, &path).is_empty() {
                        return Err(RemoteError::new("NotEmpty", path.clone()));
                    }
                    let zxid = Self::next_zxid(ctx);
                    ctx.store().delete(&Self::node_key(&path));
                    Self::log_change(ctx, zxid, "delete", &path);
                    Ok(zxid)
                });
                self.updates_here += 1;
                encode_result(&result?)
            }
            "create_session" => {
                let ttl_secs: u64 = decode_args(method, args)?;
                if ttl_secs == 0 {
                    return Err(RemoteError::new("InvalidSession", "zero ttl"));
                }
                let id = ctx.shared::<u64>("next_session").update(
                    || 0,
                    |n| {
                        *n += 1;
                        *n
                    },
                );
                let deadline = ctx.now().as_micros() + ttl_secs * 1_000_000;
                ctx.store().put(
                    &Self::session_key(id),
                    erm_transport::to_bytes(&(deadline, ttl_secs)).expect("session record encodes"),
                );
                encode_result(&id)
            }
            "heartbeat" => {
                let id: u64 = decode_args(method, args)?;
                let Some(cell) = ctx.store().get(&Self::session_key(id)) else {
                    return Err(RemoteError::new("NoSession", id.to_string()));
                };
                let (_, ttl_secs): (u64, u64) = erm_transport::from_bytes(&cell.value)
                    .map_err(|e| RemoteError::new("CorruptSession", e.to_string()))?;
                let deadline = ctx.now().as_micros() + ttl_secs * 1_000_000;
                ctx.store().put(
                    &Self::session_key(id),
                    erm_transport::to_bytes(&(deadline, ttl_secs)).expect("session record encodes"),
                );
                encode_result(&deadline)
            }
            "create_ephemeral" => {
                let (session, path, data): (u64, String, Vec<u8>) = decode_args(method, args)?;
                Self::validate_path(&path)?;
                if ctx.store().get(&Self::session_key(session)).is_none() {
                    return Err(RemoteError::new("NoSession", session.to_string()));
                }
                // Create exactly like a normal node...
                let created = self.dispatch(
                    "create",
                    &erm_transport::to_bytes(&(path.clone(), data)).expect("args encode"),
                    ctx,
                )?;
                // ...then index it under its owning session.
                ctx.shared::<Vec<String>>(&format!("ephemeral/{session}"))
                    .update(Vec::new, |paths| paths.push(path.clone()));
                ctx.store().put(
                    &Self::ephemeral_index_key(session),
                    Vec::new(), // marker: session owns ephemerals
                );
                Ok(created)
            }
            "expire_sessions" => {
                // Reaps every session whose deadline passed, deleting its
                // ephemeral nodes (children-last so deletes succeed).
                let now = ctx.now().as_micros();
                let mut expired = 0u32;
                let sessions = ctx.store().keys_with_prefix("dcs-session/");
                for key in sessions {
                    let Some(cell) = ctx.store().get(&key) else {
                        continue;
                    };
                    let Ok((deadline, _ttl)) = erm_transport::from_bytes::<(u64, u64)>(&cell.value)
                    else {
                        continue;
                    };
                    if deadline > now {
                        continue;
                    }
                    let id: u64 = key["dcs-session/".len()..].parse().unwrap_or(0);
                    let owned = ctx
                        .shared::<Vec<String>>(&format!("ephemeral/{id}"))
                        .get()
                        .unwrap_or_default();
                    let mut sorted = owned;
                    sorted.sort_by_key(|p| std::cmp::Reverse(p.len()));
                    for path in sorted {
                        let _ = self.dispatch(
                            "delete",
                            &erm_transport::to_bytes(&path).expect("path encodes"),
                            ctx,
                        );
                    }
                    ctx.store().delete(&key);
                    ctx.store().delete(&Self::ephemeral_index_key(id));
                    ctx.store().delete(&format!("DCS$ephemeral/{id}"));
                    expired += 1;
                }
                encode_result(&expired)
            }
            "changes_since" => {
                // Watch polling: every update after `zxid`, in total order.
                // Returns (zxid, op, path) triples; the log is bounded, so a
                // far-behind client may miss entries (it should resync).
                let since: u64 = decode_args(method, args)?;
                let log = ctx
                    .shared::<Vec<(u64, String, String)>>("changelog")
                    .get()
                    .unwrap_or_default();
                let changes: Vec<(u64, String, String)> =
                    log.into_iter().filter(|(z, _, _)| *z > since).collect();
                encode_result(&changes)
            }
            "sync" => {
                let zxid = ctx.shared::<u64>("zxid").get().unwrap_or(0);
                encode_result(&zxid)
            }
            other => Err(RemoteError::no_such_method(other)),
        }
    }

    fn change_pool_size(&mut self, stats: &MethodCallStats, ctx: &mut ServiceContext) -> i32 {
        let model = AppKind::Dcs.model();
        let update_rate: f64 = ["create", "set", "delete"]
            .iter()
            .map(|m| stats.rate(m))
            .sum();
        let pool_rate = update_rate * f64::from(ctx.pool_size().max(1));
        demand_vote(pool_rate, model.per_object_capacity, ctx.pool_size(), 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erm_kvstore::{Store, StoreConfig};
    use erm_sim::VirtualClock;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    fn member(store: &Arc<Store>, uid: u64) -> (Dcs, ServiceContext) {
        (
            Dcs::new(),
            ServiceContext::new(
                Arc::clone(store),
                Dcs::CLASS,
                uid,
                Arc::new(VirtualClock::new()),
                Arc::new(AtomicU32::new(3)),
            ),
        )
    }

    fn fresh() -> (Dcs, ServiceContext) {
        member(&Arc::new(Store::new(StoreConfig::default())), 0)
    }

    fn call<A: serde::Serialize, R: serde::de::DeserializeOwned>(
        svc: &mut Dcs,
        ctx: &mut ServiceContext,
        method: &str,
        args: &A,
    ) -> Result<R, RemoteError> {
        let bytes = svc.dispatch(method, &erm_transport::to_bytes(args).unwrap(), ctx)?;
        Ok(erm_transport::from_bytes(&bytes).unwrap())
    }

    #[test]
    fn create_get_roundtrip() {
        let (mut svc, mut ctx) = fresh();
        let zxid: u64 = call(&mut svc, &mut ctx, "create", &("/cfg", b"x".to_vec())).unwrap();
        assert_eq!(zxid, 1);
        let node: Option<ZNode> = call(&mut svc, &mut ctx, "get", &"/cfg").unwrap();
        let node = node.unwrap();
        assert_eq!(node.data, b"x");
        assert_eq!(node.created_zxid, 1);
    }

    #[test]
    fn create_requires_parent() {
        let (mut svc, mut ctx) = fresh();
        let err =
            call::<_, u64>(&mut svc, &mut ctx, "create", &("/a/b", Vec::<u8>::new())).unwrap_err();
        assert_eq!(err.kind, "NoParent");
        let _: u64 = call(&mut svc, &mut ctx, "create", &("/a", Vec::<u8>::new())).unwrap();
        let _: u64 = call(&mut svc, &mut ctx, "create", &("/a/b", Vec::<u8>::new())).unwrap();
    }

    #[test]
    fn duplicate_create_rejected() {
        let (mut svc, mut ctx) = fresh();
        let _: u64 = call(&mut svc, &mut ctx, "create", &("/x", Vec::<u8>::new())).unwrap();
        let err =
            call::<_, u64>(&mut svc, &mut ctx, "create", &("/x", Vec::<u8>::new())).unwrap_err();
        assert_eq!(err.kind, "NodeExists");
    }

    #[test]
    fn updates_are_totally_ordered() {
        let (mut svc, mut ctx) = fresh();
        let z1: u64 = call(&mut svc, &mut ctx, "create", &("/a", Vec::<u8>::new())).unwrap();
        let z2: u64 = call(&mut svc, &mut ctx, "create", &("/b", Vec::<u8>::new())).unwrap();
        let z3: u64 = call(&mut svc, &mut ctx, "set", &("/a", b"v".to_vec())).unwrap();
        assert!(z1 < z2 && z2 < z3, "zxids must strictly increase");
        let hw: u64 = call(&mut svc, &mut ctx, "sync", &()).unwrap();
        assert_eq!(hw, z3);
    }

    #[test]
    fn children_are_sorted_and_direct_only() {
        let (mut svc, mut ctx) = fresh();
        for p in ["/svc", "/svc/b", "/svc/a", "/svc/a/deep"] {
            let _: u64 = call(&mut svc, &mut ctx, "create", &(p, Vec::<u8>::new())).unwrap();
        }
        let kids: Vec<String> = call(&mut svc, &mut ctx, "children", &"/svc").unwrap();
        assert_eq!(kids, vec!["/svc/a", "/svc/b"]);
        let root_kids: Vec<String> = call(&mut svc, &mut ctx, "children", &"/").unwrap();
        assert_eq!(root_kids, vec!["/svc"]);
    }

    #[test]
    fn delete_requires_empty_node() {
        let (mut svc, mut ctx) = fresh();
        let _: u64 = call(&mut svc, &mut ctx, "create", &("/d", Vec::<u8>::new())).unwrap();
        let _: u64 = call(&mut svc, &mut ctx, "create", &("/d/kid", Vec::<u8>::new())).unwrap();
        let err = call::<_, u64>(&mut svc, &mut ctx, "delete", &"/d").unwrap_err();
        assert_eq!(err.kind, "NotEmpty");
        let _: u64 = call(&mut svc, &mut ctx, "delete", &"/d/kid").unwrap();
        let _: u64 = call(&mut svc, &mut ctx, "delete", &"/d").unwrap();
        let exists: bool = call(&mut svc, &mut ctx, "exists", &"/d").unwrap();
        assert!(!exists);
    }

    #[test]
    fn invalid_paths_rejected() {
        let (mut svc, mut ctx) = fresh();
        for bad in ["", "no-slash", "/a//b", "/trailing/"] {
            let err = call::<_, Option<ZNode>>(&mut svc, &mut ctx, "get", &bad).unwrap_err();
            assert_eq!(err.kind, "InvalidPath", "path {bad:?}");
        }
    }

    #[test]
    fn set_on_missing_node_fails() {
        let (mut svc, mut ctx) = fresh();
        let err =
            call::<_, u64>(&mut svc, &mut ctx, "set", &("/ghost", b"x".to_vec())).unwrap_err();
        assert_eq!(err.kind, "NoNode");
    }

    #[test]
    fn zxids_are_unique_across_members() {
        // Concurrent updates through different pool members draw from one
        // sequencer: no duplicate zxids, the total order of the paper.
        let store = Arc::new(Store::new(StoreConfig::default()));
        let mut handles = Vec::new();
        for uid in 0..4u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let (mut svc, mut ctx) = member(&store, uid);
                let mut zxids = Vec::new();
                for i in 0..50 {
                    let path = format!("/m{uid}-{i}");
                    let z: u64 = call(
                        &mut svc,
                        &mut ctx,
                        "create",
                        &(path.as_str(), Vec::<u8>::new()),
                    )
                    .unwrap();
                    zxids.push(z);
                }
                zxids
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let n = all.len();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate zxid would break total ordering");
        assert_eq!(*all.last().unwrap(), n as u64, "zxids are gap-free");
    }
}

#[cfg(test)]
mod session_tests {
    use super::*;
    use erm_kvstore::{Store, StoreConfig};
    use erm_sim::{SimDuration, VirtualClock};
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    struct Rig {
        svc: Dcs,
        ctx: ServiceContext,
        clock: Arc<VirtualClock>,
    }

    fn rig() -> Rig {
        let clock = Arc::new(VirtualClock::new());
        Rig {
            svc: Dcs::new(),
            ctx: ServiceContext::new(
                Arc::new(Store::new(StoreConfig::default())),
                Dcs::CLASS,
                0,
                clock.clone(),
                Arc::new(AtomicU32::new(3)),
            ),
            clock,
        }
    }

    fn call<A: serde::Serialize, R: serde::de::DeserializeOwned>(
        r: &mut Rig,
        method: &str,
        args: &A,
    ) -> Result<R, RemoteError> {
        let bytes = r
            .svc
            .dispatch(method, &erm_transport::to_bytes(args).unwrap(), &mut r.ctx)?;
        Ok(erm_transport::from_bytes(&bytes).unwrap())
    }

    #[test]
    fn sessions_are_created_with_increasing_ids() {
        let mut r = rig();
        let a: u64 = call(&mut r, "create_session", &30u64).unwrap();
        let b: u64 = call(&mut r, "create_session", &30u64).unwrap();
        assert!(b > a);
    }

    #[test]
    fn zero_ttl_session_rejected() {
        let mut r = rig();
        let err = call::<_, u64>(&mut r, "create_session", &0u64).unwrap_err();
        assert_eq!(err.kind, "InvalidSession");
    }

    #[test]
    fn ephemeral_node_dies_with_its_session() {
        let mut r = rig();
        let session: u64 = call(&mut r, "create_session", &30u64).unwrap();
        let _: u64 = call(
            &mut r,
            "create_ephemeral",
            &(session, "/lock", b"me".to_vec()),
        )
        .unwrap();
        let exists: bool = call(&mut r, "exists", &"/lock").unwrap();
        assert!(exists);
        // Session lapses...
        r.clock.advance(SimDuration::from_secs(31));
        let expired: u32 = call(&mut r, "expire_sessions", &()).unwrap();
        assert_eq!(expired, 1);
        let exists: bool = call(&mut r, "exists", &"/lock").unwrap();
        assert!(!exists, "ephemeral node must be reaped with the session");
    }

    #[test]
    fn heartbeat_keeps_session_alive() {
        let mut r = rig();
        let session: u64 = call(&mut r, "create_session", &30u64).unwrap();
        let _: u64 = call(
            &mut r,
            "create_ephemeral",
            &(session, "/leader", Vec::<u8>::new()),
        )
        .unwrap();
        r.clock.advance(SimDuration::from_secs(20));
        let _: u64 = call(&mut r, "heartbeat", &session).unwrap();
        r.clock.advance(SimDuration::from_secs(20)); // 40s total, but renewed at 20
        let expired: u32 = call(&mut r, "expire_sessions", &()).unwrap();
        assert_eq!(expired, 0);
        let exists: bool = call(&mut r, "exists", &"/leader").unwrap();
        assert!(exists);
    }

    #[test]
    fn heartbeat_of_unknown_session_errors() {
        let mut r = rig();
        let err = call::<_, u64>(&mut r, "heartbeat", &99u64).unwrap_err();
        assert_eq!(err.kind, "NoSession");
    }

    #[test]
    fn ephemeral_on_dead_session_rejected() {
        let mut r = rig();
        let err = call::<_, u64>(
            &mut r,
            "create_ephemeral",
            &(404u64, "/x", Vec::<u8>::new()),
        )
        .unwrap_err();
        assert_eq!(err.kind, "NoSession");
    }

    #[test]
    fn ephemeral_trees_are_reaped_children_first() {
        let mut r = rig();
        let session: u64 = call(&mut r, "create_session", &10u64).unwrap();
        let _: u64 = call(
            &mut r,
            "create_ephemeral",
            &(session, "/svc", Vec::<u8>::new()),
        )
        .unwrap();
        let _: u64 = call(
            &mut r,
            "create_ephemeral",
            &(session, "/svc/a", Vec::<u8>::new()),
        )
        .unwrap();
        r.clock.advance(SimDuration::from_secs(11));
        let expired: u32 = call(&mut r, "expire_sessions", &()).unwrap();
        assert_eq!(expired, 1);
        let exists: bool = call(&mut r, "exists", &"/svc").unwrap();
        assert!(!exists, "parent deleted after its ephemeral child");
    }

    #[test]
    fn persistent_nodes_survive_session_expiry() {
        let mut r = rig();
        let session: u64 = call(&mut r, "create_session", &10u64).unwrap();
        let _: u64 = call(&mut r, "create", &("/durable", Vec::<u8>::new())).unwrap();
        let _: u64 = call(
            &mut r,
            "create_ephemeral",
            &(session, "/temp", Vec::<u8>::new()),
        )
        .unwrap();
        r.clock.advance(SimDuration::from_secs(11));
        let _: u32 = call(&mut r, "expire_sessions", &()).unwrap();
        let durable: bool = call(&mut r, "exists", &"/durable").unwrap();
        let temp: bool = call(&mut r, "exists", &"/temp").unwrap();
        assert!(durable && !temp);
    }
}

#[cfg(test)]
mod watch_tests {
    use super::*;
    use erm_kvstore::{Store, StoreConfig};
    use erm_sim::VirtualClock;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    fn fresh() -> (Dcs, ServiceContext) {
        (
            Dcs::new(),
            ServiceContext::new(
                Arc::new(Store::new(StoreConfig::default())),
                Dcs::CLASS,
                0,
                Arc::new(VirtualClock::new()),
                Arc::new(AtomicU32::new(3)),
            ),
        )
    }

    fn call<A: serde::Serialize, R: serde::de::DeserializeOwned>(
        svc: &mut Dcs,
        ctx: &mut ServiceContext,
        method: &str,
        args: &A,
    ) -> R {
        let bytes = svc
            .dispatch(method, &erm_transport::to_bytes(args).unwrap(), ctx)
            .unwrap();
        erm_transport::from_bytes(&bytes).unwrap()
    }

    #[test]
    fn changes_since_returns_totally_ordered_updates() {
        let (mut svc, mut ctx) = fresh();
        let _: u64 = call(&mut svc, &mut ctx, "create", &("/a", Vec::<u8>::new()));
        let z2: u64 = call(&mut svc, &mut ctx, "set", &("/a", b"v".to_vec()));
        let _: u64 = call(&mut svc, &mut ctx, "delete", &"/a");
        let all: Vec<(u64, String, String)> = call(&mut svc, &mut ctx, "changes_since", &0u64);
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].1, "create");
        assert_eq!(all[1], (z2, "set".to_string(), "/a".to_string()));
        assert_eq!(all[2].1, "delete");
        for pair in all.windows(2) {
            assert!(pair[0].0 < pair[1].0, "zxids strictly increase");
        }
    }

    #[test]
    fn changes_since_filters_by_zxid() {
        let (mut svc, mut ctx) = fresh();
        let z1: u64 = call(&mut svc, &mut ctx, "create", &("/a", Vec::<u8>::new()));
        let _: u64 = call(&mut svc, &mut ctx, "create", &("/b", Vec::<u8>::new()));
        let after: Vec<(u64, String, String)> = call(&mut svc, &mut ctx, "changes_since", &z1);
        assert_eq!(after.len(), 1);
        assert_eq!(after[0].2, "/b");
    }

    #[test]
    fn reads_do_not_appear_in_the_changelog() {
        let (mut svc, mut ctx) = fresh();
        let _: u64 = call(&mut svc, &mut ctx, "create", &("/a", Vec::<u8>::new()));
        let _: Option<ZNode> = call(&mut svc, &mut ctx, "get", &"/a");
        let _: bool = call(&mut svc, &mut ctx, "exists", &"/a");
        let all: Vec<(u64, String, String)> = call(&mut svc, &mut ctx, "changes_since", &0u64);
        assert_eq!(all.len(), 1, "only the create is logged");
    }

    #[test]
    fn changelog_is_bounded() {
        let (mut svc, mut ctx) = fresh();
        for i in 0..1_100 {
            let _: u64 = call(
                &mut svc,
                &mut ctx,
                "create",
                &(format!("/n{i}"), Vec::<u8>::new()),
            );
        }
        let all: Vec<(u64, String, String)> = call(&mut svc, &mut ctx, "changes_since", &0u64);
        assert_eq!(all.len(), 1_000, "log capped at 1000 entries");
        assert_eq!(all[0].0, 101, "oldest entries evicted first");
    }
}
