#![warn(missing_docs)]

//! The four evaluation applications of the ElasticRMI paper (§5.2),
//! re-implemented on the public `elasticrmi` API:
//!
//! * [`marketcetera`] — financial order routing with two-node persistence,
//! * [`hedwig`] — topic-based publish/subscribe with hub topic ownership and
//!   at-most-once delivery,
//! * [`paxos`] — multi-instance Paxos consensus (after Kirsch & Amir's
//!   "Paxos for Systems Builders"),
//! * [`dcs`] — a distributed coordination service with a hierarchical
//!   namespace and totally ordered updates (Chubby/ZooKeeper-like).
//!
//! Each module provides the [`elasticrmi::ElasticService`] implementation
//! used by examples and integration tests, and an [`AppModel`] giving the
//! experiment harness the application's capacity characteristics (per-object
//! throughput at QoS, minimum viable pool, `Req_min` shape) — the knowledge
//! the paper's authors used to define each app's fine-grained elasticity
//! metrics.

pub mod dcs;
pub mod hedwig;
pub mod marketcetera;
pub mod model;
pub mod paxos;

pub use model::{demand_vote, AppKind, AppModel};
