//! Capacity models connecting the applications to the experiment harness.
//!
//! The SPEC agility metric needs `Req_min(i)` — "the minimum capacity needed
//! to meet an application's QoS at a given workload level" (§5.1). That is a
//! property of each *application*: how many orders/messages/rounds/updates
//! one pool member sustains while meeting its QoS, and any floor the
//! application's own protocol imposes (quorums, replication). [`AppModel`]
//! captures exactly that, for the four §5.2 applications.

use erm_sim::{derive_seed, seeded_rng};
use erm_workloads::paper;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The four applications of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppKind {
    /// Marketcetera order routing.
    Marketcetera,
    /// Hedwig topic-based publish/subscribe.
    Hedwig,
    /// Paxos consensus (Kirsch & Amir specification).
    Paxos,
    /// DCS — distributed coordination service.
    Dcs,
}

impl AppKind {
    /// All four applications, in the paper's presentation order.
    pub const ALL: [AppKind; 4] = [
        AppKind::Marketcetera,
        AppKind::Hedwig,
        AppKind::Paxos,
        AppKind::Dcs,
    ];

    /// The capacity model for this application.
    pub fn model(self) -> AppModel {
        match self {
            // Point A = 50,000 orders/s (§5.3). 2,000 orders/s per router
            // object at QoS (routing plus two-node persistence) -> 25
            // objects at peak. Orders persist on two nodes, so the pool
            // can never drop below 2.
            AppKind::Marketcetera => AppModel {
                kind: self,
                name: "Marketcetera",
                point_a: paper::MARKETCETERA_POINT_A,
                per_object_capacity: 2_000.0,
                min_objects: 2,
                req_jitter: 0.0,
            },
            // Point A = 30,000 msgs/s; 1,000 msgs/s per hub at QoS
            // (fan-out + at-most-once bookkeeping) -> 30 hubs at peak.
            // Req_min "changes more erratically ... due to the replication
            // and at-most once guarantees" (§5.5): ±12% jitter.
            AppKind::Hedwig => AppModel {
                kind: self,
                name: "Hedwig",
                point_a: paper::HEDWIG_POINT_A,
                per_object_capacity: 1_000.0,
                min_objects: 2,
                req_jitter: 0.12,
            },
            // Point A = 24,000 rounds/s; 800 rounds/s per replica at QoS
            // (two protocol phases per round). Majority quorum needs >= 3.
            AppKind::Paxos => AppModel {
                kind: self,
                name: "Paxos",
                point_a: paper::PAXOS_POINT_A,
                per_object_capacity: 800.0,
                min_objects: 3,
                req_jitter: 0.0,
            },
            // Point A = 75,000 updates/s; 2,500 updates/s per server at QoS
            // (total ordering of updates costs a shared sequencer access).
            AppKind::Dcs => AppModel {
                kind: self,
                name: "DCS",
                point_a: paper::DCS_POINT_A,
                per_object_capacity: 2_500.0,
                min_objects: 3,
                req_jitter: 0.0,
            },
        }
    }
}

impl std::fmt::Display for AppKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.model().name)
    }
}

/// An application's capacity characteristics.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AppModel {
    /// Which application this models.
    pub kind: AppKind,
    /// Display name.
    pub name: &'static str,
    /// The paper's point-A peak rate (events/second).
    pub point_a: f64,
    /// Events/second one pool member sustains while meeting QoS.
    pub per_object_capacity: f64,
    /// Protocol floor on the pool size (quorum, replication).
    pub min_objects: u32,
    /// Relative jitter of `Req_min` (Hedwig's erratic requirement).
    pub req_jitter: f64,
}

impl AppModel {
    /// `Req_min` at the given arrival rate: the minimum number of objects
    /// needed to meet QoS (§5.1). Deterministic per (model, minute) when
    /// jitter applies.
    pub fn req_min(&self, rate: f64, minute: u64) -> f64 {
        let jitter = if self.req_jitter > 0.0 {
            let mut rng = seeded_rng(derive_seed(
                u64::from(self.kind as u8),
                &format!("req-jitter-{minute}"),
            ));
            1.0 + rng.gen_range(-self.req_jitter..=self.req_jitter)
        } else {
            1.0
        };
        let needed = (rate * jitter / self.per_object_capacity).ceil();
        needed.max(f64::from(self.min_objects))
    }

    /// The number of objects needed at the pattern peak — what the
    /// overprovisioning oracle provisions.
    pub fn peak_objects(&self, peak_rate: f64) -> u32 {
        ((peak_rate * (1.0 + self.req_jitter) / self.per_object_capacity).ceil() as u32)
            .max(self.min_objects)
    }
}

/// The demand-proportional fine-grained vote the applications use in their
/// `changePoolSize()` overrides: how many objects the measured rate calls
/// for (with `headroom` as the target utilization, e.g. 0.85), relative to
/// the current size.
///
/// This is what distinguishes fine-grained elasticity in the paper: the
/// application can see *actual demand* (queue lengths, call rates) instead
/// of a saturating CPU proxy, so it can vote a multi-object change in one
/// burst interval where threshold policies step by one.
pub fn demand_vote(
    measured_rate: f64,
    per_object_capacity: f64,
    pool_size: u32,
    headroom: f64,
) -> i32 {
    assert!(per_object_capacity > 0.0 && headroom > 0.0);
    let needed = (measured_rate / (per_object_capacity * headroom)).ceil() as i64;
    let delta = needed.max(1) - i64::from(pool_size);
    delta.clamp(-4, 16) as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_a_values_match_paper() {
        assert_eq!(AppKind::Marketcetera.model().point_a, 50_000.0);
        assert_eq!(AppKind::Dcs.model().point_a, 75_000.0);
        assert_eq!(AppKind::Paxos.model().point_a, 24_000.0);
        assert_eq!(AppKind::Hedwig.model().point_a, 30_000.0);
    }

    #[test]
    fn req_min_scales_with_rate() {
        let m = AppKind::Marketcetera.model();
        assert_eq!(m.req_min(50_000.0, 0), 25.0);
        assert_eq!(m.req_min(2_001.0, 0), 2.0);
        // Floor: even near-zero load keeps the two persistence nodes.
        assert_eq!(m.req_min(1.0, 0), 2.0);
    }

    #[test]
    fn paxos_floor_is_a_quorum() {
        let m = AppKind::Paxos.model();
        assert_eq!(m.req_min(0.0, 0), 3.0);
    }

    #[test]
    fn hedwig_req_min_is_erratic_but_deterministic() {
        let m = AppKind::Hedwig.model();
        let a = m.req_min(20_000.0, 5);
        let b = m.req_min(20_000.0, 6);
        assert_eq!(a, m.req_min(20_000.0, 5), "same minute -> same value");
        // Different minutes usually differ (jitter).
        let distinct = (0..20)
            .map(|min| m.req_min(20_000.0, min).to_bits())
            .collect::<std::collections::HashSet<_>>();
        let _ = (a, b);
        assert!(
            distinct.len() > 1,
            "jitter should vary Req_min across minutes"
        );
    }

    #[test]
    fn peak_objects_covers_jittered_requirement() {
        let m = AppKind::Hedwig.model();
        let peak = m.peak_objects(36_000.0);
        for minute in 0..500 {
            assert!(
                f64::from(peak) >= m.req_min(36_000.0, minute),
                "oracle must never be short at peak"
            );
        }
    }

    #[test]
    fn demand_vote_is_proportional() {
        // 10,000 ev/s at 1,000/object and 0.8 headroom -> needs 13; at size
        // 5 the vote is +8.
        assert_eq!(demand_vote(10_000.0, 1_000.0, 5, 0.8), 8);
        // Overprovisioned pool votes negative.
        assert_eq!(demand_vote(1_000.0, 1_000.0, 8, 0.8), -4);
        // Balanced pool votes ~0.
        assert_eq!(demand_vote(4_000.0, 1_000.0, 5, 0.8), 0);
    }

    #[test]
    fn demand_vote_clamps_extremes() {
        assert_eq!(demand_vote(1_000_000.0, 100.0, 2, 0.8), 16);
        assert_eq!(demand_vote(0.0, 100.0, 50, 0.8), -4);
    }

    #[test]
    fn models_are_serializable() {
        let m = AppKind::Dcs.model();
        let bytes = erm_transport::to_bytes(&m).unwrap();
        let _ = bytes;
    }
}
