//! Multi-instance Paxos on ElasticRMI (paper §5.2), following the roles of
//! Kirsch & Amir's *Paxos for Systems Builders*.
//!
//! Each pool member is a **proposer/learner**; **acceptors** are a fixed
//! odd-sized group whose durable state (promised ballot, accepted
//! ⟨ballot, value⟩) lives in the strongly consistent shared store — the same
//! place ElasticRMI keeps all elastic-object state. Linearizable
//! compare-and-put on an acceptor's cell is exactly the "process one message
//! at a time" behaviour of an acceptor process, so the protocol logic
//! (ballot ordering, majority quorums, adopting the highest-ballot accepted
//! value) is the real thing and its safety property — all learners agree —
//! is testable under concurrency.
//!
//! Remote methods:
//!
//! * `propose(instance, value)` — run Phase 1/Phase 2 for a log instance;
//!   returns the *chosen* value, which may be an earlier proposer's
//!   (classic Paxos semantics).
//! * `propose_next(value)` — replicated-log append: finds the lowest free
//!   instance and proposes there, retrying forward until *this* value is
//!   chosen somewhere (multi-Paxos without a distinguished leader).
//! * `read_log(instance)` / `read_log_range(from, to)` — learned values.
//! * `decided_count` — how many instances this replica has learned.
//!
//! The fine-grained elasticity metric is the consensus-round rate.

use elasticrmi::{
    decode_args, encode_result, ElasticService, MethodCallStats, RemoteError, ServiceContext,
};
use serde::{Deserialize, Serialize};

use crate::model::{demand_vote, AppKind};

/// Durable acceptor state for one (instance, acceptor) pair.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AcceptorState {
    /// Highest ballot this acceptor has promised.
    pub promised: u64,
    /// Highest-ballot proposal this acceptor has accepted.
    pub accepted: Option<(u64, Vec<u8>)>,
}

/// Outcome of a `propose` call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProposeResult {
    /// The value actually chosen for the instance.
    pub chosen: Vec<u8>,
    /// Whether the chosen value is the one this call proposed.
    pub was_ours: bool,
    /// Ballot the value was chosen at.
    pub ballot: u64,
}

/// The elastic Paxos replica service.
#[derive(Debug)]
pub struct PaxosReplica {
    /// Size of the acceptor group (odd; default 3).
    acceptors: u32,
    /// Next ballot round for this proposer.
    round: u64,
    decided_here: u64,
    /// Lowest instance this replica believes may be free (advances as it
    /// observes decided slots; purely an optimization for `propose_next`).
    next_free_hint: u64,
}

impl Default for PaxosReplica {
    fn default() -> Self {
        Self::new(3)
    }
}

impl PaxosReplica {
    /// Creates a replica with an acceptor group of `acceptors` cells.
    ///
    /// # Panics
    ///
    /// Panics unless `acceptors` is odd and at least 3 (majority quorums).
    pub fn new(acceptors: u32) -> Self {
        assert!(
            acceptors >= 3 && acceptors % 2 == 1,
            "acceptor group must be odd and >= 3, got {acceptors}"
        );
        PaxosReplica {
            acceptors,
            round: 0,
            decided_here: 0,
            next_free_hint: 0,
        }
    }

    /// The elastic class name.
    pub const CLASS: &'static str = "Paxos";

    fn quorum(&self) -> u32 {
        self.acceptors / 2 + 1
    }

    fn acceptor_key(instance: u64, acceptor: u32) -> String {
        format!("paxos/acc/{instance}/{acceptor}")
    }

    fn log_key(instance: u64) -> String {
        format!("paxos/log/{instance}")
    }

    /// Atomically applies `f` to an acceptor cell (CAS retry loop) and
    /// returns `f`'s verdict together with the pre-update state.
    fn acceptor_rmw(
        ctx: &ServiceContext,
        key: &str,
        f: impl Fn(&mut AcceptorState) -> bool,
    ) -> (bool, AcceptorState) {
        loop {
            let current = ctx.store().get(key);
            let (expected, mut state) = match &current {
                Some(v) => (
                    Some(v.version),
                    erm_transport::from_bytes::<AcceptorState>(&v.value)
                        .expect("acceptor state decodes"),
                ),
                None => (None, AcceptorState::default()),
            };
            let before = state.clone();
            let granted = f(&mut state);
            let bytes = erm_transport::to_bytes(&state).expect("acceptor state encodes");
            if ctx.store().compare_and_put(key, expected, bytes).is_ok() {
                return (granted, before);
            }
        }
    }

    /// One Paxos attempt at ballot `ballot`. Returns the chosen value on
    /// success.
    fn attempt(
        &self,
        ctx: &ServiceContext,
        instance: u64,
        ballot: u64,
        value: &[u8],
    ) -> Option<(Vec<u8>, u64)> {
        // Phase 1: prepare/promise.
        let mut promises = 0u32;
        let mut best_accepted: Option<(u64, Vec<u8>)> = None;
        for a in 0..self.acceptors {
            let key = Self::acceptor_key(instance, a);
            let (granted, _) = Self::acceptor_rmw(ctx, &key, |s| {
                if ballot > s.promised {
                    s.promised = ballot;
                    true
                } else {
                    false
                }
            });
            if granted {
                promises += 1;
                // Re-read the accepted value recorded at promise time.
                if let Some(v) = ctx.store().get(&key) {
                    let s: AcceptorState =
                        erm_transport::from_bytes(&v.value).expect("acceptor state decodes");
                    if let Some((ab, av)) = s.accepted {
                        if best_accepted.as_ref().is_none_or(|(bb, _)| ab > *bb) {
                            best_accepted = Some((ab, av));
                        }
                    }
                }
            }
        }
        if promises < self.quorum() {
            return None;
        }
        // Phase 2: accept with the highest-ballot accepted value, if any
        // (the core Paxos safety rule), else our own.
        let chosen_value = best_accepted.map_or_else(|| value.to_vec(), |(_, v)| v);
        let mut accepts = 0u32;
        for a in 0..self.acceptors {
            let key = Self::acceptor_key(instance, a);
            let v = chosen_value.clone();
            let (granted, _) = Self::acceptor_rmw(ctx, &key, move |s| {
                if ballot >= s.promised {
                    s.promised = ballot;
                    s.accepted = Some((ballot, v.clone()));
                    true
                } else {
                    false
                }
            });
            if granted {
                accepts += 1;
            }
        }
        if accepts < self.quorum() {
            return None;
        }
        Some((chosen_value, ballot))
    }

    fn learn(ctx: &ServiceContext, instance: u64, value: &[u8]) {
        let key = Self::log_key(instance);
        match ctx.store().compare_and_put(&key, None, value.to_vec()) {
            Ok(_) => {}
            Err(_) => {
                // Someone learned first. Paxos safety says it must be the
                // same value; a mismatch would be a protocol violation.
                let existing = ctx.store().get(&key).expect("log entry exists");
                assert_eq!(
                    existing.value, value,
                    "Paxos safety violation: two different values learned for instance {instance}"
                );
            }
        }
    }
}

impl ElasticService for PaxosReplica {
    fn dispatch(
        &mut self,
        method: &str,
        args: &[u8],
        ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError> {
        match method {
            "propose" => {
                let (instance, value): (u64, Vec<u8>) = decode_args(method, args)?;
                // Fast path: already decided.
                if let Some(existing) = ctx.store().get(&Self::log_key(instance)) {
                    return encode_result(&ProposeResult {
                        was_ours: existing.value == value,
                        chosen: existing.value,
                        ballot: 0,
                    });
                }
                // Ballots unique per proposer: round * stride + uid.
                const STRIDE: u64 = 4096;
                for _ in 0..64 {
                    self.round += 1;
                    let ballot = self.round * STRIDE + ctx.uid() % STRIDE + 1;
                    if let Some((chosen, ballot)) = self.attempt(ctx, instance, ballot, &value) {
                        Self::learn(ctx, instance, &chosen);
                        self.decided_here += 1;
                        return encode_result(&ProposeResult {
                            was_ours: chosen == value,
                            chosen,
                            ballot,
                        });
                    }
                }
                Err(RemoteError::new(
                    "ConsensusTimeout",
                    format!("instance {instance}: no quorum after 64 ballots"),
                ))
            }
            "propose_next" => {
                let value: Vec<u8> = decode_args(method, args)?;
                // Walk the log from the lowest instance this replica has
                // not yet seen decided, proposing until our value wins one.
                let mut instance = self.next_free_hint;
                for _ in 0..4096 {
                    if let Some(existing) = ctx.store().get(&Self::log_key(instance)) {
                        let _ = existing;
                        instance += 1;
                        continue;
                    }
                    const STRIDE: u64 = 4096;
                    self.round += 1;
                    let ballot = self.round * STRIDE + ctx.uid() % STRIDE + 1;
                    if let Some((chosen, ballot)) = self.attempt(ctx, instance, ballot, &value) {
                        Self::learn(ctx, instance, &chosen);
                        self.decided_here += 1;
                        self.next_free_hint = instance;
                        if chosen == value {
                            return encode_result(&(
                                instance,
                                ProposeResult {
                                    chosen,
                                    was_ours: true,
                                    ballot,
                                },
                            ));
                        }
                        // Another proposer's value took this slot; move on.
                        instance += 1;
                    }
                    // Quorum lost: retry the same instance at a higher
                    // ballot on the next iteration.
                }
                Err(RemoteError::new(
                    "ConsensusTimeout",
                    "propose_next found no free instance in 4096 steps",
                ))
            }
            "read_log_range" => {
                let (from, to): (u64, u64) = decode_args(method, args)?;
                if to < from || to - from > 4096 {
                    return Err(RemoteError::new(
                        "IllegalArgument",
                        format!("bad range {from}..{to}"),
                    ));
                }
                let entries: Vec<Option<Vec<u8>>> = (from..to)
                    .map(|i| ctx.store().get(&Self::log_key(i)).map(|v| v.value))
                    .collect();
                encode_result(&entries)
            }
            "read_log" => {
                let instance: u64 = decode_args(method, args)?;
                let value = ctx.store().get(&Self::log_key(instance)).map(|v| v.value);
                encode_result(&value)
            }
            "decided_count" => encode_result(&self.decided_here),
            other => Err(RemoteError::no_such_method(other)),
        }
    }

    fn change_pool_size(&mut self, stats: &MethodCallStats, ctx: &mut ServiceContext) -> i32 {
        let model = AppKind::Paxos.model();
        let pool_rate = stats.rate("propose") * f64::from(ctx.pool_size().max(1));
        demand_vote(pool_rate, model.per_object_capacity, ctx.pool_size(), 1.0)
            .max(i32::try_from(model.min_objects).expect("small") - ctx.pool_size() as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erm_kvstore::{Store, StoreConfig};
    use erm_sim::VirtualClock;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    fn member(store: &Arc<Store>, uid: u64) -> (PaxosReplica, ServiceContext) {
        (
            PaxosReplica::default(),
            ServiceContext::new(
                Arc::clone(store),
                PaxosReplica::CLASS,
                uid,
                Arc::new(VirtualClock::new()),
                Arc::new(AtomicU32::new(3)),
            ),
        )
    }

    fn propose(
        replica: &mut PaxosReplica,
        ctx: &mut ServiceContext,
        instance: u64,
        value: &[u8],
    ) -> ProposeResult {
        let args = erm_transport::to_bytes(&(instance, value.to_vec())).unwrap();
        let out = replica.dispatch("propose", &args, ctx).unwrap();
        erm_transport::from_bytes(&out).unwrap()
    }

    #[test]
    fn single_proposer_decides_its_value() {
        let store = Arc::new(Store::new(StoreConfig::default()));
        let (mut r, mut ctx) = member(&store, 0);
        let res = propose(&mut r, &mut ctx, 0, b"alpha");
        assert!(res.was_ours);
        assert_eq!(res.chosen, b"alpha");
    }

    #[test]
    fn second_proposer_learns_the_decided_value() {
        let store = Arc::new(Store::new(StoreConfig::default()));
        let (mut r0, mut ctx0) = member(&store, 0);
        let (mut r1, mut ctx1) = member(&store, 1);
        let first = propose(&mut r0, &mut ctx0, 7, b"alpha");
        assert!(first.was_ours);
        let second = propose(&mut r1, &mut ctx1, 7, b"beta");
        assert!(!second.was_ours, "instance already decided");
        assert_eq!(second.chosen, b"alpha");
    }

    #[test]
    fn distinct_instances_are_independent() {
        let store = Arc::new(Store::new(StoreConfig::default()));
        let (mut r, mut ctx) = member(&store, 0);
        assert_eq!(propose(&mut r, &mut ctx, 1, b"a").chosen, b"a");
        assert_eq!(propose(&mut r, &mut ctx, 2, b"b").chosen, b"b");
    }

    #[test]
    fn read_log_reflects_decisions() {
        let store = Arc::new(Store::new(StoreConfig::default()));
        let (mut r, mut ctx) = member(&store, 0);
        let args = erm_transport::to_bytes(&3u64).unwrap();
        let before: Option<Vec<u8>> =
            erm_transport::from_bytes(&r.dispatch("read_log", &args, &mut ctx).unwrap()).unwrap();
        assert!(before.is_none());
        propose(&mut r, &mut ctx, 3, b"x");
        let after: Option<Vec<u8>> =
            erm_transport::from_bytes(&r.dispatch("read_log", &args, &mut ctx).unwrap()).unwrap();
        assert_eq!(after.unwrap(), b"x");
    }

    #[test]
    fn concurrent_proposers_agree() {
        // The safety property: many proposers race on the same instances;
        // every learner must observe a single value per instance.
        let store = Arc::new(Store::new(StoreConfig::default()));
        let mut handles = Vec::new();
        for uid in 0..4u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let (mut r, mut ctx) = member(&store, uid);
                let mut outcomes = Vec::new();
                for instance in 0..20u64 {
                    let value = format!("v-{uid}-{instance}").into_bytes();
                    let res = propose(&mut r, &mut ctx, instance, &value);
                    outcomes.push((instance, res.chosen));
                }
                outcomes
            }));
        }
        let all: Vec<Vec<(u64, Vec<u8>)>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for instance in 0..20u64 {
            let mut values: Vec<&Vec<u8>> = all
                .iter()
                .flat_map(|o| o.iter().filter(|(i, _)| *i == instance).map(|(_, v)| v))
                .collect();
            values.dedup();
            assert_eq!(
                values.len(),
                1,
                "instance {instance} decided multiple values: {values:?}"
            );
        }
    }

    #[test]
    fn ballots_are_unique_across_proposers() {
        // Two proposers with different uids never generate the same ballot.
        let b = |round: u64, uid: u64| round * 4096 + uid % 4096 + 1;
        for round in 1..50 {
            for other in 1..10 {
                assert_ne!(b(round, 0), b(round, other));
            }
        }
    }

    #[test]
    #[should_panic(expected = "odd and >= 3")]
    fn even_acceptor_group_rejected() {
        let _ = PaxosReplica::new(4);
    }

    #[test]
    fn decided_count_tracks_local_decisions() {
        let store = Arc::new(Store::new(StoreConfig::default()));
        let (mut r, mut ctx) = member(&store, 0);
        propose(&mut r, &mut ctx, 1, b"a");
        propose(&mut r, &mut ctx, 2, b"b");
        let n: u64 = erm_transport::from_bytes(
            &r.dispatch(
                "decided_count",
                &erm_transport::to_bytes(&()).unwrap(),
                &mut ctx,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(n, 2);
    }
}

#[cfg(test)]
mod log_tests {
    use super::*;
    use erm_kvstore::{Store, StoreConfig};
    use erm_sim::VirtualClock;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    fn member(store: &Arc<Store>, uid: u64) -> (PaxosReplica, ServiceContext) {
        (
            PaxosReplica::default(),
            ServiceContext::new(
                Arc::clone(store),
                PaxosReplica::CLASS,
                uid,
                Arc::new(VirtualClock::new()),
                Arc::new(AtomicU32::new(3)),
            ),
        )
    }

    fn propose_next(
        r: &mut PaxosReplica,
        ctx: &mut ServiceContext,
        value: &[u8],
    ) -> (u64, ProposeResult) {
        let out = r
            .dispatch(
                "propose_next",
                &erm_transport::to_bytes(&value.to_vec()).unwrap(),
                ctx,
            )
            .unwrap();
        erm_transport::from_bytes(&out).unwrap()
    }

    #[test]
    fn appends_take_consecutive_instances() {
        let store = Arc::new(Store::new(StoreConfig::default()));
        let (mut r, mut ctx) = member(&store, 0);
        let (i0, res0) = propose_next(&mut r, &mut ctx, b"a");
        let (i1, res1) = propose_next(&mut r, &mut ctx, b"b");
        assert!(res0.was_ours && res1.was_ours);
        assert_eq!((i0, i1), (0, 1));
    }

    #[test]
    fn concurrent_appenders_get_distinct_slots() {
        let store = Arc::new(Store::new(StoreConfig::default()));
        let mut handles = Vec::new();
        for uid in 0..4u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let (mut r, mut ctx) = member(&store, uid);
                let mut slots = Vec::new();
                for i in 0..10 {
                    let value = format!("{uid}-{i}").into_bytes();
                    let (slot, res) = propose_next(&mut r, &mut ctx, &value);
                    assert!(res.was_ours, "propose_next must persist until ours wins");
                    assert_eq!(res.chosen, value);
                    slots.push(slot);
                }
                slots
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "two appends landed in the same log slot");
        // The log is dense: 40 appends occupy instances 0..40.
        assert_eq!(*all.last().unwrap(), n as u64 - 1);
    }

    #[test]
    fn read_log_range_returns_dense_prefix() {
        let store = Arc::new(Store::new(StoreConfig::default()));
        let (mut r, mut ctx) = member(&store, 0);
        for v in [b"x".as_slice(), b"y", b"z"] {
            propose_next(&mut r, &mut ctx, v);
        }
        let out = r
            .dispatch(
                "read_log_range",
                &erm_transport::to_bytes(&(0u64, 5u64)).unwrap(),
                &mut ctx,
            )
            .unwrap();
        let entries: Vec<Option<Vec<u8>>> = erm_transport::from_bytes(&out).unwrap();
        assert_eq!(entries.len(), 5);
        assert_eq!(entries[0].as_deref(), Some(b"x".as_slice()));
        assert_eq!(entries[2].as_deref(), Some(b"z".as_slice()));
        assert!(entries[3].is_none() && entries[4].is_none());
    }

    #[test]
    fn read_log_range_validates_bounds() {
        let store = Arc::new(Store::new(StoreConfig::default()));
        let (mut r, mut ctx) = member(&store, 0);
        let err = r
            .dispatch(
                "read_log_range",
                &erm_transport::to_bytes(&(5u64, 1u64)).unwrap(),
                &mut ctx,
            )
            .unwrap_err();
        assert_eq!(err.kind, "IllegalArgument");
    }
}
