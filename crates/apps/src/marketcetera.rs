//! Marketcetera-style order routing on ElasticRMI (paper §5.2).
//!
//! "The order routing system is the component that accepts orders from
//! traders/automated strategy engines and routes them to various markets,
//! brokers and other financial intermediaries. For fault-tolerance, the
//! order is persisted (stored) on two nodes."
//!
//! Remote methods:
//!
//! * `route` — validate an [`Order`], persist it on **two** replica cells of
//!   the shared store, pick the destination venue, return a [`RouteAck`].
//! * `order_status` — look an order up by id (reads replica 0, falls back to
//!   replica 1 — the fault-tolerance path).
//! * `routed_count` — pool-wide count of routed orders.
//!
//! The elasticity management component (`change_pool_size`) votes
//! proportionally to the measured `route` rate — the application-specific
//! metric ElasticRMI lets it use instead of CPU.

use elasticrmi::{
    decode_args, encode_result, ElasticService, MethodCallStats, RemoteError, ServiceContext,
};
use serde::{Deserialize, Serialize};

use crate::model::{demand_vote, AppKind};

/// Buy or sell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Side {
    /// Buy order.
    Buy,
    /// Sell order.
    Sell,
}

/// A trading order submitted for routing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Order {
    /// Client-assigned order id (unique per trading session).
    pub id: u64,
    /// Ticker symbol, e.g. `"HPQ"`.
    pub symbol: String,
    /// Buy or sell.
    pub side: Side,
    /// Quantity of shares; must be positive.
    pub quantity: u32,
    /// Limit price in cents; `None` = market order.
    pub limit_cents: Option<u64>,
}

/// Acknowledgement returned by `route`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteAck {
    /// The order id.
    pub order_id: u64,
    /// The venue the order was routed to.
    pub venue: String,
    /// Which pool member routed it.
    pub routed_by: u64,
}

/// The venues orders are routed to, selected by symbol hash (a stand-in for
/// Marketcetera's routing tables).
const VENUES: [&str; 4] = ["NYSE", "NASDAQ", "BATS", "ARCA"];

/// A deterministic stream of plausible orders — the stand-in for the
/// "simulator included in the community edition of Marketcetera" the paper
/// uses as its workload source (§5.2).
#[derive(Debug, Clone)]
pub struct OrderStream {
    rng: rand::rngs::StdRng,
    next_id: u64,
}

impl OrderStream {
    /// Symbols traded, with hotter names earlier (picked zipf-ishly).
    pub const SYMBOLS: [&'static str; 8] =
        ["HPQ", "AAPL", "MSFT", "IBM", "ORCL", "INTC", "CSCO", "DELL"];

    /// Creates a stream seeded by `seed`; ids start at `id_base` so multiple
    /// traders produce disjoint id ranges.
    pub fn new(seed: u64, id_base: u64) -> Self {
        OrderStream {
            rng: erm_sim::seeded_rng(erm_sim::derive_seed(seed, "orders")),
            next_id: id_base,
        }
    }

    /// The next order.
    pub fn next_order(&mut self) -> Order {
        use rand::Rng;
        let id = self.next_id;
        self.next_id += 1;
        // Zipf-ish symbol choice: square the uniform draw so low indices
        // (hot symbols) dominate.
        let u: f64 = self.rng.gen();
        let idx = ((u * u) * Self::SYMBOLS.len() as f64) as usize;
        Order {
            id,
            symbol: Self::SYMBOLS[idx.min(Self::SYMBOLS.len() - 1)].to_string(),
            side: if self.rng.gen() {
                Side::Buy
            } else {
                Side::Sell
            },
            quantity: self.rng.gen_range(1..=1_000),
            limit_cents: if self.rng.gen_range(0..4) == 0 {
                None // market order
            } else {
                Some(self.rng.gen_range(100..=100_000))
            },
        }
    }
}

impl Iterator for OrderStream {
    type Item = Order;

    fn next(&mut self) -> Option<Order> {
        Some(self.next_order())
    }
}

/// The elastic order-routing service.
#[derive(Debug, Default)]
pub struct OrderRouter {
    /// Orders this member routed (member-local; the pool-wide count lives in
    /// the shared store).
    routed_here: u64,
}

impl OrderRouter {
    /// Creates a router.
    pub fn new() -> Self {
        Self::default()
    }

    /// The elastic class name (shared-state key prefix).
    pub const CLASS: &'static str = "OrderRouter";

    fn validate(order: &Order) -> Result<(), RemoteError> {
        if order.symbol.is_empty() || order.symbol.len() > 8 {
            return Err(RemoteError::new(
                "InvalidOrder",
                format!("bad symbol {:?}", order.symbol),
            ));
        }
        if order.quantity == 0 {
            return Err(RemoteError::new("InvalidOrder", "zero quantity"));
        }
        if order.limit_cents == Some(0) {
            return Err(RemoteError::new("InvalidOrder", "zero limit price"));
        }
        Ok(())
    }

    fn venue_for(symbol: &str) -> &'static str {
        let h: u64 = symbol
            .bytes()
            .fold(5381u64, |h, b| h.wrapping_mul(33) ^ u64::from(b));
        VENUES[(h % VENUES.len() as u64) as usize]
    }

    fn replica_key(order_id: u64, replica: u8) -> String {
        format!("order/{order_id}/r{replica}")
    }
}

impl ElasticService for OrderRouter {
    fn dispatch(
        &mut self,
        method: &str,
        args: &[u8],
        ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError> {
        match method {
            "route" => {
                let order: Order = decode_args(method, args)?;
                Self::validate(&order)?;
                let encoded = erm_transport::to_bytes(&order)
                    .map_err(|e| RemoteError::new("MarshalFailure", e.to_string()))?;
                // Persist on two nodes (paper: "the order is persisted on
                // two nodes") before acknowledging.
                for replica in 0..2u8 {
                    ctx.store()
                        .put(&Self::replica_key(order.id, replica), encoded.clone());
                }
                ctx.shared::<u64>("routed_total").update(|| 0, |n| *n += 1);
                self.routed_here += 1;
                encode_result(&RouteAck {
                    order_id: order.id,
                    venue: Self::venue_for(&order.symbol).to_string(),
                    routed_by: ctx.uid(),
                })
            }
            "order_status" => {
                let order_id: u64 = decode_args(method, args)?;
                // Primary replica, then the fault-tolerance copy.
                let found = ctx
                    .store()
                    .get(&Self::replica_key(order_id, 0))
                    .or_else(|| ctx.store().get(&Self::replica_key(order_id, 1)));
                let order: Option<Order> = match found {
                    Some(v) => Some(
                        erm_transport::from_bytes(&v.value)
                            .map_err(|e| RemoteError::new("CorruptOrder", e.to_string()))?,
                    ),
                    None => None,
                };
                encode_result(&order)
            }
            "routed_count" => {
                let n = ctx.shared::<u64>("routed_total").get().unwrap_or(0);
                encode_result(&n)
            }
            other => Err(RemoteError::no_such_method(other)),
        }
    }

    fn change_pool_size(&mut self, stats: &MethodCallStats, ctx: &mut ServiceContext) -> i32 {
        let model = AppKind::Marketcetera.model();
        // The member sees its own share of the workload; scale to the pool.
        let pool_rate = stats.rate("route") * f64::from(ctx.pool_size().max(1));
        demand_vote(pool_rate, model.per_object_capacity, ctx.pool_size(), 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erm_kvstore::{Store, StoreConfig};
    use erm_sim::{SimDuration, VirtualClock};
    use std::collections::HashMap;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    fn ctx(pool_size: u32) -> ServiceContext {
        ServiceContext::new(
            Arc::new(Store::new(StoreConfig::default())),
            OrderRouter::CLASS,
            0,
            Arc::new(VirtualClock::new()),
            Arc::new(AtomicU32::new(pool_size)),
        )
    }

    fn order(id: u64) -> Order {
        Order {
            id,
            symbol: "HPQ".into(),
            side: Side::Buy,
            quantity: 100,
            limit_cents: Some(2_350),
        }
    }

    fn call<A: serde::Serialize, R: serde::de::DeserializeOwned>(
        svc: &mut OrderRouter,
        ctx: &mut ServiceContext,
        method: &str,
        args: &A,
    ) -> Result<R, RemoteError> {
        let bytes = svc.dispatch(method, &erm_transport::to_bytes(args).unwrap(), ctx)?;
        Ok(erm_transport::from_bytes(&bytes).unwrap())
    }

    #[test]
    fn routes_valid_orders() {
        let mut svc = OrderRouter::new();
        let mut c = ctx(3);
        let ack: RouteAck = call(&mut svc, &mut c, "route", &order(1)).unwrap();
        assert_eq!(ack.order_id, 1);
        assert!(VENUES.contains(&ack.venue.as_str()));
    }

    #[test]
    fn persists_on_two_nodes() {
        let mut svc = OrderRouter::new();
        let mut c = ctx(3);
        let _: RouteAck = call(&mut svc, &mut c, "route", &order(7)).unwrap();
        assert!(c.store().get("order/7/r0").is_some());
        assert!(c.store().get("order/7/r1").is_some());
    }

    #[test]
    fn status_survives_primary_replica_loss() {
        let mut svc = OrderRouter::new();
        let mut c = ctx(3);
        let _: RouteAck = call(&mut svc, &mut c, "route", &order(9)).unwrap();
        // Simulate losing the primary replica's node.
        assert!(c.store().delete("order/9/r0"));
        let found: Option<Order> = call(&mut svc, &mut c, "order_status", &9u64).unwrap();
        assert_eq!(found.unwrap().id, 9);
    }

    #[test]
    fn unknown_order_status_is_none() {
        let mut svc = OrderRouter::new();
        let mut c = ctx(3);
        let found: Option<Order> = call(&mut svc, &mut c, "order_status", &404u64).unwrap();
        assert!(found.is_none());
    }

    #[test]
    fn rejects_invalid_orders() {
        let mut svc = OrderRouter::new();
        let mut c = ctx(3);
        let mut bad = order(1);
        bad.quantity = 0;
        let err = call::<_, RouteAck>(&mut svc, &mut c, "route", &bad).unwrap_err();
        assert_eq!(err.kind, "InvalidOrder");
        let mut bad = order(2);
        bad.symbol = String::new();
        assert!(call::<_, RouteAck>(&mut svc, &mut c, "route", &bad).is_err());
        let mut bad = order(3);
        bad.limit_cents = Some(0);
        assert!(call::<_, RouteAck>(&mut svc, &mut c, "route", &bad).is_err());
    }

    #[test]
    fn routed_count_is_pool_wide() {
        let store = Arc::new(Store::new(StoreConfig::default()));
        let clock = Arc::new(VirtualClock::new());
        let size = Arc::new(AtomicU32::new(2));
        let mut c1 = ServiceContext::new(
            Arc::clone(&store),
            OrderRouter::CLASS,
            0,
            clock.clone(),
            Arc::clone(&size),
        );
        let mut c2 = ServiceContext::new(store, OrderRouter::CLASS, 1, clock, size);
        let mut a = OrderRouter::new();
        let mut b = OrderRouter::new();
        let _: RouteAck = call(&mut a, &mut c1, "route", &order(1)).unwrap();
        let _: RouteAck = call(&mut b, &mut c2, "route", &order(2)).unwrap();
        let n: u64 = call(&mut a, &mut c1, "routed_count", &()).unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn venue_choice_is_stable_per_symbol() {
        assert_eq!(OrderRouter::venue_for("HPQ"), OrderRouter::venue_for("HPQ"));
    }

    #[test]
    fn fine_vote_tracks_demand() {
        let mut svc = OrderRouter::new();
        let mut c = ctx(5);
        // 36,000 route calls over 60 s = 600/s per member; at pool size 5
        // the pool rate is 3,000/s; at 2,000/object that
        // needs ceil(1.5) = 2 objects -> vote -3.
        let mut methods = HashMap::new();
        methods.insert(
            "route".to_string(),
            elasticrmi::MethodStat {
                calls: 36_000,
                mean_latency_us: 100,
            },
        );
        let stats = MethodCallStats::new(SimDuration::from_secs(60), methods);
        assert_eq!(svc.change_pool_size(&stats, &mut c), -3);
        // A hot pool votes to grow by several at once.
        let mut methods = HashMap::new();
        methods.insert(
            "route".to_string(),
            elasticrmi::MethodStat {
                calls: 600_000,
                mean_latency_us: 100,
            },
        );
        let stats = MethodCallStats::new(SimDuration::from_secs(60), methods);
        assert!(svc.change_pool_size(&stats, &mut c) > 1);
    }

    #[test]
    fn order_stream_is_deterministic_and_valid() {
        let a: Vec<Order> = OrderStream::new(7, 0).take(100).collect();
        let b: Vec<Order> = OrderStream::new(7, 0).take(100).collect();
        assert_eq!(a, b);
        let mut svc = OrderRouter::new();
        let mut c = ctx(3);
        for order in &a {
            // Every generated order passes validation and routes.
            let ack: RouteAck = call(&mut svc, &mut c, "route", order).unwrap();
            assert_eq!(ack.order_id, order.id);
        }
    }

    #[test]
    fn order_stream_ids_are_disjoint_per_trader() {
        let a: Vec<u64> = OrderStream::new(1, 0).take(50).map(|o| o.id).collect();
        let b: Vec<u64> = OrderStream::new(1, 1_000).take(50).map(|o| o.id).collect();
        assert!(a.iter().all(|id| *id < 1_000));
        assert!(b.iter().all(|id| *id >= 1_000));
    }

    #[test]
    fn order_stream_prefers_hot_symbols() {
        let orders: Vec<Order> = OrderStream::new(3, 0).take(2_000).collect();
        let hot = orders.iter().filter(|o| o.symbol == "HPQ").count();
        let cold = orders.iter().filter(|o| o.symbol == "DELL").count();
        assert!(
            hot > cold * 2,
            "zipf-ish skew expected: hot {hot} vs cold {cold}"
        );
    }

    #[test]
    fn unknown_method_errors() {
        let mut svc = OrderRouter::new();
        let mut c = ctx(2);
        let err = svc.dispatch("frobnicate", &[], &mut c).unwrap_err();
        assert_eq!(err.kind, "NoSuchMethod");
    }
}
