//! Hedwig-style topic-based publish/subscribe on ElasticRMI (paper §5.2).
//!
//! "Hedwig is a topic-based publish-subscribe system designed for reliable
//! and guaranteed at-most once delivery of messages from publishers to
//! subscribers. Clients are associated with a Hedwig instance (region),
//! which consists of a number of servers called hubs. The hubs partition the
//! topic ownership among themselves, and all publishes and subscribes to a
//! topic must be done to its owning hub."
//!
//! Remote methods:
//!
//! * `subscribe(topic, subscriber)` / `unsubscribe(topic, subscriber)`,
//! * `publish(topic, payload)` — claims topic ownership for the handling hub
//!   on first publish, appends the message to each subscriber's inbox,
//! * `fetch(subscriber)` — drains the subscriber's inbox (**at-most-once**:
//!   messages are removed before they are returned; a crashed fetch loses
//!   them rather than redelivering),
//! * `topic_owner(topic)` — which hub uid owns the topic.
//!
//! Topic ownership, subscription sets and inboxes all live in the shared
//! store, so any hub can serve any call while ownership bookkeeping stays
//! consistent.

use elasticrmi::{
    decode_args, encode_result, ElasticService, MethodCallStats, RemoteError, ServiceContext,
};
use serde::{Deserialize, Serialize};

use crate::model::{demand_vote, AppKind};

/// A published message as delivered to subscribers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delivery {
    /// The topic the message was published to.
    pub topic: String,
    /// Publisher-supplied payload.
    pub payload: Vec<u8>,
    /// Per-topic sequence number (1-based, gap-free per topic).
    pub seq: u64,
}

/// The elastic pub/sub hub service.
#[derive(Debug, Default)]
pub struct Hub {
    published_here: u64,
}

impl Hub {
    /// Creates a hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// The elastic class name.
    pub const CLASS: &'static str = "HedwigHub";

    fn validate_topic(topic: &str) -> Result<(), RemoteError> {
        if topic.is_empty() || topic.len() > 128 {
            return Err(RemoteError::new("InvalidTopic", format!("{topic:?}")));
        }
        Ok(())
    }

    fn subs_field(ctx: &ServiceContext, topic: &str) -> elasticrmi::SharedField<Vec<String>> {
        ctx.shared(&format!("subs/{topic}"))
    }

    fn inbox_field(
        ctx: &ServiceContext,
        subscriber: &str,
    ) -> elasticrmi::SharedField<Vec<Delivery>> {
        ctx.shared(&format!("inbox/{subscriber}"))
    }

    fn owner_field(ctx: &ServiceContext, topic: &str) -> elasticrmi::SharedField<u64> {
        ctx.shared(&format!("owner/{topic}"))
    }

    fn seq_field(ctx: &ServiceContext, topic: &str) -> elasticrmi::SharedField<u64> {
        ctx.shared(&format!("seq/{topic}"))
    }
}

impl ElasticService for Hub {
    fn dispatch(
        &mut self,
        method: &str,
        args: &[u8],
        ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError> {
        match method {
            "subscribe" => {
                let (topic, subscriber): (String, String) = decode_args(method, args)?;
                Self::validate_topic(&topic)?;
                let added = Self::subs_field(ctx, &topic).update(Vec::new, |subs| {
                    if subs.contains(&subscriber) {
                        false
                    } else {
                        subs.push(subscriber.clone());
                        true
                    }
                });
                encode_result(&added)
            }
            "unsubscribe" => {
                let (topic, subscriber): (String, String) = decode_args(method, args)?;
                let removed = Self::subs_field(ctx, &topic).update(Vec::new, |subs| {
                    let before = subs.len();
                    subs.retain(|s| s != &subscriber);
                    before != subs.len()
                });
                encode_result(&removed)
            }
            "publish" => {
                let (topic, payload): (String, Vec<u8>) = decode_args(method, args)?;
                Self::validate_topic(&topic)?;
                // Hubs partition topic ownership: first publish claims it.
                let me = ctx.uid();
                Self::owner_field(ctx, &topic).update(|| me, |_| ());
                let seq = Self::seq_field(ctx, &topic).update(
                    || 0,
                    |s| {
                        *s += 1;
                        *s
                    },
                );
                let delivery = Delivery {
                    topic: topic.clone(),
                    payload,
                    seq,
                };
                let subscribers = Self::subs_field(ctx, &topic).get().unwrap_or_default();
                for sub in &subscribers {
                    Self::inbox_field(ctx, sub).update(Vec::new, |inbox| {
                        inbox.push(delivery.clone());
                    });
                }
                self.published_here += 1;
                encode_result(&(seq, subscribers.len() as u32))
            }
            "fetch" => {
                let subscriber: String = decode_args(method, args)?;
                // At-most-once: take the messages out atomically; they are
                // never redelivered even if this response is lost.
                let drained = Self::inbox_field(ctx, &subscriber).update(Vec::new, std::mem::take);
                encode_result(&drained)
            }
            "topic_owner" => {
                let topic: String = decode_args(method, args)?;
                encode_result(&Self::owner_field(ctx, &topic).get())
            }
            other => Err(RemoteError::no_such_method(other)),
        }
    }

    fn change_pool_size(&mut self, stats: &MethodCallStats, ctx: &mut ServiceContext) -> i32 {
        let model = AppKind::Hedwig.model();
        let pool_rate =
            (stats.rate("publish") + stats.rate("fetch")) * f64::from(ctx.pool_size().max(1));
        demand_vote(pool_rate, model.per_object_capacity, ctx.pool_size(), 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erm_kvstore::{Store, StoreConfig};
    use erm_sim::VirtualClock;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    struct Pool {
        store: Arc<Store>,
        clock: Arc<VirtualClock>,
        size: Arc<AtomicU32>,
    }

    impl Pool {
        fn new(size: u32) -> Self {
            Pool {
                store: Arc::new(Store::new(StoreConfig::default())),
                clock: Arc::new(VirtualClock::new()),
                size: Arc::new(AtomicU32::new(size)),
            }
        }

        fn member(&self, uid: u64) -> (Hub, ServiceContext) {
            (
                Hub::new(),
                ServiceContext::new(
                    Arc::clone(&self.store),
                    Hub::CLASS,
                    uid,
                    self.clock.clone(),
                    Arc::clone(&self.size),
                ),
            )
        }
    }

    fn call<A: serde::Serialize, R: serde::de::DeserializeOwned>(
        hub: &mut Hub,
        ctx: &mut ServiceContext,
        method: &str,
        args: &A,
    ) -> Result<R, RemoteError> {
        let bytes = hub.dispatch(method, &erm_transport::to_bytes(args).unwrap(), ctx)?;
        Ok(erm_transport::from_bytes(&bytes).unwrap())
    }

    #[test]
    fn publish_delivers_to_subscribers() {
        let pool = Pool::new(2);
        let (mut hub, mut ctx) = pool.member(0);
        let _: bool = call(&mut hub, &mut ctx, "subscribe", &("news", "alice")).unwrap();
        let _: (u64, u32) =
            call(&mut hub, &mut ctx, "publish", &("news", b"hello".to_vec())).unwrap();
        let got: Vec<Delivery> = call(&mut hub, &mut ctx, "fetch", &"alice").unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, b"hello");
        assert_eq!(got[0].seq, 1);
    }

    #[test]
    fn at_most_once_delivery() {
        let pool = Pool::new(2);
        let (mut hub, mut ctx) = pool.member(0);
        let _: bool = call(&mut hub, &mut ctx, "subscribe", &("t", "bob")).unwrap();
        let _: (u64, u32) = call(&mut hub, &mut ctx, "publish", &("t", vec![1u8])).unwrap();
        let first: Vec<Delivery> = call(&mut hub, &mut ctx, "fetch", &"bob").unwrap();
        assert_eq!(first.len(), 1);
        // Fetching again returns nothing: the message is gone forever.
        let second: Vec<Delivery> = call(&mut hub, &mut ctx, "fetch", &"bob").unwrap();
        assert!(second.is_empty());
    }

    #[test]
    fn sequence_numbers_are_gap_free_per_topic() {
        let pool = Pool::new(2);
        let (mut hub, mut ctx) = pool.member(0);
        let _: bool = call(&mut hub, &mut ctx, "subscribe", &("t", "sub")).unwrap();
        for expect in 1..=5u64 {
            let (seq, _): (u64, u32) =
                call(&mut hub, &mut ctx, "publish", &("t", Vec::<u8>::new())).unwrap();
            assert_eq!(seq, expect);
        }
        let msgs: Vec<Delivery> = call(&mut hub, &mut ctx, "fetch", &"sub").unwrap();
        let seqs: Vec<u64> = msgs.iter().map(|m| m.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn first_publisher_hub_owns_the_topic() {
        let pool = Pool::new(2);
        let (mut hub0, mut ctx0) = pool.member(0);
        let (mut hub1, mut ctx1) = pool.member(1);
        let _: (u64, u32) =
            call(&mut hub1, &mut ctx1, "publish", &("t", Vec::<u8>::new())).unwrap();
        // Ownership claimed by hub 1; a later publish through hub 0 does not
        // steal it.
        let _: (u64, u32) =
            call(&mut hub0, &mut ctx0, "publish", &("t", Vec::<u8>::new())).unwrap();
        let owner: Option<u64> = call(&mut hub0, &mut ctx0, "topic_owner", &"t").unwrap();
        assert_eq!(owner, Some(1));
    }

    #[test]
    fn cross_hub_delivery() {
        // Subscribe through one hub, publish through another: the shared
        // store makes the pool act as one system.
        let pool = Pool::new(2);
        let (mut hub0, mut ctx0) = pool.member(0);
        let (mut hub1, mut ctx1) = pool.member(1);
        let _: bool = call(&mut hub0, &mut ctx0, "subscribe", &("t", "carol")).unwrap();
        let _: (u64, u32) = call(&mut hub1, &mut ctx1, "publish", &("t", vec![9u8])).unwrap();
        let got: Vec<Delivery> = call(&mut hub0, &mut ctx0, "fetch", &"carol").unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn duplicate_subscribe_is_idempotent() {
        let pool = Pool::new(2);
        let (mut hub, mut ctx) = pool.member(0);
        let added: bool = call(&mut hub, &mut ctx, "subscribe", &("t", "dave")).unwrap();
        assert!(added);
        let again: bool = call(&mut hub, &mut ctx, "subscribe", &("t", "dave")).unwrap();
        assert!(!again);
        let _: (u64, u32) = call(&mut hub, &mut ctx, "publish", &("t", Vec::<u8>::new())).unwrap();
        let got: Vec<Delivery> = call(&mut hub, &mut ctx, "fetch", &"dave").unwrap();
        assert_eq!(got.len(), 1, "no duplicate delivery");
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let pool = Pool::new(2);
        let (mut hub, mut ctx) = pool.member(0);
        let _: bool = call(&mut hub, &mut ctx, "subscribe", &("t", "erin")).unwrap();
        let removed: bool = call(&mut hub, &mut ctx, "unsubscribe", &("t", "erin")).unwrap();
        assert!(removed);
        let _: (u64, u32) = call(&mut hub, &mut ctx, "publish", &("t", Vec::<u8>::new())).unwrap();
        let got: Vec<Delivery> = call(&mut hub, &mut ctx, "fetch", &"erin").unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn invalid_topic_rejected() {
        let pool = Pool::new(2);
        let (mut hub, mut ctx) = pool.member(0);
        let err =
            call::<_, (u64, u32)>(&mut hub, &mut ctx, "publish", &("", vec![1u8])).unwrap_err();
        assert_eq!(err.kind, "InvalidTopic");
    }

    #[test]
    fn publish_without_subscribers_succeeds() {
        let pool = Pool::new(2);
        let (mut hub, mut ctx) = pool.member(0);
        let (seq, fanout): (u64, u32) =
            call(&mut hub, &mut ctx, "publish", &("lonely", Vec::<u8>::new())).unwrap();
        assert_eq!((seq, fanout), (1, 0));
    }
}
