//! Open-loop load generation over the pipelined stub engine.
//!
//! The closed-loop baseline in [`crate::sockets`] measures the *client*:
//! each thread waits for a round trip before offering the next invocation,
//! so measured throughput saturates on RTT long before the middleware
//! does. An open-loop generator injects at a configured arrival rate
//! regardless of completions — the paper's evaluation shape — so sweeping
//! the offered rate exposes the knee where the pool stops keeping up,
//! and member-count scaling shows as knee position, not RTT noise.
//!
//! Mechanics: one generator per cell owns a pipelined [`Stub`], paces
//! arrivals on the injected clock with catch-up (a late wakeup injects the
//! backlog, it does not silently stretch the schedule), sheds arrivals
//! when `max_in_flight` is reached (an open-loop client with a bounded
//! buffer — sheds are reported, never hidden), and harvests completions in
//! bulk via [`Stub::drain_completed`]. Setting the stub's reply timeout
//! equal to the invocation budget makes every invocation exactly one wire
//! attempt plus protocol-driven failovers (redirect/overload replies), so
//! terminal-outcome accounting stays one-to-one with injections.
//!
//! Honesty note for capacity numbers: the service body *sleeps* (2 ms per
//! `work` call in the grid) rather than spinning, so a pool of 8 members
//! has 8x the capacity of one member even on a single-core container —
//! member-count scaling is real concurrency in the middleware, not a
//! CPU-count artifact. The zero-service `echo` cells and the raw-socket
//! comparison measure the data path itself and *are* core-bound.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use elasticrmi::{ClientLb, RmiError, Stub};
use erm_sim::{SharedClock, SimDuration, SimTime, SystemClock};

use crate::sockets::{Fabric, Outcomes, ServerSide, TransportKind};

/// One open-loop measurement cell.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Byte-moving substrate.
    pub kind: TransportKind,
    /// Pool size (pinned; 1 = standalone skeleton, the plain-RMI shape).
    pub members: u32,
    /// Target arrival rate, invocations per second. `0` means saturation
    /// mode: keep `max_in_flight` invocations outstanding at all times.
    pub offered_rps: u64,
    /// Injection window on the injected clock (drain time is extra).
    pub duration: SimDuration,
    /// Per-`work`-invocation service sleep on the member thread.
    pub service: std::time::Duration,
    /// Seed for the stub's load-balancing RNG.
    pub seed: u64,
    /// Outstanding-invocation cap; arrivals beyond it are shed (counted).
    pub max_in_flight: usize,
    /// End-to-end invocation budget; also the reply timeout, so each
    /// injection is a single wire attempt and accounting stays exact.
    pub budget: SimDuration,
}

/// Result of one open-loop cell: conservation-checked terminal accounting
/// plus the completion rate and ok-latency tail.
#[derive(Debug, Clone)]
pub struct OpenLoopPoint {
    /// Substrate the bytes travelled over.
    pub transport: TransportKind,
    /// Pool size (1 = standalone skeleton).
    pub members: u32,
    /// Configured arrival rate (0 = saturation mode).
    pub offered_rps: u64,
    /// Injection-window length actually observed, seconds.
    pub seconds: f64,
    /// Extra time after the injection window until the last begun
    /// invocation terminated, seconds.
    pub drain_seconds: f64,
    /// Invocations actually begun (sheds excluded).
    pub injected: u64,
    /// Arrivals dropped because `max_in_flight` was reached.
    pub shed: u64,
    /// Terminal outcome of every injected invocation.
    pub outcomes: Outcomes,
    /// `injected - outcomes.total()`: must be zero.
    pub lost: u64,
    /// Completed-ok invocations per second over the *whole* run —
    /// injection window plus drain — so a backlogged cell's plateau lands
    /// at true capacity instead of being inflated by drain completions.
    pub completed_rps: f64,
    /// Median ok-latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile ok-latency, microseconds.
    pub p99_us: u64,
    /// Largest outstanding-invocation count observed.
    pub in_flight_peak: usize,
}

/// Runs one open-loop cell: spin up the serving side, inject for
/// `config.duration`, then drain until every begun invocation reaches a
/// terminal outcome (bounded by the budget plus slack — an invocation
/// that outlives the drain is reported as lost, never silently dropped).
pub fn run_open_loop(config: &OpenLoopConfig) -> OpenLoopPoint {
    let fabric = Fabric::new(config.kind);
    let clock: SharedClock = Arc::new(SystemClock::new());
    let server = ServerSide::spawn(&fabric, config.kind, config.members, &clock, config.service);
    let sentinel = server.sentinel();

    let net = fabric.client_net();
    let (ep, mailbox) = fabric.client_host().open();
    let mut stub = Stub::connect(
        net,
        ep,
        mailbox,
        sentinel,
        ClientLb::Random { seed: config.seed },
        Arc::clone(&clock),
    )
    .expect("open-loop stub connects");
    stub.set_reply_timeout(config.budget);
    stub.set_invocation_budget(config.budget);

    let mut injected = 0u64;
    let mut shed = 0u64;
    let mut outcomes = Outcomes::default();
    let mut latencies_us: Vec<u64> = Vec::new();
    let mut begun: HashMap<u64, SimTime> = HashMap::new();
    let mut in_flight_peak = 0usize;
    let mut n = 0u64;

    let begin_one = |stub: &mut Stub,
                     now: SimTime,
                     n: &mut u64,
                     injected: &mut u64,
                     outcomes: &mut Outcomes,
                     begun: &mut HashMap<u64, SimTime>| {
        *injected += 1;
        match stub.invoke_begin("work", n) {
            Ok(id) => {
                begun.insert(id, now);
            }
            Err(e) => outcomes.add(&Err::<u64, RmiError>(e)),
        }
        *n += 1;
    };
    let harvest = |stub: &mut Stub,
                   outcomes: &mut Outcomes,
                   begun: &mut HashMap<u64, SimTime>,
                   latencies_us: &mut Vec<u64>|
     -> usize {
        let done = stub.drain_completed();
        let harvested = done.len();
        let now = clock.now();
        for (id, result) in done {
            if result.is_ok() {
                if let Some(at) = begun.get(&id) {
                    latencies_us.push(now.saturating_since(*at).as_micros());
                }
            }
            begun.remove(&id);
            outcomes.add(&result);
        }
        harvested
    };

    let t0 = clock.now();
    let end = t0 + config.duration;
    if config.offered_rps == 0 {
        // Saturation mode: keep the window full, harvest as fast as the
        // pool completes. This measures the data-path ceiling.
        while clock.now() < end {
            let now = clock.now();
            while stub.in_flight() < config.max_in_flight {
                begin_one(
                    &mut stub,
                    now,
                    &mut n,
                    &mut injected,
                    &mut outcomes,
                    &mut begun,
                );
            }
            in_flight_peak = in_flight_peak.max(stub.in_flight());
            if harvest(&mut stub, &mut outcomes, &mut begun, &mut latencies_us) == 0 {
                std::thread::yield_now();
            }
        }
    } else {
        let interval = SimDuration::from_micros(1_000_000 / config.offered_rps.max(1));
        let mut next = t0;
        while clock.now() < end {
            let now = clock.now();
            // Catch-up pacing: a late wakeup injects the arrivals the
            // schedule owed, keeping the offered rate honest.
            while next <= now {
                if stub.in_flight() >= config.max_in_flight {
                    shed += 1;
                } else {
                    begin_one(
                        &mut stub,
                        now,
                        &mut n,
                        &mut injected,
                        &mut outcomes,
                        &mut begun,
                    );
                }
                next += interval;
            }
            in_flight_peak = in_flight_peak.max(stub.in_flight());
            harvest(&mut stub, &mut outcomes, &mut begun, &mut latencies_us);
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }
    let seconds = clock.now().saturating_since(t0).as_micros() as f64 / 1_000_000.0;

    // Drain: everything begun must terminate — a reply, a protocol error,
    // or its own budget expiry. The wall deadline is budget plus slack;
    // anything still outstanding after that shows up as `lost`.
    let drain_started = clock.now();
    let drain_deadline = std::time::Instant::now()
        + std::time::Duration::from_micros(config.budget.as_micros())
        + std::time::Duration::from_secs(2);
    while stub.in_flight() > 0 && std::time::Instant::now() < drain_deadline {
        if harvest(&mut stub, &mut outcomes, &mut begun, &mut latencies_us) == 0 {
            std::thread::sleep(std::time::Duration::from_micros(500));
        }
    }
    harvest(&mut stub, &mut outcomes, &mut begun, &mut latencies_us);
    let drain_seconds =
        clock.now().saturating_since(drain_started).as_micros() as f64 / 1_000_000.0;

    drop(stub);
    server.shutdown();
    fabric.shutdown();

    latencies_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies_us.is_empty() {
            0
        } else {
            latencies_us[((latencies_us.len() - 1) as f64 * p) as usize]
        }
    };
    OpenLoopPoint {
        transport: config.kind,
        members: config.members,
        offered_rps: config.offered_rps,
        seconds,
        drain_seconds,
        injected,
        shed,
        outcomes,
        lost: injected - outcomes.total(),
        completed_rps: if seconds + drain_seconds > 0.0 {
            outcomes.ok as f64 / (seconds + drain_seconds)
        } else {
            0.0
        },
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        in_flight_peak,
    }
}

/// Pipelined raw-socket echo over TCP loopback: 32-byte messages, a primed
/// window of `window` outstanding messages, and — deliberately — one
/// `read`/`write` pair *per message* on both sides, the per-message syscall
/// discipline an un-batched RMI peer pays. (A bulk-read variant measures
/// loopback memcpy bandwidth, tens of millions of "messages" per second,
/// and says nothing about a framed request/response path.) This is the
/// honest baseline the full stack's TCP echo cells are compared against:
/// "within 2–3x of raw sockets", not "fast in a vacuum".
pub fn run_raw_socket_echo(duration: std::time::Duration, window: usize) -> f64 {
    const MSG: usize = 32;
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind raw echo server");
    let addr = listener.local_addr().expect("raw echo addr");
    let server = std::thread::spawn(move || {
        let Ok((mut s, _)) = listener.accept() else {
            return;
        };
        let _ = s.set_nodelay(true);
        let mut msg = [0u8; MSG];
        loop {
            if s.read_exact(&mut msg).is_err() || s.write_all(&msg).is_err() {
                break;
            }
        }
    });

    let mut c = TcpStream::connect(addr).expect("connect raw echo");
    let _ = c.set_nodelay(true);
    let start = std::time::Instant::now();
    let prime = vec![0x5au8; MSG * window];
    c.write_all(&prime).expect("prime echo window");
    let mut echoed = 0u64;
    let mut msg = [0u8; MSG];
    while start.elapsed() < duration {
        if c.read_exact(&mut msg).is_err() {
            break;
        }
        echoed += 1;
        if c.write_all(&msg).is_err() {
            break;
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    drop(c);
    let _ = server.join();
    if seconds > 0.0 {
        echoed as f64 / seconds
    } else {
        0.0
    }
}

/// Member counts swept by the open-loop grid.
pub const OPEN_LOOP_MEMBER_COUNTS: [u32; 3] = [1, 4, 8];

/// Per-`work` service sleep in the knee sweep: 2 ms, so one member caps at
/// ~500 inv/s and member-count scaling is honest even on one core.
pub const OPEN_LOOP_SERVICE: std::time::Duration = std::time::Duration::from_millis(2);

/// The full open-loop result set behind `BENCH_throughput.json`.
#[derive(Debug, Clone)]
pub struct OpenLoopGrid {
    /// Knee sweep: 2 ms service, offered rate swept per member count.
    pub knee: Vec<OpenLoopPoint>,
    /// Saturation cells: zero service, window kept full — data-path ceiling.
    pub echo: Vec<OpenLoopPoint>,
    /// Pipelined raw-socket echo rate, the TCP comparison baseline.
    pub raw_socket_echo_rps: f64,
    /// Seed the grid ran with.
    pub seed: u64,
    /// Whether the shortened CI shape was used.
    pub quick: bool,
}

/// Runs the open-loop grid: a knee sweep (2 transports x 1/4/8 members x
/// offered rates) with a 2 ms sleeping service, saturation `echo` cells
/// for the data-path ceiling, and the raw-socket baseline. `quick`
/// shortens cells and thins the rate sweep for CI.
pub fn run_open_loop_grid(seed: u64, quick: bool) -> OpenLoopGrid {
    let rates: &[u64] = if quick {
        &[250, 1_000, 4_000]
    } else {
        &[250, 500, 1_000, 2_000, 4_000]
    };
    let duration = if quick {
        SimDuration::from_millis(400)
    } else {
        SimDuration::from_secs(1)
    };
    let budget = SimDuration::from_secs(2);

    let mut knee = Vec::new();
    for kind in [TransportKind::Inproc, TransportKind::Tcp] {
        for members in OPEN_LOOP_MEMBER_COUNTS {
            for &offered_rps in rates {
                knee.push(run_open_loop(&OpenLoopConfig {
                    kind,
                    members,
                    offered_rps,
                    duration,
                    service: OPEN_LOOP_SERVICE,
                    seed,
                    max_in_flight: 512,
                    budget,
                }));
            }
        }
    }

    let mut echo = Vec::new();
    for kind in [TransportKind::Inproc, TransportKind::Tcp] {
        for members in [1u32, 8] {
            echo.push(run_open_loop(&OpenLoopConfig {
                kind,
                members,
                offered_rps: 0,
                duration,
                service: std::time::Duration::ZERO,
                seed,
                max_in_flight: 256,
                budget,
            }));
        }
    }

    let raw_socket_echo_rps =
        run_raw_socket_echo(std::time::Duration::from_micros(duration.as_micros()), 256);

    OpenLoopGrid {
        knee,
        echo,
        raw_socket_echo_rps,
        seed,
        quick,
    }
}

/// Renders the grid as the table EXPERIMENTS.md embeds.
pub fn format_open_loop(grid: &OpenLoopGrid) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Open-loop knee sweep ({} us service per invocation)",
        OPEN_LOOP_SERVICE.as_micros()
    );
    let _ = writeln!(
        out,
        "  {:<9} {:>7} {:>9} {:>11} {:>8} {:>8} {:>6} {:>5} {:>9} {:>9}",
        "transport",
        "members",
        "offered",
        "completed",
        "ok",
        "expired",
        "shed",
        "lost",
        "p50",
        "p99"
    );
    for p in &grid.knee {
        let _ = writeln!(
            out,
            "  {:<9} {:>7} {:>7}/s {:>9.0}/s {:>8} {:>8} {:>6} {:>5} {:>6} us {:>6} us",
            p.transport.to_string(),
            p.members,
            p.offered_rps,
            p.completed_rps,
            p.outcomes.ok,
            p.outcomes.expired,
            p.shed,
            p.lost,
            p.p50_us,
            p.p99_us,
        );
    }
    let _ = writeln!(
        out,
        "# Saturation echo cells (zero service, window kept full)"
    );
    for p in &grid.echo {
        let _ = writeln!(
            out,
            "  {:<9} {:>7} {:>9} {:>9.0}/s {:>8} {:>8} {:>6} {:>5} {:>6} us {:>6} us",
            p.transport.to_string(),
            p.members,
            "window",
            p.completed_rps,
            p.outcomes.ok,
            p.outcomes.expired,
            p.shed,
            p.lost,
            p.p50_us,
            p.p99_us,
        );
    }
    let _ = writeln!(
        out,
        "# Raw-socket pipelined echo baseline: {:.0}/s (32-byte messages)",
        grid.raw_socket_echo_rps
    );
    out
}

fn point_json(p: &OpenLoopPoint) -> String {
    format!(
        "{{\"transport\": \"{}\", \"members\": {}, \"offered_rps\": {}, \
         \"seconds\": {:.3}, \"drain_seconds\": {:.3}, \"injected\": {}, \
         \"shed\": {}, \"completed\": {}, \
         \"errors\": {}, \"lost\": {}, \"completed_rps\": {:.1}, \
         \"p50_us\": {}, \"p99_us\": {}, \"in_flight_peak\": {}}}",
        p.transport,
        p.members,
        p.offered_rps,
        p.seconds,
        p.drain_seconds,
        p.injected,
        p.shed,
        p.outcomes.ok,
        p.outcomes.total() - p.outcomes.ok,
        p.lost,
        p.completed_rps,
        p.p50_us,
        p.p99_us,
        p.in_flight_peak,
    )
}

/// Serializes the grid as `BENCH_throughput.json` (hand-rolled: the repo
/// has no JSON serializer dependency).
pub fn open_loop_json(grid: &OpenLoopGrid) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"throughput\",");
    let _ = writeln!(out, "  \"mode\": \"open-loop\",");
    let _ = writeln!(out, "  \"seed\": {},", grid.seed);
    let _ = writeln!(out, "  \"quick\": {},", grid.quick);
    let _ = writeln!(out, "  \"service_us\": {},", OPEN_LOOP_SERVICE.as_micros());
    let _ = writeln!(
        out,
        "  \"raw_socket_echo_rps\": {:.1},",
        grid.raw_socket_echo_rps
    );
    for (name, points) in [("knee", &grid.knee), ("echo", &grid.echo)] {
        let _ = writeln!(out, "  \"{name}\": [");
        for (i, p) in points.iter().enumerate() {
            let _ = write!(out, "    {}", point_json(p));
            out.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
    }
    // Trailing-comma fix: close the object after the last array.
    let trimmed = out.trim_end_matches(",\n").len();
    out.truncate(trimmed);
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cell(
        offered_rps: u64,
        max_in_flight: usize,
        service: std::time::Duration,
    ) -> OpenLoopPoint {
        run_open_loop(&OpenLoopConfig {
            kind: TransportKind::Inproc,
            members: 1,
            offered_rps,
            duration: SimDuration::from_millis(250),
            service,
            seed: 7,
            max_in_flight,
            budget: SimDuration::from_secs(2),
        })
    }

    #[test]
    fn open_loop_cell_conserves_and_completes() {
        let p = quick_cell(400, 512, std::time::Duration::ZERO);
        assert!(p.injected > 0, "{p:?}");
        assert!(p.outcomes.ok > 0, "{p:?}");
        assert_eq!(p.lost, 0, "every injected invocation must terminate: {p:?}");
        assert!(p.completed_rps > 0.0, "{p:?}");
    }

    #[test]
    fn open_loop_sheds_at_the_in_flight_cap_instead_of_losing() {
        // 20k/s into a 5 ms service with an 8-deep window: most arrivals
        // must be shed, and everything begun must still terminate.
        let p = quick_cell(20_000, 8, std::time::Duration::from_millis(5));
        assert!(p.shed > 0, "window must overflow: {p:?}");
        assert!(p.in_flight_peak <= 8, "{p:?}");
        assert_eq!(p.lost, 0, "{p:?}");
    }

    #[test]
    fn saturation_mode_keeps_the_window_full() {
        let p = quick_cell(0, 64, std::time::Duration::ZERO);
        assert_eq!(p.in_flight_peak, 64, "window must be topped up: {p:?}");
        assert!(p.outcomes.ok > 0, "{p:?}");
        assert_eq!(p.lost, 0, "{p:?}");
    }

    #[test]
    fn raw_socket_echo_measures_something() {
        let rps = run_raw_socket_echo(std::time::Duration::from_millis(100), 64);
        assert!(rps > 0.0, "raw echo must move messages, got {rps}");
    }

    #[test]
    fn open_loop_json_has_the_expected_shape() {
        let grid = OpenLoopGrid {
            knee: vec![quick_cell(400, 512, std::time::Duration::ZERO)],
            echo: vec![],
            raw_socket_echo_rps: 123.0,
            seed: 7,
            quick: true,
        };
        let json = open_loop_json(&grid);
        assert!(json.contains("\"mode\": \"open-loop\""));
        assert!(json.contains("\"knee\": ["));
        assert!(json.contains("\"echo\": ["));
        assert!(json.contains("\"raw_socket_echo_rps\": 123.0"));
        assert!(json.ends_with("}\n"));
        assert!(!json.contains("],\n}"), "no trailing comma before close");
    }
}
