//! The §5.5 summary statistics ("T1"): average agility per deployment and
//! the ratios the paper quotes in prose.

use erm_apps::AppKind;
use erm_workloads::PatternKind;
use serde::Serialize;

use crate::deployment::Deployment;
use crate::experiment::{run_experiment, ExperimentConfig};

/// One row of the summary: an (app, pattern, deployment) combination.
#[derive(Debug, Clone, Serialize)]
pub struct SummaryRow {
    /// Application.
    pub app: AppKind,
    /// Workload pattern.
    pub pattern: PatternKind,
    /// Deployment.
    pub deployment: Deployment,
    /// Run-wide mean SPEC agility.
    pub mean_agility: f64,
    /// Excess component of the mean.
    pub mean_excess: f64,
    /// Shortage component of the mean.
    pub mean_shortage: f64,
    /// Fraction of plotted points at exactly zero.
    pub zero_fraction: f64,
    /// `mean_agility / mean_agility(ElasticRMI)` for the same app+pattern.
    pub ratio_vs_elastic_rmi: f64,
    /// Fraction of time under-provisioned (QoS at risk; §5.1's validity
    /// caveat).
    pub shortage_fraction: f64,
    /// Mean provisioning latency in seconds (0 when no event occurred).
    pub mean_provisioning_s: f64,
}

/// Runs the full evaluation grid (4 apps × 2 patterns × 4 deployments) and
/// returns the 32 rows, ordered by app, pattern, deployment.
pub fn summary_table(seed: u64) -> Vec<SummaryRow> {
    let mut rows = Vec::with_capacity(32);
    for app in AppKind::ALL {
        for pattern in [PatternKind::Abrupt, PatternKind::Cyclic] {
            let mut results = Vec::new();
            for deployment in Deployment::ALL {
                let mut config = ExperimentConfig::paper(app, pattern, deployment);
                config.seed = seed;
                results.push(run_experiment(&config));
            }
            let ermi_agility = results[0].agility.mean_agility().max(1e-9);
            for r in &results {
                rows.push(SummaryRow {
                    app,
                    pattern,
                    deployment: r.config.deployment,
                    mean_agility: r.agility.mean_agility(),
                    mean_excess: r.agility.mean_excess(),
                    mean_shortage: r.agility.mean_shortage(),
                    zero_fraction: r.agility.zero_fraction(),
                    ratio_vs_elastic_rmi: r.agility.mean_agility() / ermi_agility,
                    shortage_fraction: r.agility.shortage_fraction(),
                    mean_provisioning_s: r
                        .provisioning
                        .mean_latency()
                        .map_or(0.0, |d| d.as_secs_f64()),
                });
            }
        }
    }
    rows
}

/// Formats the rows as an aligned text table (the artifact EXPERIMENTS.md
/// records against the paper's prose numbers).
pub fn format_summary(rows: &[SummaryRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<13} {:<7} {:<18} {:>8} {:>8} {:>9} {:>6} {:>6} {:>9} {:>8}\n",
        "app",
        "pattern",
        "deployment",
        "agility",
        "excess",
        "shortage",
        "zero%",
        "qos@r%",
        "vs-ERMI",
        "prov(s)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<13} {:<7} {:<18} {:>8.2} {:>8.2} {:>9.2} {:>5.0}% {:>5.0}% {:>8.1}x {:>8.1}\n",
            r.app.to_string(),
            r.pattern.to_string(),
            r.deployment.to_string(),
            r.mean_agility,
            r.mean_excess,
            r.mean_shortage,
            r.zero_fraction * 100.0,
            r.shortage_fraction * 100.0,
            r.ratio_vs_elastic_rmi,
            r.mean_provisioning_s,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_thirty_two_rows() {
        let rows = summary_table(7);
        assert_eq!(rows.len(), 32);
    }

    #[test]
    fn elastic_rmi_rows_have_unit_ratio() {
        let rows = summary_table(7);
        for r in rows
            .iter()
            .filter(|r| r.deployment == Deployment::ElasticRmi)
        {
            assert!((r.ratio_vs_elastic_rmi - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn headline_ratios_hold_for_every_app() {
        // The paper's qualitative claims: CloudWatch and CPUMem are several
        // times worse than ElasticRMI; overprovisioning is worst on average.
        let rows = summary_table(7);
        for app in AppKind::ALL {
            for pattern in [PatternKind::Abrupt, PatternKind::Cyclic] {
                let get = |d: Deployment| {
                    rows.iter()
                        .find(|r| r.app == app && r.pattern == pattern && r.deployment == d)
                        .unwrap()
                        .mean_agility
                };
                let ermi = get(Deployment::ElasticRmi);
                let cw = get(Deployment::CloudWatch);
                let over = get(Deployment::Overprovision);
                assert!(
                    cw > 1.5 * ermi,
                    "{app}/{pattern}: cw {cw:.2} ermi {ermi:.2}"
                );
                assert!(over > cw, "{app}/{pattern}: over {over:.2} cw {cw:.2}");
            }
        }
    }

    #[test]
    fn elastic_rmi_keeps_qos_risk_low() {
        // The agility metric "will not be valid in a context where the QoS
        // is not met" (§5.1): ElasticRMI must be under-provisioned only a
        // small fraction of the time for the comparison to stand.
        let rows = summary_table(7);
        for r in rows
            .iter()
            .filter(|r| r.deployment == Deployment::ElasticRmi)
        {
            assert!(
                r.shortage_fraction < 0.25,
                "{}/{}: QoS at risk {:.0}% of the time",
                r.app,
                r.pattern,
                r.shortage_fraction * 100.0
            );
        }
    }

    #[test]
    fn format_is_one_line_per_row_plus_header() {
        let rows = summary_table(7);
        let text = format_summary(&rows);
        assert_eq!(text.lines().count(), 33);
        assert!(text.contains("ElasticRMI"));
    }
}
