//! The full stack over real TCP loopback sockets (and, for comparison,
//! in-process channels): the paper's "performs as well as plain RMI" claim
//! needs socket-path evidence, not just `InProcNetwork` runs.
//!
//! Two entry points:
//!
//! * [`run_socket_overload`] — the PR 2 overload scenario (base load, 2x
//!   burst, recovery) driven end-to-end through stub → wire → skeleton →
//!   pool → registry over TCP loopback, with the same invariants: zero
//!   lost invocations and conservation of terminal events. This is
//!   `figures --tcp`.
//! * [`run_throughput`] — a closed-loop throughput baseline, inproc vs TCP
//!   at 1/4/8 members, feeding `BENCH_throughput.json`. The 1-member point
//!   is a standalone skeleton — the plain-RMI shape the paper compares
//!   against; 4 and 8 run through the full elastic pool pinned at size.
//!
//! Time domains: all protocol semantics (timeouts, budgets, burst
//! intervals) run on the injected clock — here the [`SystemClock`], since
//! real sockets run in real time. Wall clock appears only inside the TCP
//! I/O layer and inside the benched service body (which *is* the
//! application's work, not protocol logic).

use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use elasticrmi::{
    decode_args, encode_result, ClientLb, Discipline, ElasticPool, ElasticService, PoolConfig,
    PoolDeps, RegistryClient, RegistryServer, RemoteError, RmiError, RmiMessage, ServiceContext,
    Skeleton, Stub,
};
use erm_cluster::{ClusterConfig, ClusterHandle, LatencyModel, ResourceManager};
use erm_kvstore::{Store, StoreConfig};
use erm_metrics::{MetricsHandle, TraceHandle};
use erm_sim::{SharedClock, SimDuration, SystemClock};
use erm_transport::{EndpointId, Host, InProcNetwork, Network, TcpHost};

/// Which byte-moving substrate a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process channels (`InProcNetwork`) — the no-socket upper bound.
    Inproc,
    /// Real TCP loopback sockets (`TcpHost`), one host per "machine".
    Tcp,
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportKind::Inproc => write!(f, "inproc"),
            TransportKind::Tcp => write!(f, "tcp"),
        }
    }
}

/// A server "machine" and a client "machine" wired over the chosen
/// transport. On inproc both are the same network; on TCP they are two
/// hosts on loopback and the client bootstraps with one `register_host`
/// call — every further route (members added by scale-out included) is
/// learned from the advertised addresses on inbound frames.
pub(crate) struct Fabric {
    kind: TransportKind,
    inproc: Option<Arc<InProcNetwork>>,
    tcp_server: Option<Arc<TcpHost>>,
    tcp_client: Option<Arc<TcpHost>>,
}

impl Fabric {
    pub(crate) fn new(kind: TransportKind) -> Fabric {
        match kind {
            TransportKind::Inproc => Fabric {
                kind,
                inproc: Some(Arc::new(InProcNetwork::new())),
                tcp_server: None,
                tcp_client: None,
            },
            TransportKind::Tcp => {
                let server =
                    Arc::new(TcpHost::bind("127.0.0.1:0", 0).expect("bind server loopback"));
                let client =
                    Arc::new(TcpHost::bind("127.0.0.1:0", 1).expect("bind client loopback"));
                // The out-of-band bootstrap, as with rmiregistry's
                // host:port: the client knows where the server listens.
                client.register_host(0, server.local_addr());
                Fabric {
                    kind,
                    inproc: None,
                    tcp_server: Some(server),
                    tcp_client: Some(client),
                }
            }
        }
    }

    /// The host the pool (and registry) lives on.
    pub(crate) fn server_host(&self) -> Arc<dyn Host> {
        match self.kind {
            TransportKind::Inproc => self.inproc.clone().expect("inproc fabric"),
            TransportKind::Tcp => self.tcp_server.clone().expect("tcp fabric"),
        }
    }

    /// The host client stubs live on.
    pub(crate) fn client_host(&self) -> Arc<dyn Host> {
        match self.kind {
            TransportKind::Inproc => self.inproc.clone().expect("inproc fabric"),
            TransportKind::Tcp => self.tcp_client.clone().expect("tcp fabric"),
        }
    }

    pub(crate) fn client_net(&self) -> Arc<dyn Network> {
        match self.kind {
            TransportKind::Inproc => self.inproc.clone().expect("inproc fabric"),
            TransportKind::Tcp => self.tcp_client.clone().expect("tcp fabric"),
        }
    }

    pub(crate) fn shutdown(&self) {
        if let Some(s) = &self.tcp_server {
            s.shutdown();
        }
        if let Some(c) = &self.tcp_client {
            c.shutdown();
        }
    }
}

/// The benched/overloaded service: `work` burns the configured service
/// time (real work on the member's thread, not protocol time) and echoes,
/// `echo` returns immediately.
pub(crate) struct SpinService {
    pub(crate) service: std::time::Duration,
}

impl ElasticService for SpinService {
    fn dispatch(
        &mut self,
        method: &str,
        args: &[u8],
        _ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError> {
        match method {
            "work" => {
                let n: u64 = decode_args(method, args)?;
                if !self.service.is_zero() {
                    std::thread::sleep(self.service);
                }
                encode_result(&n)
            }
            "echo" => {
                let n: u64 = decode_args(method, args)?;
                encode_result(&n)
            }
            other => Err(RemoteError::no_such_method(other)),
        }
    }
}

/// Terminal-outcome accounting for a batch of client invocations. Every
/// invocation issued lands in exactly one bucket; anything else is a lost
/// invocation, and the harness treats that as a failed run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Outcomes {
    /// Invocations that returned their result.
    pub ok: u64,
    /// Application-level remote errors.
    pub remote_error: u64,
    /// Refused by every tried member's admission queue.
    pub overloaded: u64,
    /// Refused locally by the AIMD limiter.
    pub throttled: u64,
    /// Ran out their end-to-end budget.
    pub expired: u64,
    /// No member (sentinel included) answered.
    pub unreachable: u64,
    /// Marshalling failures (a bug if ever nonzero).
    pub marshalling: u64,
}

impl Outcomes {
    pub(crate) fn add<T>(&mut self, result: &Result<T, RmiError>) {
        match result {
            Ok(_) => self.ok += 1,
            Err(RmiError::Remote(_)) => self.remote_error += 1,
            Err(RmiError::Overloaded { .. }) => self.overloaded += 1,
            Err(RmiError::Throttled { .. }) => self.throttled += 1,
            Err(RmiError::DeadlineExceeded { .. }) => self.expired += 1,
            Err(RmiError::PoolUnreachable { .. } | RmiError::SentinelUnreachable(_)) => {
                self.unreachable += 1;
            }
            Err(_) => self.marshalling += 1,
        }
    }

    pub(crate) fn merge(&mut self, other: &Outcomes) {
        self.ok += other.ok;
        self.remote_error += other.remote_error;
        self.overloaded += other.overloaded;
        self.throttled += other.throttled;
        self.expired += other.expired;
        self.unreachable += other.unreachable;
        self.marshalling += other.marshalling;
    }

    /// Sum over every terminal bucket.
    pub fn total(&self) -> u64 {
        self.ok
            + self.remote_error
            + self.overloaded
            + self.throttled
            + self.expired
            + self.unreachable
            + self.marshalling
    }
}

/// Result of [`run_socket_overload`].
#[derive(Debug, Clone)]
pub struct SocketOverloadRun {
    /// Invocations issued across all clients and phases.
    pub offered: u64,
    /// Where each of them terminated.
    pub outcomes: Outcomes,
    /// `offered - outcomes.total()`: must be zero (the invariant).
    pub lost: u64,
    /// Members added by scale-out during the run.
    pub grown: u32,
    /// Largest pool size observed.
    pub peak_members: u32,
    /// Pool size after shutdown-free quiesce (end of recovery).
    pub final_members: u32,
    /// Client-observed latency percentiles over successful invocations.
    pub p50: SimDuration,
    /// 99th percentile of the same.
    pub p99: SimDuration,
    /// Human-readable report (what `figures --tcp` prints).
    pub report: String,
}

/// One client thread's contribution to an overload phase.
struct ClientSlice {
    outcomes: Outcomes,
    offered: u64,
    latencies_us: Vec<u64>,
}

/// Runs the PR 2 overload scenario — base load, a 2x concurrency burst,
/// recovery — through real TCP loopback sockets: closed-loop clients on
/// their own `TcpHost` invoking an elastic pool (admission control on,
/// queue-delay growth signal on) discovered through the RMI registry on
/// the server host.
///
/// `quick` halves every phase for CI smoke runs.
pub fn run_socket_overload(seed: u64, quick: bool) -> SocketOverloadRun {
    let fabric = Fabric::new(TransportKind::Tcp);
    let clock: SharedClock = Arc::new(SystemClock::new());
    let deps = PoolDeps {
        cluster: ClusterHandle::new(ResourceManager::new(ClusterConfig {
            nodes: 8,
            provisioning: LatencyModel::instant(),
            ..ClusterConfig::default()
        })),
        net: fabric.server_host(),
        store: Arc::new(Store::new(StoreConfig::default())),
        clock: Arc::clone(&clock),
        trace: TraceHandle::disabled(),
        metrics: MetricsHandle::disabled(),
    };
    let service = std::time::Duration::from_micros(2_500);
    let mut pool = ElasticPool::instantiate(
        PoolConfig::builder("SocketOverload")
            .min_pool_size(2)
            .max_pool_size(6)
            .burst_interval(SimDuration::from_millis(250))
            .overload_capacity(32)
            .admission(Discipline::Edf)
            .queue_delay_grow_above(SimDuration::from_millis(5))
            .build()
            .expect("valid overload config"),
        Arc::new(move || Box::new(SpinService { service })),
        deps,
        None,
    )
    .expect("pool over TCP instantiates");

    // Registry on the server machine; clients look the pool up by name.
    let registry = RegistryServer::spawn(fabric.server_host());
    {
        let mut binder = RegistryClient::connect(fabric.server_host(), registry.endpoint());
        assert!(binder.bind("overload", pool.sentinel()).expect("bind"));
    }
    let mut lookup = RegistryClient::connect(fabric.client_host(), registry.endpoint());
    let sentinel = lookup
        .lookup("overload")
        .expect("registry answers over TCP")
        .expect("name bound");

    // Phases: base concurrency, then 2x clients for the burst, then base
    // again. Closed-loop: each client issues the next invocation as soon
    // as the previous one terminates.
    let scale = if quick { 1 } else { 2 };
    let warmup = SimDuration::from_millis(600 * scale);
    let burst = SimDuration::from_millis(1_200 * scale);
    let recovery = SimDuration::from_millis(600 * scale);
    let base_clients = 4u32;
    let burst_clients = 8u32; // 2x

    let t0 = clock.now();
    let burst_from = t0 + warmup;
    let burst_to = burst_from + burst;
    let end = burst_to + recovery;

    let running = Arc::new(AtomicU32::new(0));
    let mut handles = Vec::new();
    for i in 0..burst_clients {
        let is_burst_only = i >= base_clients;
        let net = fabric.client_net();
        let (ep, mailbox) = fabric.client_host().open();
        let clock = Arc::clone(&clock);
        let running = Arc::clone(&running);
        running.fetch_add(1, Ordering::SeqCst);
        handles.push(std::thread::spawn(move || {
            let mut slice = ClientSlice {
                outcomes: Outcomes::default(),
                offered: 0,
                latencies_us: Vec::new(),
            };
            let mut stub = match Stub::connect(
                net,
                ep,
                mailbox,
                sentinel,
                ClientLb::Random {
                    seed: seed ^ u64::from(i),
                },
                Arc::clone(&clock),
            ) {
                Ok(s) => s,
                Err(_) => {
                    // Connection refused entirely: count nothing — the
                    // client issued no invocations.
                    running.fetch_sub(1, Ordering::SeqCst);
                    return slice;
                }
            };
            stub.set_reply_timeout(SimDuration::from_millis(250));
            stub.set_invocation_budget(SimDuration::from_secs(1));
            let mut n = 0u64;
            loop {
                let now = clock.now();
                if now >= end {
                    break;
                }
                if is_burst_only {
                    if now < burst_from {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        continue;
                    }
                    if now >= burst_to {
                        break;
                    }
                }
                let before = clock.now();
                let result: Result<u64, RmiError> = stub.invoke("work", &n);
                slice.offered += 1;
                if result.is_ok() {
                    slice
                        .latencies_us
                        .push(clock.now().saturating_since(before).as_micros());
                }
                slice.outcomes.add(&result);
                n += 1;
            }
            running.fetch_sub(1, Ordering::SeqCst);
            slice
        }));
    }

    // Sample pool size while the clients run, for the growth story.
    let mut peak = pool.size();
    while running.load(Ordering::SeqCst) > 0 {
        peak = peak.max(pool.size());
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    let mut offered = 0u64;
    let mut outcomes = Outcomes::default();
    let mut latencies: Vec<u64> = Vec::new();
    for h in handles {
        let slice = h.join().expect("client thread");
        offered += slice.offered;
        outcomes.merge(&slice.outcomes);
        latencies.extend(slice.latencies_us);
    }
    let lost = offered - outcomes.total();
    let stats = pool.stats();
    let final_members = pool.size();
    peak = peak.max(final_members);
    latencies.sort_unstable();
    let pct = |p: f64| -> SimDuration {
        if latencies.is_empty() {
            SimDuration::ZERO
        } else {
            let idx = ((latencies.len() - 1) as f64 * p) as usize;
            SimDuration::from_micros(latencies[idx])
        }
    };
    let (p50, p99) = (pct(0.50), pct(0.99));

    let mut report = String::new();
    let _ = writeln!(
        report,
        "# Overload over TCP loopback (seed {seed}{}): {base_clients} closed-loop clients, \
         2x burst to {burst_clients}, 2.5 ms service, pool 2..6 + EDF admission",
        if quick { ", quick" } else { "" }
    );
    let _ = writeln!(report, "  {:<22} {:>10}", "offered", offered);
    let _ = writeln!(report, "  {:<22} {:>10}", "completed ok", outcomes.ok);
    let _ = writeln!(
        report,
        "  {:<22} {:>10}",
        "remote errors", outcomes.remote_error
    );
    let _ = writeln!(report, "  {:<22} {:>10}", "overloaded", outcomes.overloaded);
    let _ = writeln!(report, "  {:<22} {:>10}", "throttled", outcomes.throttled);
    let _ = writeln!(report, "  {:<22} {:>10}", "expired", outcomes.expired);
    let _ = writeln!(
        report,
        "  {:<22} {:>10}",
        "unreachable", outcomes.unreachable
    );
    let _ = writeln!(
        report,
        "  {:<22} {:>10}",
        "marshalling", outcomes.marshalling
    );
    let _ = writeln!(report, "  {:<22} {:>10}", "lost invocations", lost);
    let _ = writeln!(
        report,
        "  pool: started 2, grew {} (peak {peak}, final {final_members}); \
         ok-latency p50 {:.2} ms, p99 {:.2} ms",
        stats.grown,
        p50.as_micros() as f64 / 1_000.0,
        p99.as_micros() as f64 / 1_000.0,
    );
    let _ = writeln!(
        report,
        "  invariant: conservation of terminal events {} (offered {} == terminals {})",
        if lost == 0 { "HOLDS" } else { "VIOLATED" },
        offered,
        outcomes.total(),
    );

    pool.shutdown();
    registry.shutdown();
    fabric.shutdown();

    SocketOverloadRun {
        offered,
        outcomes,
        lost,
        grown: stats.grown,
        peak_members: peak,
        final_members,
        p50,
        p99,
        report,
    }
}

/// One transport x member-count point of the throughput baseline.
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    /// Substrate the bytes travelled over.
    pub transport: TransportKind,
    /// Pool size (pinned; 1 = standalone skeleton, the plain-RMI shape).
    pub members: u32,
    /// Closed-loop client threads.
    pub clients: u32,
    /// Measured run length in seconds (on the injected clock).
    pub seconds: f64,
    /// Invocations that completed ok.
    pub completed: u64,
    /// Invocations that terminated any other way.
    pub errors: u64,
    /// `completed / seconds`.
    pub throughput_rps: f64,
    /// Median ok-latency, microseconds.
    pub p50_us: u64,
    /// 99th percentile ok-latency, microseconds.
    pub p99_us: u64,
}

/// Runs one closed-loop no-op-service throughput measurement: `clients`
/// stubs invoking `echo` as fast as round trips allow for roughly
/// `duration`, against a pool pinned at `members` (or a standalone
/// skeleton when `members == 1`).
pub fn run_throughput(
    kind: TransportKind,
    members: u32,
    clients: u32,
    duration: SimDuration,
    seed: u64,
) -> ThroughputPoint {
    let fabric = Fabric::new(kind);
    let clock: SharedClock = Arc::new(SystemClock::new());
    let server = ServerSide::spawn(&fabric, kind, members, &clock, std::time::Duration::ZERO);
    let sentinel = server.sentinel();

    let t0 = clock.now();
    let end = t0 + duration;
    let mut handles = Vec::new();
    for i in 0..clients {
        let net = fabric.client_net();
        let (ep, mailbox) = fabric.client_host().open();
        let clock = Arc::clone(&clock);
        handles.push(std::thread::spawn(move || {
            let mut completed = 0u64;
            let mut errors = 0u64;
            let mut latencies_us: Vec<u64> = Vec::new();
            let Ok(mut stub) = Stub::connect(
                net,
                ep,
                mailbox,
                sentinel,
                ClientLb::Random {
                    seed: seed ^ u64::from(i),
                },
                Arc::clone(&clock),
            ) else {
                return (completed, errors, latencies_us);
            };
            stub.set_reply_timeout(SimDuration::from_millis(500));
            stub.set_invocation_budget(SimDuration::from_secs(2));
            let mut n = 0u64;
            while clock.now() < end {
                let before = clock.now();
                match stub.invoke::<u64, u64>("echo", &n) {
                    Ok(_) => {
                        completed += 1;
                        latencies_us.push(clock.now().saturating_since(before).as_micros());
                    }
                    Err(_) => errors += 1,
                }
                n += 1;
            }
            (completed, errors, latencies_us)
        }));
    }

    let mut completed = 0u64;
    let mut errors = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for h in handles {
        let (c, e, l) = h.join().expect("bench client thread");
        completed += c;
        errors += e;
        latencies.extend(l);
    }
    let elapsed = clock.now().saturating_since(t0);
    let seconds = elapsed.as_micros() as f64 / 1_000_000.0;
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            0
        } else {
            latencies[((latencies.len() - 1) as f64 * p) as usize]
        }
    };
    let point = ThroughputPoint {
        transport: kind,
        members,
        clients,
        seconds,
        completed,
        errors,
        throughput_rps: if seconds > 0.0 {
            completed as f64 / seconds
        } else {
            0.0
        },
        p50_us: pct(0.50),
        p99_us: pct(0.99),
    };

    server.shutdown();
    fabric.shutdown();
    point
}

/// The serving side of a benchmark cell: a pinned pool, or a lone skeleton
/// for `members == 1` (ElasticPool's paper-faithful minimum is 2 — a
/// singleton *pool* does not exist; a singleton remote object is exactly
/// plain RMI).
pub(crate) enum ServerSide {
    Standalone {
        join: std::thread::JoinHandle<()>,
        ctl: EndpointId,
        endpoint: EndpointId,
        net: Arc<dyn Network>,
    },
    Pool(ElasticPool),
}

impl ServerSide {
    /// Spawns a serving side on `fabric`'s server host: a standalone
    /// skeleton for one member, a pinned elastic pool otherwise. The
    /// service body sleeps `service` per `work` invocation (`echo` is
    /// always immediate).
    pub(crate) fn spawn(
        fabric: &Fabric,
        kind: TransportKind,
        members: u32,
        clock: &SharedClock,
        service: std::time::Duration,
    ) -> ServerSide {
        if members == 1 {
            let host = fabric.server_host();
            let (endpoint, mailbox) = host.open();
            let (ctl, _ctl_mailbox) = host.open();
            let net: Arc<dyn Network> = match kind {
                TransportKind::Inproc => fabric.inproc.clone().expect("inproc fabric"),
                TransportKind::Tcp => fabric.tcp_server.clone().expect("tcp fabric"),
            };
            let ctx = ServiceContext::new(
                Arc::new(Store::new(StoreConfig::default())),
                "Bench",
                0,
                Arc::clone(clock),
                Arc::new(AtomicU32::new(1)),
            );
            let skeleton = Skeleton::new(
                0,
                endpoint,
                ctl,
                Arc::clone(&net),
                Arc::clone(clock),
                Box::new(SpinService { service }),
                ctx,
                TraceHandle::disabled(),
                None,
            );
            let join = std::thread::Builder::new()
                .name("bench-skeleton".to_string())
                .spawn(move || skeleton.run(mailbox))
                .expect("spawn bench skeleton");
            ServerSide::Standalone {
                join,
                ctl,
                endpoint,
                net,
            }
        } else {
            let deps = PoolDeps {
                cluster: ClusterHandle::new(ResourceManager::new(ClusterConfig {
                    nodes: members,
                    provisioning: LatencyModel::instant(),
                    ..ClusterConfig::default()
                })),
                net: fabric.server_host(),
                store: Arc::new(Store::new(StoreConfig::default())),
                clock: Arc::clone(clock),
                trace: TraceHandle::disabled(),
                metrics: MetricsHandle::disabled(),
            };
            ServerSide::Pool(
                ElasticPool::instantiate(
                    PoolConfig::builder("Bench")
                        .min_pool_size(members)
                        .max_pool_size(members)
                        .build()
                        .expect("valid bench config"),
                    Arc::new(move || Box::new(SpinService { service })),
                    deps,
                    None,
                )
                .expect("bench pool instantiates"),
            )
        }
    }

    /// The endpoint a stub should connect to as its sentinel.
    pub(crate) fn sentinel(&self) -> EndpointId {
        match self {
            ServerSide::Standalone { endpoint, .. } => *endpoint,
            ServerSide::Pool(pool) => pool.sentinel(),
        }
    }

    pub(crate) fn shutdown(self) {
        match self {
            ServerSide::Standalone {
                join,
                ctl,
                endpoint,
                net,
            } => {
                let _ = net.send(ctl, endpoint, RmiMessage::Shutdown.encode());
                let _ = join.join();
            }
            ServerSide::Pool(mut pool) => pool.shutdown(),
        }
    }
}

/// Standard member counts of the baseline grid.
pub const BENCH_MEMBER_COUNTS: [u32; 3] = [1, 4, 8];

/// Runs the full inproc-vs-TCP baseline grid (1/4/8 members), returning
/// one point per cell. `quick` shortens each cell for CI.
pub fn run_throughput_grid(seed: u64, quick: bool) -> Vec<ThroughputPoint> {
    let duration = if quick {
        SimDuration::from_millis(400)
    } else {
        SimDuration::from_secs(2)
    };
    let mut points = Vec::new();
    for kind in [TransportKind::Inproc, TransportKind::Tcp] {
        for members in BENCH_MEMBER_COUNTS {
            points.push(run_throughput(kind, members, 4, duration, seed));
        }
    }
    points
}

/// Renders the grid as the table EXPERIMENTS.md embeds.
pub fn format_throughput(points: &[ThroughputPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:<9} {:>8} {:>9} {:>12} {:>10} {:>10}",
        "transport", "members", "clients", "throughput", "p50", "p99"
    );
    for p in points {
        let _ = writeln!(
            out,
            "  {:<9} {:>8} {:>9} {:>9.0}/s {:>7} us {:>7} us",
            p.transport.to_string(),
            p.members,
            p.clients,
            p.throughput_rps,
            p.p50_us,
            p.p99_us
        );
    }
    out
}

/// Serializes the grid as `BENCH_throughput.json` (hand-rolled: the repo
/// has no JSON serializer dependency).
pub fn throughput_json(points: &[ThroughputPoint], seed: u64, quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"throughput\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"transport\": \"{}\", \"members\": {}, \"clients\": {}, \
             \"seconds\": {:.3}, \"completed\": {}, \"errors\": {}, \
             \"throughput_rps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}}}",
            p.transport,
            p.members,
            p.clients,
            p.seconds,
            p.completed,
            p.errors,
            p.throughput_rps,
            p.p50_us,
            p.p99_us
        );
        out.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inproc_throughput_point_is_sane() {
        let p = run_throughput(
            TransportKind::Inproc,
            1,
            2,
            SimDuration::from_millis(150),
            7,
        );
        assert!(p.completed > 0, "closed loop must complete invocations");
        assert!(p.throughput_rps > 0.0);
        assert!(p.seconds > 0.0);
    }

    #[test]
    fn tcp_throughput_point_is_sane() {
        let p = run_throughput(TransportKind::Tcp, 2, 2, SimDuration::from_millis(150), 7);
        assert!(p.completed > 0, "TCP loopback must complete invocations");
        assert_eq!(p.members, 2);
    }

    #[test]
    fn throughput_json_is_parseable_shape() {
        let points = vec![run_throughput(
            TransportKind::Inproc,
            1,
            1,
            SimDuration::from_millis(50),
            7,
        )];
        let json = throughput_json(&points, 7, true);
        assert!(json.contains("\"bench\": \"throughput\""));
        assert!(json.contains("\"transport\": \"inproc\""));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn socket_overload_conserves_every_invocation() {
        let run = run_socket_overload(7, true);
        assert!(run.offered > 0);
        assert_eq!(run.lost, 0, "every invocation must terminate: {run:?}");
        assert!(run.outcomes.ok > 0, "some invocations must succeed");
    }
}
