#![warn(missing_docs)]

//! Experiment harness for the ElasticRMI reproduction (paper §5).
//!
//! Connects the substrates into the paper's evaluation: the four
//! [`Deployment`] scenarios (§5.4), the fluid-time [`run_experiment`] runner
//! producing SPEC agility and provisioning-interval reports (§5.5–5.6), the
//! figure renderers regenerating Fig. 7a–7j and Fig. 8a/8b, and the summary
//! grid behind the prose statistics of §5.5.
//!
//! The control logic under test is the *real* middleware
//! ([`elasticrmi::ScalingEngine`] with production `PoolConfig`s); only the
//! request execution is fluid-modelled so a 500-minute experiment runs in
//! milliseconds. See DESIGN.md for the substitution table.

pub mod churn;
pub mod deployment;
pub mod experiment;
pub mod figures;
pub mod openloop;
pub mod overload;
pub mod scalability;
pub mod sockets;
pub mod summary;
pub mod telemetry;
pub mod tiered;

pub use churn::{run_churn, ChurnRun};
pub use deployment::Deployment;
pub use experiment::{run_experiment, ExperimentConfig, ExperimentResult};
pub use figures::{agility_results, sparkline, FigureId};
pub use openloop::{
    format_open_loop, open_loop_json, run_open_loop, run_open_loop_grid, run_raw_socket_echo,
    OpenLoopConfig, OpenLoopGrid, OpenLoopPoint, OPEN_LOOP_MEMBER_COUNTS, OPEN_LOOP_SERVICE,
};
pub use overload::{render_overload, run_overload, OverloadConfig, OverloadResult};
pub use scalability::{
    render_scalability, scalability_curve, ScalabilityPoint, SharedStateProfile,
};
pub use sockets::{
    format_throughput, run_socket_overload, run_throughput, run_throughput_grid, throughput_json,
    Outcomes, SocketOverloadRun, ThroughputPoint, TransportKind,
};
pub use summary::{format_summary, summary_table, SummaryRow};
pub use telemetry::{render_why_scaled, run_elastic_overload, ElasticOverloadRun};
pub use tiered::{render_tiered, run_tiered, TierCoordination, TieredResult};
