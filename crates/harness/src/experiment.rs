//! The agility experiment runner (paper §5.5–§5.6).
//!
//! Runs one (application, workload pattern, deployment) combination through
//! a fluid-flow discrete-time simulation in virtual time: the 450–500
//! minute experiments of Fig. 7/Fig. 8 complete in milliseconds and are
//! bit-for-bit reproducible from the seed.
//!
//! Fidelity note: the *controller under test is the real middleware code* —
//! [`elasticrmi::ScalingEngine`] with the same `PoolConfig`s the threaded
//! runtime uses, fed by [`erm_apps::demand_vote`], the same function the
//! applications' `change_pool_size` overrides call. The cluster is the real
//! [`erm_cluster::ResourceManager`] with per-deployment provisioning
//! latency. Only the *workload/service loop* is fluid: instead of executing
//! 50,000 requests per second, utilization is computed as offered rate over
//! capacity.

use elasticrmi::{PoolSample, ScalingDecision, ScalingEngine};
use erm_apps::{demand_vote, AppKind};
use erm_cluster::{ClusterConfig, ResourceManager, SliceId};
use erm_metrics::{
    AgilityMeter, AgilityReport, ProvisioningRecorder, ProvisioningReport, TraceEvent, TraceHandle,
    TraceRecord,
};
use erm_sim::{derive_seed, EventQueue, SimDuration, SimTime, TimeSeries};
use erm_workloads::{PatternKind, Workload, WorkloadBuilder};
use serde::{Deserialize, Serialize};

use crate::deployment::Deployment;

/// Parameters of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Which of the four applications.
    pub app: AppKind,
    /// Abrupt (Fig. 7a) or cyclic (Fig. 7b) workload.
    pub pattern: PatternKind,
    /// Which control stack.
    pub deployment: Deployment,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// Simulation step (default 10 s).
    pub tick: SimDuration,
    /// Plot sampling window (default 10 min, as in Fig. 7).
    pub sample_window: SimDuration,
    /// Overrides the deployment's burst interval (ablation studies only;
    /// `None` = the deployment default).
    pub burst_override: Option<SimDuration>,
    /// Fault injection: a cluster-master outage over `[start, end)`
    /// (paper §4.4: "mesos-related failures affect the addition/removal of
    /// new objects until Mesos recovers").
    pub master_outage: Option<(SimTime, SimTime)>,
    /// Record control-plane [`TraceRecord`]s (scale decisions, member
    /// joins/drains) into [`ExperimentResult::trace`]. Off by default: the
    /// 450-minute sweeps emit thousands of events per run.
    pub trace: bool,
}

impl ExperimentConfig {
    /// The paper's parameters for the given combination.
    pub fn paper(app: AppKind, pattern: PatternKind, deployment: Deployment) -> Self {
        ExperimentConfig {
            app,
            pattern,
            deployment,
            seed: 7,
            tick: SimDuration::from_secs(10),
            sample_window: SimDuration::from_minutes(10),
            burst_override: None,
            master_outage: None,
            trace: false,
        }
    }
}

/// Everything one run produces.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The configuration that produced this result.
    pub config: ExperimentConfig,
    /// SPEC agility over time and on average (the Fig. 7 curve).
    pub agility: AgilityReport,
    /// Provisioning intervals (the Fig. 8 curve).
    pub provisioning: ProvisioningReport,
    /// Provisioned capacity (objects) over time.
    pub capacity_series: TimeSeries,
    /// `Req_min` over time.
    pub req_min_series: TimeSeries,
    /// Offered workload (events/s) over time.
    pub workload_series: TimeSeries,
    /// Control-plane trace (empty unless [`ExperimentConfig::trace`] was
    /// set): every scale decision, member join, and drain, in virtual time.
    pub trace: Vec<TraceRecord>,
    /// Trace records evicted from the ring buffer because it filled up.
    /// Non-zero means [`ExperimentResult::trace`] is missing its oldest
    /// events and downstream span reconstruction may be incomplete.
    pub trace_dropped: u64,
}

impl ExperimentResult {
    /// Renders the run's series as CSV for external plotting: one row per
    /// minute with workload rate, `Req_min`, provisioned capacity, and the
    /// (10-minute-windowed) agility.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("minute,workload,req_min,capacity,agility\n");
        for (t, load) in self.workload_series.iter() {
            let req = self.req_min_series.value_at(t).unwrap_or(0.0);
            let cap = self.capacity_series.value_at(t).unwrap_or(0.0);
            let agility = self.agility.series().value_at(t).unwrap_or(0.0);
            out.push_str(&format!(
                "{:.0},{:.1},{:.1},{:.0},{:.3}\n",
                t.as_minutes_f64(),
                load,
                req,
                cap,
                agility
            ));
        }
        out
    }
}

/// Runs one experiment. Deterministic in `config`.
pub fn run_experiment(config: &ExperimentConfig) -> ExperimentResult {
    let app = config.app.model();
    let workload: Workload = WorkloadBuilder::new(config.pattern, app.point_a)
        .noise(0.04)
        .seed(derive_seed(config.seed, &format!("workload-{}", app.name)))
        .build();
    let peak_objects = app.peak_objects(workload.peak());
    let max_pool = peak_objects + peak_objects / 2 + 2;

    let mut cluster = ResourceManager::new(ClusterConfig {
        nodes: max_pool + 8,
        slices_per_node: 1,
        provisioning: config.deployment.provisioning(),
        seed: derive_seed(config.seed, "cluster"),
        ..ClusterConfig::default()
    });

    let mut engine: Option<ScalingEngine> = if config.deployment.is_elastic() {
        let mut pool_config = config.deployment.pool_config(&app, max_pool);
        if let Some(burst) = config.burst_override {
            pool_config = elasticrmi::PoolConfig::builder(app.name)
                .min_pool_size(pool_config.min_pool_size())
                .max_pool_size(pool_config.max_pool_size())
                .policy(pool_config.policy())
                .burst_interval(burst)
                .build()
                .expect("override config valid");
        }
        Some(ScalingEngine::new(pool_config, SimTime::ZERO))
    } else {
        None
    };

    // Initial capacity: the oracle provisions for the peak; elastic
    // deployments start at the capacity the initial workload needs.
    let initial = if config.deployment.is_elastic() {
        app.req_min(workload.rate_at(SimTime::ZERO), 0) as u32
    } else {
        peak_objects
    };

    let mut meter = AgilityMeter::new(SimDuration::from_minutes(1), config.sample_window);
    let mut prov = ProvisioningRecorder::new();
    let (trace, trace_sink) = if config.trace {
        let (handle, sink) = TraceHandle::buffered(65_536);
        (handle, Some(sink))
    } else {
        (TraceHandle::disabled(), None)
    };
    let mut capacity_series = TimeSeries::new("capacity");
    let mut req_series = TimeSeries::new("req_min");
    let mut load_series = TimeSeries::new("workload");

    // Pool bookkeeping.
    let mut ready: Vec<SliceId> = Vec::new();
    let mut draining: EventQueue<SliceId> = EventQueue::new();
    let mut next_prov_id: u64 = 0;
    let mut pending_requests: Vec<(u64, u32)> = Vec::new(); // (first prov id, remaining)
    let mut pending_count: u32 = 0;
    let mut smoothed_cpu: f64 = 0.0;
    // What the members' method-call statistics report: the rate averaged
    // over the last burst interval, not the instantaneous truth.
    let mut measured_rate: f64 = 0.0;
    const DRAIN_DELAY: SimDuration = SimDuration::from_secs(5);

    // Kick off the initial provisioning (instantaneous for the oracle,
    // latency-bound otherwise — the pool's own startup transient).
    {
        let outcome = cluster
            .request_slices(initial, SimTime::ZERO)
            .expect("master up at start");
        let first = next_prov_id;
        next_prov_id += u64::from(outcome.granted);
        pending_count += outcome.granted;
        for i in 0..u64::from(outcome.granted) {
            prov.requested(first + i, SimTime::ZERO);
        }
        pending_requests.push((first, outcome.granted));
    }

    let end = SimTime::ZERO + workload.duration();
    let mut now = SimTime::ZERO;
    let mut next_minute_sample = SimTime::ZERO;
    let mut outage_armed = config.master_outage;

    while now <= end {
        // 0. Fault injection: the master goes down on schedule.
        if let Some((from, until)) = outage_armed {
            if now >= from {
                cluster.fail_master_until(until);
                outage_armed = None;
            }
        }
        // 1. Provisioning completions join the pool and serve immediately.
        for grant in cluster.poll_ready(now) {
            trace.emit(now, TraceEvent::MemberJoined { uid: grant.slice.0 });
            ready.push(grant.slice);
            pending_count = pending_count.saturating_sub(1);
            if let Some(entry) = pending_requests.first_mut() {
                prov.first_served(entry.0, grant.ready_at);
                entry.0 += 1;
                entry.1 -= 1;
                if entry.1 == 0 {
                    pending_requests.remove(0);
                }
            }
        }
        // 2. Draining members release their slices.
        for slice in draining.pop_due(now).collect::<Vec<_>>() {
            trace.emit(now, TraceEvent::MemberDrained { uid: slice.0 });
            let _ = cluster.release(slice, now);
            // capacity already decremented at drain start
        }

        // 3. Observe the workload and utilization.
        let rate = workload.noisy_rate_at(now);
        let n_ready = ready.len() as u32;
        let capacity = f64::from(n_ready) * app.per_object_capacity;
        let inst_cpu = if capacity > 0.0 {
            (rate / capacity * 100.0).min(100.0)
        } else {
            100.0
        };
        // EWMA with ~30 s time constant, like a real utilization monitor.
        let alpha = (config.tick.as_secs_f64() / 30.0).min(1.0);
        smoothed_cpu += alpha * (inst_cpu - smoothed_cpu);
        // The rate visible through getMethodCallStats lags one burst
        // interval behind reality (~60 s time constant).
        let beta = (config.tick.as_secs_f64() / 60.0).min(1.0);
        measured_rate += beta * (rate - measured_rate);

        // 4. The control loop (the real middleware code).
        if let Some(engine) = engine.as_mut() {
            let committed = n_ready + pending_count;
            let sample = PoolSample {
                pool_size: committed,
                avg_cpu: smoothed_cpu as f32,
                // RAM tracks CPU loosely in these services (buffers scale
                // with in-flight work).
                avg_ram: (smoothed_cpu * 0.8) as f32,
                // Each member votes from its *own* measured share of the
                // workload: an even split perturbed by per-member sampling
                // noise (clients round-robin, bursts are uneven), then
                // scaled back up by the pool size — exactly what the
                // applications' change_pool_size overrides compute.
                fine_votes: (0..n_ready.max(1))
                    .map(|i| {
                        let minute = now.as_minutes_f64() as u64;
                        let mut rng = erm_sim::seeded_rng(derive_seed(
                            config.seed,
                            &format!("vote-{}-{minute}-{i}", app.name),
                        ));
                        let observed =
                            measured_rate * (1.0 + rand::Rng::gen_range(&mut rng, -0.1..=0.1));
                        demand_vote(observed, app.per_object_capacity, committed, 0.9)
                    })
                    .collect(),
                desired_size: None,
                ..PoolSample::default()
            };
            match engine.poll(now, &sample) {
                ScalingDecision::Grow(k) => {
                    trace.emit(
                        now,
                        TraceEvent::ScaleDecision {
                            pool_size: committed,
                            delta: i64::from(k),
                        },
                    );
                    if let Ok(outcome) = cluster.request_slices(k, now) {
                        let first = next_prov_id;
                        next_prov_id += u64::from(outcome.granted);
                        pending_count += outcome.granted;
                        for i in 0..u64::from(outcome.granted) {
                            prov.requested(first + i, now);
                        }
                        if outcome.granted > 0 {
                            pending_requests.push((first, outcome.granted));
                        }
                    }
                }
                ScalingDecision::Shrink(k) => {
                    trace.emit(
                        now,
                        TraceEvent::ScaleDecision {
                            pool_size: committed,
                            delta: -i64::from(k),
                        },
                    );
                    for _ in 0..k {
                        if ready.len() as u32 <= engine.config().min_pool_size() {
                            break;
                        }
                        if let Some(slice) = ready.pop() {
                            draining.schedule(now + DRAIN_DELAY, slice);
                        }
                    }
                }
                ScalingDecision::Hold => {}
            }
        }

        // 5. Metrics. Cap_prov counts ready capacity (the paper's "recorded
        // capacity provisioned").
        let minute = now.as_minutes_f64() as u64;
        let req_min = app.req_min(rate, minute);
        meter.record(now, req_min, f64::from(ready.len() as u32));
        if now >= next_minute_sample {
            capacity_series.push(now, f64::from(ready.len() as u32));
            req_series.push(now, req_min);
            load_series.push(now, rate);
            next_minute_sample = now + SimDuration::from_minutes(1);
        }

        now += config.tick;
    }

    ExperimentResult {
        config: config.clone(),
        agility: meter.finish(),
        provisioning: prov.finish(end),
        capacity_series,
        req_min_series: req_series,
        workload_series: load_series,
        trace_dropped: trace_sink.as_ref().map_or(0, |sink| sink.dropped()),
        trace: trace_sink.map_or_else(Vec::new, |sink| sink.snapshot()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(app: AppKind, pattern: PatternKind, dep: Deployment) -> ExperimentResult {
        run_experiment(&ExperimentConfig::paper(app, pattern, dep))
    }

    #[test]
    fn csv_export_is_well_formed() {
        let r = run(AppKind::Paxos, PatternKind::Abrupt, Deployment::ElasticRmi);
        let csv = r.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("minute,workload,req_min,capacity,agility")
        );
        let n = lines.clone().count();
        assert!(
            n >= 440,
            "one row per minute of the 450-minute run, got {n}"
        );
        for line in lines {
            assert_eq!(line.split(',').count(), 5, "bad row: {line}");
        }
    }

    #[test]
    fn trace_flag_records_the_control_plane() {
        let mut config =
            ExperimentConfig::paper(AppKind::Paxos, PatternKind::Abrupt, Deployment::ElasticRmi);
        config.trace = true;
        let r = run_experiment(&config);
        assert!(
            r.trace
                .iter()
                .any(|rec| matches!(rec.event, TraceEvent::MemberJoined { .. })),
            "initial provisioning must be traced"
        );
        assert!(
            r.trace.iter().any(
                |rec| matches!(rec.event, TraceEvent::ScaleDecision { delta, .. } if delta > 0)
            ),
            "an abrupt workload must trigger a traced grow decision"
        );
        // Off by default: no records, no cost.
        let quiet = run_experiment(&ExperimentConfig::paper(
            AppKind::Paxos,
            PatternKind::Abrupt,
            Deployment::ElasticRmi,
        ));
        assert!(quiet.trace.is_empty());
    }

    #[test]
    fn experiments_are_deterministic() {
        let a = run(AppKind::Paxos, PatternKind::Abrupt, Deployment::ElasticRmi);
        let b = run(AppKind::Paxos, PatternKind::Abrupt, Deployment::ElasticRmi);
        assert_eq!(a.agility.mean_agility(), b.agility.mean_agility());
        assert_eq!(a.capacity_series, b.capacity_series);
    }

    #[test]
    fn elastic_rmi_beats_cloudwatch_on_agility() {
        // The paper's headline: 3.4x (Marketcetera) to 7.2x (DCS) better.
        for app in AppKind::ALL {
            let ermi = run(app, PatternKind::Abrupt, Deployment::ElasticRmi);
            let cw = run(app, PatternKind::Abrupt, Deployment::CloudWatch);
            assert!(
                cw.agility.mean_agility() > 1.5 * ermi.agility.mean_agility(),
                "{app}: CloudWatch {:.2} vs ElasticRMI {:.2}",
                cw.agility.mean_agility(),
                ermi.agility.mean_agility()
            );
        }
    }

    #[test]
    fn overprovisioning_has_worst_average_agility() {
        for pattern in [PatternKind::Abrupt, PatternKind::Cyclic] {
            let over = run(AppKind::Marketcetera, pattern, Deployment::Overprovision);
            for dep in [Deployment::ElasticRmi, Deployment::CloudWatch] {
                let other = run(AppKind::Marketcetera, pattern, dep);
                assert!(
                    over.agility.mean_agility() > other.agility.mean_agility(),
                    "{pattern}: overprovisioning {:.2} should exceed {dep} {:.2}",
                    over.agility.mean_agility(),
                    other.agility.mean_agility()
                );
            }
        }
    }

    #[test]
    fn overprovisioning_touches_zero_at_peak() {
        // §5.5: "its agility does reach zero at peak workload."
        let over = run(
            AppKind::Marketcetera,
            PatternKind::Abrupt,
            Deployment::Overprovision,
        );
        let min = over.agility.series().min().unwrap();
        assert!(
            min <= 1.0,
            "agility at peak should approach zero, min {min}"
        );
    }

    #[test]
    fn elastic_rmi_oscillates_toward_zero() {
        // §5.5: ElasticRMI's agility "is close to 1 most of the time" and
        // "oscillates between 0 and a positive value frequently". With a
        // 10-minute plot window the dips show up as windows well below the
        // mean, some touching (near) zero.
        let ermi = run(
            AppKind::Marketcetera,
            PatternKind::Abrupt,
            Deployment::ElasticRmi,
        );
        let mean = ermi.agility.mean_agility();
        let min = ermi.agility.series().min().unwrap();
        assert!((0.5..=2.5).contains(&mean), "mean agility {mean:.2}");
        assert!(
            min <= 0.5,
            "min windowed agility {min:.2} should dip near zero"
        );
    }

    #[test]
    fn cpumem_matches_cloudwatch_but_not_fine_grained() {
        // §5.5: "the agility of ElasticRMI-CPUMem is approximately equal to
        // CloudWatch" (same conditions, provisioning difference hidden by
        // the sampling interval).
        let cpumem = run(
            AppKind::Hedwig,
            PatternKind::Abrupt,
            Deployment::ElasticRmiCpuMem,
        );
        let cw = run(AppKind::Hedwig, PatternKind::Abrupt, Deployment::CloudWatch);
        let ermi = run(AppKind::Hedwig, PatternKind::Abrupt, Deployment::ElasticRmi);
        let ratio = cpumem.agility.mean_agility() / cw.agility.mean_agility();
        assert!(
            (0.5..=2.0).contains(&ratio),
            "CPUMem {:.2} vs CloudWatch {:.2}",
            cpumem.agility.mean_agility(),
            cw.agility.mean_agility()
        );
        assert!(cpumem.agility.mean_agility() > 1.5 * ermi.agility.mean_agility());
    }

    #[test]
    fn elastic_rmi_provisions_in_under_thirty_seconds() {
        // Fig. 8: "provisioning latency of ElasticRMI is less than 30
        // seconds in all cases."
        for app in AppKind::ALL {
            let r = run(app, PatternKind::Abrupt, Deployment::ElasticRmi);
            let max = r.provisioning.max_latency().expect("scaling happened");
            assert!(
                max < SimDuration::from_secs(30),
                "{app}: max provisioning latency {max}"
            );
        }
    }

    #[test]
    fn cloudwatch_provisions_in_minutes() {
        let r = run(AppKind::Dcs, PatternKind::Abrupt, Deployment::CloudWatch);
        let mean = r.provisioning.mean_latency().expect("scaling happened");
        assert!(mean >= SimDuration::from_minutes(3), "mean {mean}");
    }

    #[test]
    fn overprovisioning_has_zero_provisioning_latency() {
        let r = run(
            AppKind::Paxos,
            PatternKind::Cyclic,
            Deployment::Overprovision,
        );
        // Only the initial (instant) provisioning occurred.
        if let Some(max) = r.provisioning.max_latency() {
            assert_eq!(max, SimDuration::ZERO);
        }
    }

    #[test]
    fn capacity_tracks_workload_for_elastic_rmi() {
        let r = run(AppKind::Dcs, PatternKind::Cyclic, Deployment::ElasticRmi);
        // At the end of a cyclic run the workload is back near the trough;
        // an elastic deployment must have scaled most capacity away.
        let final_cap = r.capacity_series.samples().last().unwrap().1;
        let peak_cap = r.capacity_series.max().unwrap();
        assert!(
            final_cap < peak_cap / 2.0,
            "final {final_cap} vs peak {peak_cap}"
        );
    }
}
