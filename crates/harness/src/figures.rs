//! Figure regeneration: one function per figure of the paper's evaluation.
//!
//! Every function returns the figure's data as aligned text columns — the
//! same series the paper plots — so the `figures` binary (and EXPERIMENTS.md)
//! can diff our shape against the paper's.

use erm_apps::AppKind;
use erm_sim::TimeSeries;
use erm_workloads::{PatternKind, Workload, WorkloadBuilder};

use crate::deployment::Deployment;
use crate::experiment::{run_experiment, ExperimentConfig, ExperimentResult};

/// Identifies a figure of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureId {
    /// Fig. 7a — the abrupt workload pattern.
    F7a,
    /// Fig. 7b — the cyclic workload pattern.
    F7b,
    /// Fig. 7c–7j — agility over time for one (app, pattern).
    Agility(AppKind, PatternKind),
    /// Fig. 8a/8b — provisioning latency for all apps under one pattern.
    Provisioning(PatternKind),
}

impl FigureId {
    /// Parses ids like `7a`, `7c`, `8b`.
    pub fn parse(s: &str) -> Option<FigureId> {
        Some(match s.to_ascii_lowercase().as_str() {
            "7a" => FigureId::F7a,
            "7b" => FigureId::F7b,
            "7c" => FigureId::Agility(AppKind::Marketcetera, PatternKind::Abrupt),
            "7d" => FigureId::Agility(AppKind::Marketcetera, PatternKind::Cyclic),
            "7e" => FigureId::Agility(AppKind::Hedwig, PatternKind::Abrupt),
            "7f" => FigureId::Agility(AppKind::Hedwig, PatternKind::Cyclic),
            "7g" => FigureId::Agility(AppKind::Paxos, PatternKind::Abrupt),
            "7h" => FigureId::Agility(AppKind::Paxos, PatternKind::Cyclic),
            "7i" => FigureId::Agility(AppKind::Dcs, PatternKind::Abrupt),
            "7j" => FigureId::Agility(AppKind::Dcs, PatternKind::Cyclic),
            "8a" => FigureId::Provisioning(PatternKind::Abrupt),
            "8b" => FigureId::Provisioning(PatternKind::Cyclic),
            _ => return None,
        })
    }

    /// All figure ids in paper order.
    pub fn all() -> Vec<(String, FigureId)> {
        [
            "7a", "7b", "7c", "7d", "7e", "7f", "7g", "7h", "7i", "7j", "8a", "8b",
        ]
        .iter()
        .map(|s| (s.to_string(), FigureId::parse(s).expect("known id")))
        .collect()
    }

    /// Renders the figure's data as text.
    pub fn render(self, seed: u64) -> String {
        match self {
            FigureId::F7a => render_workload(PatternKind::Abrupt),
            FigureId::F7b => render_workload(PatternKind::Cyclic),
            FigureId::Agility(app, pattern) => render_agility(app, pattern, seed),
            FigureId::Provisioning(pattern) => render_provisioning(pattern, seed),
        }
    }
}

fn workload_for(pattern: PatternKind) -> Workload {
    // Unit peak: the pattern is what matters, "the specific values of
    // Points A and B are immaterial" (§5.3).
    WorkloadBuilder::new(pattern, 100.0).build()
}

fn render_workload(pattern: PatternKind) -> String {
    let w = workload_for(pattern);
    let mut out = String::new();
    out.push_str(&format!(
        "# Fig. {} — {} workload pattern (% of peak vs minutes)\n",
        if pattern == PatternKind::Abrupt {
            "7a"
        } else {
            "7b"
        },
        pattern
    ));
    out.push_str(&format!("{:>8} {:>10}\n", "min", "load%"));
    for (t, rate) in w.sample(erm_sim::SimDuration::from_minutes(10)) {
        out.push_str(&format!("{:>8.0} {:>10.1}\n", t.as_minutes_f64(), rate));
    }
    out.push_str(&sparkline(
        &w.sample(erm_sim::SimDuration::from_minutes(5))
            .iter()
            .map(|&(_, v)| v)
            .collect::<Vec<_>>(),
    ));
    out
}

/// Runs the four deployments for one agility panel.
pub fn agility_results(app: AppKind, pattern: PatternKind, seed: u64) -> Vec<ExperimentResult> {
    Deployment::ALL
        .iter()
        .map(|&deployment| {
            let mut config = ExperimentConfig::paper(app, pattern, deployment);
            config.seed = seed;
            run_experiment(&config)
        })
        .collect()
}

fn render_agility(app: AppKind, pattern: PatternKind, seed: u64) -> String {
    let results = agility_results(app, pattern, seed);
    let mut out = String::new();
    out.push_str(&format!(
        "# Agility vs time — {app}, {pattern} workload (10-minute samples)\n"
    ));
    out.push_str(&format!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}\n",
        "min", "ElasticRMI", "ERMI-CPUMem", "CloudWatch", "Overprov"
    ));
    let series: Vec<&TimeSeries> = results.iter().map(|r| r.agility.series()).collect();
    let longest = series.iter().map(|s| s.len()).max().unwrap_or(0);
    for i in 0..longest {
        let t = series
            .iter()
            .find_map(|s| s.samples().get(i).map(|&(t, _)| t));
        let Some(t) = t else { break };
        out.push_str(&format!("{:>6.0}", t.as_minutes_f64()));
        for s in &series {
            match s.samples().get(i) {
                Some(&(_, v)) => out.push_str(&format!(" {v:>12.2}")),
                None => out.push_str(&format!(" {:>12}", "-")),
            }
        }
        out.push('\n');
    }
    out.push_str("# mean agility: ");
    for r in &results {
        out.push_str(&format!(
            "{}={:.2}  ",
            r.config.deployment,
            r.agility.mean_agility()
        ));
    }
    out.push('\n');
    for r in &results {
        let values: Vec<f64> = r.agility.series().iter().map(|(_, v)| v).collect();
        out.push_str(&format!("# {:<18} ", r.config.deployment.to_string()));
        out.push_str(&sparkline(&values));
    }
    out
}

fn render_provisioning(pattern: PatternKind, seed: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# Fig. {} — ElasticRMI provisioning latency (s) vs time, {pattern} workload\n",
        if pattern == PatternKind::Abrupt {
            "8a"
        } else {
            "8b"
        }
    ));
    out.push_str(
        "# Overprovisioning is identically 0; CloudWatch (minutes) omitted as in the paper.\n",
    );
    for app in AppKind::ALL {
        let mut config = ExperimentConfig::paper(app, pattern, Deployment::ElasticRmi);
        config.seed = seed;
        let r = run_experiment(&config);
        out.push_str(&format!("## {app}\n"));
        out.push_str(&format!("{:>8} {:>12}\n", "min", "latency_s"));
        for (t, v) in r.provisioning.series().iter() {
            out.push_str(&format!("{:>8.1} {:>12.1}\n", t.as_minutes_f64(), v));
        }
        out.push_str(&format!(
            "## {app} mean={:.1}s max={:.1}s events={}\n",
            r.provisioning
                .mean_latency()
                .map_or(0.0, |d| d.as_secs_f64()),
            r.provisioning
                .max_latency()
                .map_or(0.0, |d| d.as_secs_f64()),
            r.provisioning.events(),
        ));
    }
    out
}

/// Renders values as a one-line unicode sparkline — a quick visual check
/// that a regenerated series has the paper's shape.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-9);
    let mut out = String::with_capacity(values.len() + 1);
    for &v in values {
        let idx = (((v - min) / span) * 7.0).round() as usize;
        out.push(BARS[idx.min(7)]);
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_id_parses() {
        assert_eq!(FigureId::all().len(), 12);
        assert!(FigureId::parse("7z").is_none());
        assert_eq!(
            FigureId::parse("8A"),
            Some(FigureId::Provisioning(PatternKind::Abrupt))
        );
    }

    #[test]
    fn workload_figures_render() {
        let text = FigureId::F7a.render(7);
        assert!(text.contains("abrupt"));
        // 450 minutes at 10-minute steps -> 46 data lines.
        assert!(text.lines().count() > 40);
    }

    #[test]
    fn agility_figure_has_four_series() {
        let text = FigureId::Agility(AppKind::Paxos, PatternKind::Abrupt).render(7);
        assert!(text.contains("ElasticRMI") && text.contains("Overprov"));
        assert!(text.contains("mean agility"));
    }

    #[test]
    fn provisioning_figure_covers_all_apps() {
        let text = FigureId::Provisioning(PatternKind::Cyclic).render(7);
        for app in AppKind::ALL {
            assert!(text.contains(&format!("## {app}")), "{app} missing");
        }
    }

    #[test]
    fn sparkline_is_len_preserving() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.trim_end().chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.trim_end().ends_with('█'));
    }

    #[test]
    fn sparkline_of_empty_is_empty() {
        assert!(sparkline(&[]).is_empty());
    }
}
