//! Scalability analysis (paper §5.1's distinction, §4.1's caveat).
//!
//! The paper separates *scalability* — throughput growing with resources —
//! from *elasticity*, and warns that shared state limits the former:
//! "Increasing shared state increases latency due to the network delays
//! involved in accessing HyperDex. Having shared state and mutual exclusion
//! through locks or synchronized methods further decreases parallelism."
//!
//! This module quantifies that caveat with a closed-form throughput model
//! per pool size, parameterized by each application's shared-state profile,
//! and the `figures --ablation`/bench targets print the resulting
//! throughput-vs-pool-size curves.

use erm_apps::{AppKind, AppModel};
use serde::Serialize;

/// How much of an application's work touches shared state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SharedStateProfile {
    /// Fraction of each request's service time spent in store round-trips
    /// (serial, but concurrent across members).
    pub store_fraction: f64,
    /// Fraction of each request executed under the class-wide lock
    /// (serial across the whole pool — the Amdahl term).
    pub locked_fraction: f64,
}

impl SharedStateProfile {
    /// Profile for one of the four applications, from how each was built in
    /// `erm-apps`:
    ///
    /// * Marketcetera: two store puts per route, no class lock.
    /// * Hedwig: store-heavy fan-out, no class lock.
    /// * Paxos: acceptor cells in the store (two phases), no class lock.
    /// * DCS: every update runs `synchronized` to stamp its zxid.
    pub fn for_app(kind: AppKind) -> SharedStateProfile {
        match kind {
            AppKind::Marketcetera => SharedStateProfile {
                store_fraction: 0.25,
                locked_fraction: 0.0,
            },
            AppKind::Hedwig => SharedStateProfile {
                store_fraction: 0.40,
                locked_fraction: 0.0,
            },
            AppKind::Paxos => SharedStateProfile {
                store_fraction: 0.55,
                locked_fraction: 0.0,
            },
            AppKind::Dcs => SharedStateProfile {
                store_fraction: 0.30,
                locked_fraction: 0.08,
            },
        }
    }
}

/// One point of a throughput-vs-pool-size curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ScalabilityPoint {
    /// Pool size.
    pub pool_size: u32,
    /// Sustained throughput (events/second) at that size.
    pub throughput: f64,
    /// Throughput relative to `pool_size ×` single-object throughput
    /// (1.0 = perfectly linear scaling).
    pub efficiency: f64,
}

/// Computes the throughput-vs-size curve for an application.
///
/// Model: a request costs `1/c` seconds of member time, of which
/// `locked_fraction` must execute under the single class lock (an Amdahl
/// bottleneck shared by all members) and `store_fraction` is store work
/// whose latency rises with offered load on the store (one node per 8
/// members, matching the runtime's auto-scaling rule).
pub fn scalability_curve(app: &AppModel, sizes: &[u32]) -> Vec<ScalabilityPoint> {
    let profile = SharedStateProfile::for_app(app.kind);
    let single = throughput_at(app, &profile, 1);
    sizes
        .iter()
        .map(|&n| {
            let throughput = throughput_at(app, &profile, n);
            ScalabilityPoint {
                pool_size: n,
                throughput,
                efficiency: if n == 0 {
                    0.0
                } else {
                    throughput / (single * f64::from(n))
                },
            }
        })
        .collect()
}

fn throughput_at(app: &AppModel, profile: &SharedStateProfile, n: u32) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n_f = f64::from(n);
    // Store contention: nodes scale 1 per 8 members, so per-request store
    // time inflates as members-per-node grows.
    let store_nodes = 1.0 + (n_f / 8.0).floor();
    let members_per_node = n_f / store_nodes;
    let store_inflation = 1.0 + 0.05 * (members_per_node - 1.0).max(0.0);
    // Effective per-request service time (seconds) at one member.
    let base = 1.0 / app.per_object_capacity;
    let service = base
        * ((1.0 - profile.store_fraction - profile.locked_fraction)
            + profile.store_fraction * store_inflation);
    let member_limit = n_f / service;
    if profile.locked_fraction == 0.0 {
        return member_limit;
    }
    // The class lock serializes `locked_fraction` of every request across
    // the pool: a hard pool-wide ceiling of 1/(base * locked_fraction).
    let lock_limit = 1.0 / (base * profile.locked_fraction);
    member_limit.min(lock_limit)
}

/// Renders the curves for all four applications as aligned text.
pub fn render_scalability() -> String {
    let sizes: Vec<u32> = vec![1, 2, 4, 8, 16, 32];
    let mut out = String::new();
    out.push_str("# Throughput vs pool size (events/s) and scaling efficiency\n");
    out.push_str(
        "# (\"having shared state and mutual exclusion ... decreases parallelism\", \u{a7}4.1)\n",
    );
    for app in AppKind::ALL {
        let model = app.model();
        out.push_str(&format!("## {app}\n"));
        out.push_str(&format!(
            "{:>6} {:>14} {:>12}\n",
            "size", "throughput", "efficiency"
        ));
        for point in scalability_curve(&model, &sizes) {
            out.push_str(&format!(
                "{:>6} {:>14.0} {:>11.0}%\n",
                point.pool_size,
                point.throughput,
                point.efficiency * 100.0
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_increases_with_size() {
        for app in AppKind::ALL {
            let curve = scalability_curve(&app.model(), &[1, 2, 4, 8]);
            for pair in curve.windows(2) {
                assert!(
                    pair[1].throughput >= pair[0].throughput,
                    "{app}: throughput must be monotone in pool size"
                );
            }
        }
    }

    #[test]
    fn efficiency_never_exceeds_linear() {
        for app in AppKind::ALL {
            for point in scalability_curve(&app.model(), &[1, 2, 4, 8, 16, 32]) {
                assert!(
                    point.efficiency <= 1.0 + 1e-9,
                    "{app}: superlinear scaling is a bug"
                );
            }
        }
    }

    #[test]
    fn lock_bound_app_saturates() {
        // DCS's synchronized zxid stamping imposes an Amdahl ceiling; at 32
        // members it must be visibly below linear while Marketcetera stays
        // near-linear.
        let dcs = scalability_curve(&AppKind::Dcs.model(), &[32]);
        let mkt = scalability_curve(&AppKind::Marketcetera.model(), &[32]);
        assert!(
            dcs[0].efficiency < 0.7,
            "DCS at 32 members should be lock-bound, efficiency {:.2}",
            dcs[0].efficiency
        );
        assert!(
            mkt[0].efficiency > dcs[0].efficiency,
            "lock-free routing must scale better than total ordering"
        );
    }

    #[test]
    fn single_member_is_reference_efficiency() {
        for app in AppKind::ALL {
            let curve = scalability_curve(&app.model(), &[1]);
            assert!((curve[0].efficiency - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn render_covers_all_apps() {
        let text = render_scalability();
        for app in AppKind::ALL {
            assert!(text.contains(&format!("## {app}")));
        }
    }
}
