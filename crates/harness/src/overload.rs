//! Overload experiment: admission control vs. an unbounded FIFO run queue.
//!
//! Drives one *real* [`Skeleton`] — the production ingest/cull/dispatch
//! machinery, not a model of it — through a point-A workload that doubles
//! for a burst window while the pool is pinned (no scaling). The experiment
//! is a discrete-event simulation on a [`VirtualClock`]: the hosted service
//! advances the clock by each request's service time, so queueing delay,
//! deadline expiry, and `Overloaded` retry hints all unfold in exact virtual
//! time and the whole run is deterministic for a given seed.
//!
//! Two configurations matter:
//!
//! * **baseline** — the legacy unbounded FIFO queue and no client limiter:
//!   during the burst the backlog grows until every dispatched request has
//!   already spent most of its deadline waiting, so the member does work
//!   whose results arrive too late (goodput collapse).
//! * **admission** — a bounded deadline-aware (EDF) run queue plus a
//!   client-side AIMD limiter: excess load is refused *early* with an
//!   explicit retry hint, queued work stays young enough to finish inside
//!   its deadline, and goodput holds near capacity through the burst.

use std::collections::HashMap;
use std::sync::atomic::AtomicU32;
use std::sync::Arc;

use elasticrmi::{
    AdmissionConfig, AimdConfig, AimdLimiter, ElasticService, InvocationContext, RemoteError,
    RmiMessage, ServiceContext, Skeleton,
};
use erm_kvstore::{Store, StoreConfig};
use erm_metrics::{AdmissionStats, TraceHandle};
use erm_sim::{seeded_rng, Clock, SharedClock, SimDuration, SimTime, VirtualClock};
use erm_transport::{Host, InProcNetwork};
use rand::Rng;

/// One overload run: a pinned single-member pool under a rate step.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Seed for arrival spacing and service-time jitter.
    pub seed: u64,
    /// Run-queue bound and discipline; `None` is the legacy unbounded FIFO.
    pub admission: Option<AdmissionConfig>,
    /// Client-side AIMD limiter; `None` sends every arrival.
    pub limiter: Option<AimdConfig>,
    /// Mean service time per request (±20 % seeded jitter).
    pub service_mean: SimDuration,
    /// Per-request deadline budget from arrival.
    pub deadline_budget: SimDuration,
    /// Offered load outside the burst window, requests per second.
    pub base_rate: f64,
    /// Rate multiplier during the burst window.
    pub burst_multiplier: f64,
    /// Duration at `base_rate` before the burst.
    pub warmup: SimDuration,
    /// Duration of the burst.
    pub burst: SimDuration,
    /// Duration at `base_rate` after the burst.
    pub recovery: SimDuration,
}

impl OverloadConfig {
    /// The unbounded-FIFO baseline: point-A load (80 % of one member's
    /// ~100 req/s capacity) with a 2x burst, no admission control, no
    /// client limiter.
    pub fn baseline(seed: u64) -> Self {
        OverloadConfig {
            seed,
            admission: None,
            limiter: None,
            service_mean: SimDuration::from_millis(10),
            deadline_budget: SimDuration::from_millis(250),
            base_rate: 80.0,
            burst_multiplier: 2.0,
            warmup: SimDuration::from_secs(2),
            burst: SimDuration::from_secs(4),
            recovery: SimDuration::from_secs(2),
        }
    }

    /// The same workload with the admission stack on: a deadline-aware
    /// run queue bounded at 8 entries plus a default AIMD client limiter.
    pub fn with_admission(seed: u64) -> Self {
        OverloadConfig {
            admission: Some(AdmissionConfig::edf(8)),
            limiter: Some(AimdConfig::default()),
            ..Self::baseline(seed)
        }
    }
}

/// Where every offered request ended up, plus the queue-delay signal.
///
/// Conservation invariant: `offered == goodput + late + expired + rejected
/// + throttled` — nothing is lost or double-counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverloadResult {
    /// Requests the workload generated.
    pub offered: u64,
    /// Completed successfully within their deadline.
    pub goodput: u64,
    /// Completed successfully but after the deadline: wasted server work.
    pub late: u64,
    /// Answered with a deadline-exceeded error (culled or dead on arrival).
    pub expired: u64,
    /// Refused with an `Overloaded` rejection (full run queue).
    pub rejected: u64,
    /// Dropped at the client by the AIMD limiter before any send.
    pub throttled: u64,
    /// Worst burst-interval p99 queueing delay reported via `LoadReport`.
    pub queue_delay_p99: SimDuration,
    /// The member's own admit/reject/cull/shed tallies.
    pub admission: AdmissionStats,
}

/// The hosted service: does no computation, but *occupies* the member for
/// the request's service time by advancing the shared virtual clock.
struct TimedService {
    clock: Arc<VirtualClock>,
    rng: rand::rngs::StdRng,
    mean: SimDuration,
}

impl ElasticService for TimedService {
    fn dispatch(
        &mut self,
        _method: &str,
        _args: &[u8],
        _ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError> {
        let factor: f64 = self.rng.gen_range(0.8..=1.2);
        let busy = SimDuration::from_micros((self.mean.as_micros() as f64 * factor) as u64);
        self.clock.advance(busy);
        Ok(Vec::new())
    }
}

/// Runs one configuration to completion and accounts for every request.
pub fn run_overload(config: &OverloadConfig) -> OverloadResult {
    let net = InProcNetwork::new();
    let (member_ep, member_mb) = net.open();
    let (client_ep, client_mb) = net.open();
    let (runtime_ep, _runtime_mb) = net.open();
    let clock = Arc::new(VirtualClock::new());
    let ctx = ServiceContext::new(
        Arc::new(Store::new(StoreConfig::default())),
        "Overload",
        0,
        Arc::<VirtualClock>::clone(&clock) as SharedClock,
        Arc::new(AtomicU32::new(1)),
    );
    let service = TimedService {
        clock: Arc::clone(&clock),
        rng: seeded_rng(config.seed ^ 0x5e51_1ce0),
        mean: config.service_mean,
    };
    let mut skeleton = Skeleton::new(
        0,
        member_ep,
        runtime_ep,
        Arc::new(net.clone()),
        Arc::<VirtualClock>::clone(&clock) as SharedClock,
        Box::new(service),
        ctx,
        TraceHandle::disabled(),
        config.admission,
    );
    let limiter = config.limiter.map(AimdLimiter::new);

    // Pre-compute the arrival schedule so the event loop has no RNG state
    // of its own: spacing is 1/rate with ±50 % seeded jitter, rate doubled
    // inside the burst window.
    let mut rng = seeded_rng(config.seed);
    let end = SimTime::ZERO + config.warmup + config.burst + config.recovery;
    let burst_from = SimTime::ZERO + config.warmup;
    let burst_to = burst_from + config.burst;
    let mut schedule: Vec<SimTime> = Vec::new();
    let mut t = SimTime::ZERO;
    loop {
        let rate = if t >= burst_from && t < burst_to {
            config.base_rate * config.burst_multiplier
        } else {
            config.base_rate
        };
        let gap: f64 = 1_000_000.0 / rate * rng.gen_range(0.5..=1.5);
        t += SimDuration::from_micros(gap as u64);
        if t >= end {
            break;
        }
        schedule.push(t);
    }

    let mut result = OverloadResult {
        offered: schedule.len() as u64,
        ..OverloadResult::default()
    };
    let mut deadlines: HashMap<u64, SimTime> = HashMap::new();
    let mut p99_us: u64 = 0;
    let poll_every = SimDuration::from_secs(1);
    let mut next_poll = SimTime::ZERO + poll_every;
    let mut next_call: u64 = 0;
    let mut arrivals = schedule.into_iter().peekable();

    let drain = |result: &mut OverloadResult,
                 deadlines: &mut HashMap<u64, SimTime>,
                 p99_us: &mut u64,
                 now: SimTime| {
        while let Ok(d) = client_mb.try_recv() {
            match RmiMessage::decode(&d.payload) {
                Ok(RmiMessage::Response {
                    replayed: _,
                    call,
                    outcome,
                }) => {
                    if let Some(l) = &limiter {
                        l.release();
                    }
                    let deadline = deadlines.remove(&call).unwrap_or(SimTime::ZERO);
                    match outcome {
                        Ok(_) if now <= deadline => {
                            result.goodput += 1;
                            if let Some(l) = &limiter {
                                l.on_success();
                            }
                        }
                        Ok(_) => {
                            result.late += 1;
                            if let Some(l) = &limiter {
                                l.on_congestion(now, None);
                            }
                        }
                        Err(_) => {
                            result.expired += 1;
                            if let Some(l) = &limiter {
                                l.on_congestion(now, None);
                            }
                        }
                    }
                }
                Ok(RmiMessage::Overloaded {
                    call, retry_after, ..
                }) => {
                    deadlines.remove(&call);
                    result.rejected += 1;
                    if let Some(l) = &limiter {
                        l.release();
                        l.on_congestion(now, Some(retry_after));
                    }
                }
                Ok(RmiMessage::Load(report)) => {
                    *p99_us = (*p99_us).max(report.queue_delay_p99_us);
                }
                _ => {}
            }
        }
    };

    loop {
        let now = clock.now();
        drain(&mut result, &mut deadlines, &mut p99_us, now);
        // 1. Arrivals due now enter (or are throttled) before anything runs.
        if let Some(&at) = arrivals.peek() {
            if at <= now {
                arrivals.next();
                if let Some(l) = &limiter {
                    if !l.try_acquire(now) {
                        result.throttled += 1;
                        continue;
                    }
                }
                let call = next_call;
                next_call += 1;
                let deadline = now + config.deadline_budget;
                deadlines.insert(call, deadline);
                let context = InvocationContext {
                    semantics: elasticrmi::Semantics::AtLeastOnce,
                    id: call,
                    deadline,
                    attempt: 1,
                    origin: client_ep,
                };
                skeleton.ingest(
                    client_ep,
                    RmiMessage::Request {
                        call,
                        context,
                        method: "work".into(),
                        args: Vec::new(),
                    },
                    &member_mb,
                );
                continue;
            }
        }
        // 2. Burst-interval rollover: pull the load report (queue-delay
        //    percentiles) exactly like the sentinel's PollLoad would.
        if now >= next_poll {
            skeleton.ingest(client_ep, RmiMessage::PollLoad, &member_mb);
            next_poll += poll_every;
            continue;
        }
        // 3. Execute one admitted request (the service advances the clock)
        //    or cull expired ones.
        if skeleton.step() {
            continue;
        }
        // 4. Idle with an empty queue: jump to the next event.
        match arrivals.peek() {
            Some(&at) => clock.advance_to(at.min(next_poll)),
            None => break,
        }
    }
    // Flush the final burst interval and any unread replies.
    skeleton.ingest(client_ep, RmiMessage::PollLoad, &member_mb);
    drain(&mut result, &mut deadlines, &mut p99_us, clock.now());
    debug_assert!(deadlines.is_empty(), "every sent request must be answered");
    result.queue_delay_p99 = SimDuration::from_micros(p99_us);
    result.admission = skeleton.admission_stats();
    result
}

/// Renders the baseline-vs-admission comparison for `figures --overload`.
pub fn render_overload(seed: u64) -> String {
    let baseline = run_overload(&OverloadConfig::baseline(seed));
    let admission = run_overload(&OverloadConfig::with_admission(seed));
    let mut out = String::new();
    out.push_str(&format!(
        "Overload run (seed {seed}): 2x point-A burst, pool pinned at 1 member\n\
         (capacity ~100 req/s, deadline 250 ms; admission = EDF queue bound 8 + AIMD client limiter)\n\n"
    ));
    out.push_str(&format!(
        "{:<26} {:>12} {:>12}\n",
        "", "unbounded", "admission"
    ));
    let row = |name: &str, b: u64, a: u64| format!("{name:<26} {b:>12} {a:>12}\n");
    out.push_str(&row("offered", baseline.offered, admission.offered));
    out.push_str(&row(
        "goodput (on-time)",
        baseline.goodput,
        admission.goodput,
    ));
    out.push_str(&row("late (wasted work)", baseline.late, admission.late));
    out.push_str(&row("expired", baseline.expired, admission.expired));
    out.push_str(&row(
        "rejected (Overloaded)",
        baseline.rejected,
        admission.rejected,
    ));
    out.push_str(&row(
        "throttled (client)",
        baseline.throttled,
        admission.throttled,
    ));
    out.push_str(&format!(
        "{:<26} {:>10}ms {:>10}ms\n",
        "queue-delay p99",
        baseline.queue_delay_p99.as_micros() / 1_000,
        admission.queue_delay_p99.as_micros() / 1_000,
    ));
    out.push_str(&format!(
        "\ngoodput ratio: {:.2}x\n",
        admission.goodput as f64 / baseline.goodput.max(1) as f64
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_every_request_is_accounted_for() {
        for config in [
            OverloadConfig::baseline(7),
            OverloadConfig::with_admission(7),
        ] {
            let r = run_overload(&config);
            assert_eq!(
                r.offered,
                r.goodput + r.late + r.expired + r.rejected + r.throttled,
                "lost or duplicated requests in {r:?}"
            );
        }
    }

    #[test]
    fn run_is_deterministic_for_a_seed() {
        let a = run_overload(&OverloadConfig::with_admission(99));
        let b = run_overload(&OverloadConfig::with_admission(99));
        assert_eq!(a, b);
    }

    #[test]
    fn baseline_wastes_work_during_the_burst() {
        let r = run_overload(&OverloadConfig::baseline(7));
        assert!(
            r.late + r.expired > r.offered / 4,
            "unbounded FIFO should waste a large share under 2x load: {r:?}"
        );
    }
}
