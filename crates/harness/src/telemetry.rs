//! Fully-instrumented elastic overload run: the telemetry showcase.
//!
//! Where [`crate::overload`] pins the pool at one member to isolate
//! admission control, this module runs the *same* burst workload against a
//! pool that is allowed to scale — with every telemetry layer switched on
//! at once:
//!
//! * a [`TraceSink`] shared by the skeleton, the scaling driver, and the
//!   cluster manager, so the event stream contains complete invocation
//!   *and* control-plane histories;
//! * a metrics [`Registry`](erm_metrics::Registry) with the skeleton's
//!   `skeleton.queue.delay`, the kvstore's `kv.lock.wait`/`kv.lock.hold`,
//!   and the cluster's `cluster.provision.latency` instruments installed,
//!   snapshotted at every burst interval;
//! * [`SpanBuilder`] reconstruction of both span kinds, exported as a
//!   Chrome/Perfetto `trace_event` JSON document and a CSV time series;
//! * a **why-scaled** report attributing every pool-size change to the
//!   sample that triggered it, the rule and threshold that fired, the
//!   resource-offer round trip, and the symptom-to-capacity lag (recorded
//!   into the `scaling.decision.lag` histogram).
//!
//! The run is a single-threaded discrete-event simulation on a
//! [`VirtualClock`] and is deterministic for a given seed. One real
//! [`Skeleton`] hosts the service; added pool members are emulated by
//! dividing the service time by the live pool size (the load-sharing
//! effect of a bigger pool), so the scaling loop sees honest load signals
//! without spinning up threads.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use elasticrmi::{
    AdmissionConfig, ElasticService, InvocationContext, PoolConfig, PoolSample, RemoteError,
    RmiMessage, ScalingDecision, ScalingEngine, ScalingPolicy, ServiceContext, Skeleton,
};
use erm_cluster::{ClusterConfig, LatencyModel, ResourceManager, SliceGrant};
use erm_kvstore::{LockOwner, Store, StoreConfig};
use erm_metrics::{
    chrome_trace, snapshots_to_csv, DecisionSpan, InvocationOutcome, InvocationSpan, MetricsHandle,
    RegistrySnapshot, SpanBuilder, TraceEvent, TraceHandle, TraceSink,
};
use erm_sim::{seeded_rng, Clock, SharedClock, SimDuration, SimTime, VirtualClock};
use erm_transport::{EndpointId, Host, InProcNetwork, Mailbox};
use rand::Rng;

/// Class name shared by the skeleton, the store lock, and the pool config.
const CLASS: &str = "Overload";

/// Owner id the phantom contender uses for periodic lock pressure.
const CONTENDER: LockOwner = LockOwner::new(999);

/// Artifacts of one instrumented elastic overload run.
#[derive(Debug, Clone)]
pub struct ElasticOverloadRun {
    /// The why-scaled report plus span and sink accounting.
    pub report: String,
    /// Chrome/Perfetto `trace_event` JSON of invocation + decision spans.
    pub trace_json: String,
    /// Registry snapshot time series rendered as CSV.
    pub metrics_csv: String,
    /// Invocation spans reconstructed from the trace.
    pub invocations: usize,
    /// Scaling-decision spans reconstructed from the trace.
    pub decisions: usize,
    /// Trace records evicted from the ring (zero means a complete trace).
    pub dropped: u64,
}

/// The hosted service: occupies the member for the request's service time
/// divided by the live pool size, and serializes each request briefly on
/// the class lock (the way a `synchronized` elastic method would) so the
/// `kv.lock.wait` / `kv.lock.hold` instruments see real traffic.
struct ElasticTimedService {
    clock: Arc<VirtualClock>,
    rng: rand::rngs::StdRng,
    mean: SimDuration,
    pool_size: Arc<AtomicU32>,
    store: Arc<Store>,
}

impl ElasticService for ElasticTimedService {
    fn dispatch(
        &mut self,
        _method: &str,
        _args: &[u8],
        _ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError> {
        let members = self.pool_size.load(Ordering::SeqCst).max(1);
        let factor: f64 = self.rng.gen_range(0.8..=1.2);
        let busy = SimDuration::from_micros(
            (self.mean.as_micros() as f64 * factor / f64::from(members)) as u64,
        );
        // Spin on the class lock advancing virtual time, not wall time:
        // `ServiceContext::synchronized` backs off with a real sleep, which
        // under a VirtualClock would never let a contender's TTL lapse.
        let owner = LockOwner::new(0);
        let ttl = SimDuration::from_secs(1);
        while !self.store.try_lock(CLASS, owner, self.clock.now(), ttl) {
            self.clock.advance(SimDuration::from_micros(200));
        }
        self.clock.advance(busy);
        let _ = self.store.unlock_at(CLASS, owner, self.clock.now());
        Ok(Vec::new())
    }
}

/// A client attempt awaiting its reply.
struct Pending {
    invocation: u64,
    attempt: u32,
    deadline: SimTime,
}

/// Emits the client-side `AttemptStarted` anchor and hands the request to
/// the skeleton.
#[allow(clippy::too_many_arguments)]
fn send_attempt(
    skeleton: &mut Skeleton,
    member_mb: &Mailbox,
    member_ep: EndpointId,
    client_ep: EndpointId,
    trace: &TraceHandle,
    pending: &mut HashMap<u64, Pending>,
    next_call: &mut u64,
    now: SimTime,
    invocation: u64,
    attempt: u32,
    deadline: SimTime,
) {
    let call = *next_call;
    *next_call += 1;
    trace.emit(
        now,
        TraceEvent::AttemptStarted {
            invocation,
            attempt,
            target: member_ep.0,
            deadline,
        },
    );
    pending.insert(
        call,
        Pending {
            invocation,
            attempt,
            deadline,
        },
    );
    skeleton.ingest(
        client_ep,
        RmiMessage::Request {
            call,
            context: InvocationContext {
                semantics: elasticrmi::Semantics::AtLeastOnce,
                id: invocation,
                deadline,
                attempt,
                origin: client_ep,
            },
            method: "work".into(),
            args: Vec::new(),
        },
        member_mb,
    );
}

/// Runs the instrumented elastic overload scenario to completion.
///
/// Timeline (all virtual): one member bootstraps, 3 s of warmup at 80 req/s,
/// a 6 s burst at 4x, 3 s of recovery. The scaling engine (implicit CPU
/// thresholds plus a 50 ms queue-delay bound, floor 2 / ceiling 6) is polled
/// every burst interval; grows go through the cluster manager's offer round
/// trip with 500 ms provisioning latency.
pub fn run_elastic_overload(seed: u64) -> ElasticOverloadRun {
    let net = InProcNetwork::new();
    let (member_ep, member_mb) = net.open();
    let (client_ep, client_mb) = net.open();
    let (runtime_ep, _runtime_mb) = net.open();
    let clock = Arc::new(VirtualClock::new());
    let sink = Arc::new(TraceSink::new(1 << 18));
    let trace = TraceHandle::new(Arc::clone(&sink));
    let (metrics, registry) = MetricsHandle::shared();

    let store = Arc::new(Store::new(StoreConfig::default()));
    store.install_lock_metrics(&metrics);

    let mut cluster = ResourceManager::new(ClusterConfig {
        nodes: 8,
        slices_per_node: 1,
        provisioning: LatencyModel::Fixed(SimDuration::from_millis(500)),
        ..ClusterConfig::default()
    });
    cluster.set_telemetry(trace.clone(), &metrics);

    let pool_size = Arc::new(AtomicU32::new(0));
    let ctx = ServiceContext::new(
        Arc::clone(&store),
        CLASS,
        0,
        Arc::<VirtualClock>::clone(&clock) as SharedClock,
        Arc::clone(&pool_size),
    );
    let service = ElasticTimedService {
        clock: Arc::clone(&clock),
        rng: seeded_rng(seed ^ 0x7e1e_0e17),
        mean: SimDuration::from_millis(10),
        pool_size: Arc::clone(&pool_size),
        store: Arc::clone(&store),
    };
    let mut skeleton = Skeleton::new(
        0,
        member_ep,
        runtime_ep,
        Arc::new(net.clone()),
        Arc::<VirtualClock>::clone(&clock) as SharedClock,
        Box::new(service),
        ctx,
        trace.clone(),
        Some(AdmissionConfig::edf(16)),
    );
    skeleton.set_metrics(&metrics);

    // Bootstrap: provision the floor of two members before traffic starts.
    // These offers precede any ScaleDecision, so span reconstruction leaves
    // them unattributed — exactly right for bootstrap capacity.
    let mut next_uid: u64 = 0;
    let mut live: Vec<(u64, SliceGrant)> = Vec::new();
    cluster
        .request_slices(2, clock.now())
        .expect("bootstrap slices");
    clock.advance_to(SimTime::ZERO + SimDuration::from_millis(500));
    for grant in cluster.poll_ready(clock.now()) {
        trace.emit(clock.now(), TraceEvent::MemberJoined { uid: next_uid });
        pool_size.fetch_add(1, Ordering::SeqCst);
        live.push((next_uid, grant));
        next_uid += 1;
    }

    let pool_config = PoolConfig::builder(CLASS)
        .min_pool_size(2)
        .max_pool_size(6)
        .policy(ScalingPolicy::Implicit)
        .queue_delay_grow_above(SimDuration::from_millis(50))
        .burst_interval(SimDuration::from_secs(1))
        .build()
        .expect("valid pool config");
    let mut engine = ScalingEngine::new(pool_config, clock.now());

    // Pre-computed arrival schedule: 80 req/s with ±50 % jitter, 4x inside
    // the burst window. Two members at 10 ms mean service ≈ 200 req/s
    // capacity, so the burst (320 req/s) forces growth.
    let start = clock.now();
    let warmup = SimDuration::from_secs(3);
    let burst = SimDuration::from_secs(6);
    let recovery = SimDuration::from_secs(3);
    let burst_from = start + warmup;
    let burst_to = burst_from + burst;
    let end = burst_to + recovery;
    let base_rate = 80.0;
    let mut rng = seeded_rng(seed);
    let mut schedule: Vec<SimTime> = Vec::new();
    let mut t = start;
    loop {
        let rate = if t >= burst_from && t < burst_to {
            base_rate * 4.0
        } else {
            base_rate
        };
        let gap: f64 = 1_000_000.0 / rate * rng.gen_range(0.5..=1.5);
        t += SimDuration::from_micros(gap as u64);
        if t >= end {
            break;
        }
        schedule.push(t);
    }

    let deadline_budget = SimDuration::from_millis(250);
    let poll_every = SimDuration::from_secs(1);
    let mut next_poll = start + poll_every;
    let mut next_call: u64 = 0;
    let mut next_invocation: u64 = 0;
    let mut pending: HashMap<u64, Pending> = HashMap::new();
    // (due, invocation, next attempt, deadline) for Overloaded retries.
    let mut retries: Vec<(SimTime, u64, u32, SimTime)> = Vec::new();
    let mut last_report = None;
    let mut snapshots: Vec<RegistrySnapshot> = vec![registry.snapshot(start)];
    let mut arrivals = schedule.into_iter().peekable();

    loop {
        let now = clock.now();
        // 1. Drain replies: close invocation spans, schedule retries.
        while let Ok(d) = client_mb.try_recv() {
            match RmiMessage::decode(&d.payload) {
                Ok(RmiMessage::Response {
                    replayed: _,
                    call,
                    outcome,
                }) => {
                    if let Some(p) = pending.remove(&call) {
                        let event = match outcome {
                            Ok(_) => TraceEvent::InvocationCompleted {
                                invocation: p.invocation,
                                attempts: p.attempt,
                                ok: true,
                            },
                            Err(e) if e.is_deadline_exceeded() => TraceEvent::InvocationExpired {
                                invocation: p.invocation,
                                attempts: p.attempt,
                            },
                            Err(_) => TraceEvent::InvocationCompleted {
                                invocation: p.invocation,
                                attempts: p.attempt,
                                ok: false,
                            },
                        };
                        trace.emit(clock.now(), event);
                    }
                }
                Ok(RmiMessage::Overloaded {
                    call, retry_after, ..
                }) => {
                    if let Some(p) = pending.remove(&call) {
                        let at = clock.now();
                        trace.emit(
                            at,
                            TraceEvent::AttemptOverloaded {
                                invocation: p.invocation,
                                attempt: p.attempt,
                                target: member_ep.0,
                                retry_after,
                            },
                        );
                        let due = at + retry_after;
                        if p.attempt < 3 && due + SimDuration::from_millis(5) < p.deadline {
                            retries.push((due, p.invocation, p.attempt + 1, p.deadline));
                        }
                    }
                }
                Ok(RmiMessage::Load(report)) => last_report = Some(report),
                _ => {}
            }
        }
        // 2. New members that finished provisioning come up.
        for grant in cluster.poll_ready(now) {
            trace.emit(now, TraceEvent::MemberJoined { uid: next_uid });
            pool_size.fetch_add(1, Ordering::SeqCst);
            live.push((next_uid, grant));
            next_uid += 1;
        }
        // 3. Due retries re-enter ahead of fresh arrivals.
        if let Some(idx) = retries.iter().position(|&(due, ..)| due <= now) {
            let (_, invocation, attempt, deadline) = retries.swap_remove(idx);
            send_attempt(
                &mut skeleton,
                &member_mb,
                member_ep,
                client_ep,
                &trace,
                &mut pending,
                &mut next_call,
                now,
                invocation,
                attempt,
                deadline,
            );
            continue;
        }
        // 4. Arrivals due now enter.
        if let Some(&at) = arrivals.peek() {
            if at <= now {
                arrivals.next();
                let invocation = next_invocation;
                next_invocation += 1;
                send_attempt(
                    &mut skeleton,
                    &member_mb,
                    member_ep,
                    client_ep,
                    &trace,
                    &mut pending,
                    &mut next_call,
                    now,
                    invocation,
                    1,
                    now + deadline_budget,
                );
                continue;
            }
        }
        // 5. Burst-interval rollover: poll load, run the scaling engine on
        //    the report, snapshot the registry.
        if now >= next_poll {
            next_poll += poll_every;
            // A phantom contender briefly takes the class lock so the next
            // dispatch measurably waits: shared-state pressure on cue.
            let _ = store.try_lock(CLASS, CONTENDER, now, SimDuration::from_millis(2));
            skeleton.ingest(client_ep, RmiMessage::PollLoad, &member_mb);
            while let Ok(d) = client_mb.try_recv() {
                if let Ok(RmiMessage::Load(report)) = RmiMessage::decode(&d.payload) {
                    last_report = Some(report);
                }
            }
            if let Some(report) = last_report.take() {
                let size = pool_size.load(Ordering::SeqCst);
                let sample = PoolSample {
                    pool_size: size,
                    avg_cpu: report.busy,
                    avg_ram: report.ram,
                    fine_votes: Vec::new(),
                    desired_size: None,
                    queue_delay_p99: SimDuration::from_micros(report.queue_delay_p99_us),
                    rejected: report.rejected,
                };
                let (decision, why) = engine.poll_explained(now, &sample);
                // The rule explanation precedes the decision in the trace so
                // span reconstruction can pair them.
                if let Some(w) = why {
                    trace.emit(
                        now,
                        TraceEvent::RuleFired {
                            rule: w.rule,
                            observed_milli: w.observed_milli,
                            threshold_milli: w.threshold_milli,
                        },
                    );
                }
                match decision {
                    ScalingDecision::Grow(k) => {
                        trace.emit(
                            now,
                            TraceEvent::ScaleDecision {
                                pool_size: size,
                                delta: i64::from(k),
                            },
                        );
                        let _ = cluster.request_slices(k, now);
                    }
                    ScalingDecision::Shrink(k) => {
                        trace.emit(
                            now,
                            TraceEvent::ScaleDecision {
                                pool_size: size,
                                delta: -i64::from(k),
                            },
                        );
                        for _ in 0..k {
                            // Never drain member 0: it is the real skeleton.
                            if live.len() <= 1 {
                                break;
                            }
                            let (uid, grant) = live.pop().expect("checked non-empty");
                            trace.emit(now, TraceEvent::MemberDrained { uid });
                            pool_size.fetch_sub(1, Ordering::SeqCst);
                            let _ = cluster.release(grant.slice, now);
                        }
                    }
                    ScalingDecision::Hold => {}
                }
            }
            snapshots.push(registry.snapshot(now));
            continue;
        }
        // 6. Execute one admitted request or cull expired ones.
        if skeleton.step() {
            continue;
        }
        // 7. Idle: jump to the next event, or finish.
        let mut targets = vec![next_poll];
        if let Some(&at) = arrivals.peek() {
            targets.push(at);
        }
        if let Some(&(due, ..)) = retries.iter().min_by_key(|&&(due, ..)| due) {
            targets.push(due);
        }
        if arrivals.peek().is_none() && retries.is_empty() && pending.is_empty() && now >= end {
            break;
        }
        let target = targets.into_iter().min().expect("next_poll always present");
        clock.advance_to(target.max(now + SimDuration::from_micros(1)));
    }

    // Reconstruct spans, attribute decision lag, and render the artifacts.
    let builder = SpanBuilder::new(sink.snapshot());
    let invocation_spans = builder.invocations();
    let decision_spans = builder.decisions();
    let lag_hist = metrics.histogram("scaling.decision.lag");
    for d in &decision_spans {
        if let Some(lag) = d.lag() {
            lag_hist.record(lag);
        }
    }
    snapshots.push(registry.snapshot(clock.now()));

    let dedup = DedupLine {
        hits: metrics.counter("rmi.dedup.hits").get(),
        replayed: metrics.counter("rmi.dedup.replayed").get(),
        evicted: metrics.counter("rmi.dedup.evicted").get(),
    };
    let report = render_report(&invocation_spans, &decision_spans, sink.dropped(), dedup);
    ElasticOverloadRun {
        report,
        trace_json: chrome_trace(&invocation_spans, &decision_spans),
        metrics_csv: snapshots_to_csv(&snapshots),
        invocations: invocation_spans.len(),
        decisions: decision_spans.len(),
        dropped: sink.dropped(),
    }
}

fn ms(d: SimDuration) -> f64 {
    d.as_micros() as f64 / 1000.0
}

/// Renders the why-scaled report: one block per pool-size change, each
/// attributed to its sample, rule, offer round trip, and capacity lag.
pub fn render_why_scaled(decisions: &[DecisionSpan]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Why the pool scaled ({} decisions):", decisions.len());
    for (i, d) in decisions.iter().enumerate() {
        let dir = if d.delta >= 0 { "grow" } else { "shrink" };
        let _ = writeln!(
            out,
            "#{} t={:.2}s {dir} {:+} (pool {} -> {})",
            i + 1,
            d.at.as_secs_f64(),
            d.delta,
            d.pool_size,
            (i64::from(d.pool_size) + d.delta).max(0),
        );
        match &d.rule {
            Some(r) => {
                let _ = writeln!(
                    out,
                    "    rule {}: observed {} vs threshold {} (milli-units, sampled t={:.2}s)",
                    r.rule,
                    r.observed_milli,
                    r.threshold_milli,
                    r.at.as_secs_f64(),
                );
            }
            None => {
                let _ = writeln!(out, "    rule: UNATTRIBUTED (no RuleFired before decision)");
            }
        }
        if let Some(o) = &d.offer {
            let _ = writeln!(
                out,
                "    offer #{}: requested {}, granted {}, resolved {:.0}ms after the decision",
                o.request_id,
                o.requested,
                o.granted,
                ms(o.resolved_at.saturating_since(d.at)),
            );
        }
        for (uid, at) in &d.members_up {
            let _ = writeln!(
                out,
                "    member {uid} serving at t={:.2}s",
                at.as_secs_f64()
            );
        }
        match d.lag() {
            Some(lag) => {
                let _ = writeln!(out, "    symptom-to-capacity lag: {:.0}ms", ms(lag));
            }
            None => {
                let _ = writeln!(out, "    symptom-to-capacity lag: capacity never arrived");
            }
        }
    }
    let unattributed = decisions.iter().filter(|d| d.rule.is_none()).count();
    let _ = writeln!(out, "unattributed size changes: {unattributed}");
    out
}

/// Duplicate-suppression tallies for the report (wire v4). All zero on an
/// `AtLeastOnce`-only workload, but the line is always rendered so readers
/// can tell "no suppression happened" from "suppression was not measured".
struct DedupLine {
    hits: u64,
    replayed: u64,
    evicted: u64,
}

/// The full run report: span accounting, outcome tallies, drop warning,
/// duplicate-suppression tallies, and the why-scaled attribution.
fn render_report(
    invocations: &[InvocationSpan],
    decisions: &[DecisionSpan],
    dropped: u64,
    dedup: DedupLine,
) -> String {
    let mut out = String::new();
    let count = |o: InvocationOutcome| invocations.iter().filter(|s| s.outcome == o).count();
    let _ = writeln!(
        out,
        "Telemetry run: {} invocation spans reconstructed \
         (completed {}, remote-error {}, expired {}, rejected {}, incomplete {})",
        invocations.len(),
        count(InvocationOutcome::Completed),
        count(InvocationOutcome::RemoteError),
        count(InvocationOutcome::Expired),
        count(InvocationOutcome::Rejected),
        count(InvocationOutcome::Incomplete),
    );
    if dropped > 0 {
        let _ = writeln!(
            out,
            "WARNING: trace ring dropped {dropped} records; spans may be incomplete \
             (raise the sink capacity for lossless traces)"
        );
    } else {
        let _ = writeln!(out, "trace ring dropped 0 records (lossless)");
    }
    let _ = writeln!(
        out,
        "duplicate suppression (at-most-once): {} duplicates absorbed, \
         {} cached replies replayed, {} cache entries evicted",
        dedup.hits, dedup.replayed, dedup.evicted,
    );
    out.push('\n');
    out.push_str(&render_why_scaled(decisions));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_is_deterministic_for_a_seed() {
        let a = run_elastic_overload(42);
        let b = run_elastic_overload(42);
        assert_eq!(a.report, b.report);
        assert_eq!(a.trace_json, b.trace_json);
        assert_eq!(a.metrics_csv, b.metrics_csv);
    }

    #[test]
    fn burst_produces_attributed_grow_decisions() {
        let run = run_elastic_overload(7);
        assert!(run.decisions > 0, "burst should force scaling decisions");
        assert!(
            run.report.contains("grow +"),
            "expected at least one grow in:\n{}",
            run.report
        );
        assert!(
            run.report.contains("unattributed size changes: 0"),
            "every decision must carry a rule attribution:\n{}",
            run.report
        );
        assert!(
            run.report.contains("symptom-to-capacity lag"),
            "report must surface the lag:\n{}",
            run.report
        );
        assert!(
            run.report.contains("duplicate suppression (at-most-once):"),
            "report must surface the dedup tallies:\n{}",
            run.report
        );
    }

    #[test]
    fn exports_cover_the_required_instruments() {
        let run = run_elastic_overload(7);
        assert!(run.invocations > 100, "trace should hold the workload");
        assert_eq!(run.dropped, 0, "sink sized for a lossless run");
        for name in [
            "skeleton.queue.delay",
            "kv.lock.wait",
            "kv.lock.hold",
            "cluster.provision.latency",
            "scaling.decision.lag",
            "rmi.dedup.hits",
            "rmi.dedup.replayed",
            "rmi.dedup.evicted",
            "rmi.dedup.cache.size",
        ] {
            assert!(
                run.metrics_csv.contains(name),
                "CSV missing {name}:\n{}",
                run.metrics_csv
            );
        }
        assert!(
            run.trace_json.contains("\"traceEvents\""),
            "trace JSON must be a Chrome trace_event document"
        );
        assert!(
            run.trace_json.contains("invoke"),
            "trace JSON must contain invocation root spans"
        );
    }
}
