//! The four deployment scenarios compared in the paper's evaluation (§5.4).

use elasticrmi::{PoolConfig, ScalingPolicy, Thresholds};
use erm_apps::AppModel;
use erm_cluster::LatencyModel;
use erm_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Which control stack manages the application's capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Deployment {
    /// ElasticRMI with the application's fine-grained metrics (the paper's
    /// headline configuration): `changePoolSize` demand votes every
    /// 60-second burst interval, Mesos-slice provisioning (seconds).
    ElasticRmi,
    /// ElasticRMI restricted to CPU/RAM thresholds — "no application-level
    /// properties are used but only the conditions based on CPU/Memory
    /// utilization in CloudWatch" (§5.4). Same fast provisioning as
    /// ElasticRMI.
    ElasticRmiCpuMem,
    /// Amazon CloudWatch + AutoScaling: the same CPU/RAM threshold
    /// conditions, but VM provisioning measured in minutes.
    CloudWatch,
    /// The overprovisioning oracle: knows the peak in advance and
    /// provisions for it statically; zero provisioning latency, maximum
    /// excess.
    Overprovision,
}

impl Deployment {
    /// All four, in the paper's comparison order.
    pub const ALL: [Deployment; 4] = [
        Deployment::ElasticRmi,
        Deployment::ElasticRmiCpuMem,
        Deployment::CloudWatch,
        Deployment::Overprovision,
    ];

    /// Display name as used in the figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Deployment::ElasticRmi => "ElasticRMI",
            Deployment::ElasticRmiCpuMem => "ElasticRMI-CPUMem",
            Deployment::CloudWatch => "CloudWatch",
            Deployment::Overprovision => "Overprovisioning",
        }
    }

    /// Provisioning-latency model for new capacity.
    pub fn provisioning(self) -> LatencyModel {
        match self {
            Deployment::ElasticRmi | Deployment::ElasticRmiCpuMem => {
                LatencyModel::elastic_rmi_default()
            }
            Deployment::CloudWatch => LatencyModel::cloudwatch_default(),
            Deployment::Overprovision => LatencyModel::instant(),
        }
    }

    /// Whether this deployment scales at all.
    pub fn is_elastic(self) -> bool {
        self != Deployment::Overprovision
    }

    /// The pool configuration (policy + burst interval + bounds) this
    /// deployment runs the application under.
    ///
    /// The CPU/RAM threshold set matches the paper's `CacheExplicit1`
    /// running example (85/50 CPU, 70/40 RAM) for both CloudWatch and
    /// ElasticRMI-CPUMem — "the same conditions are used to decide on
    /// elastic scaling" (§5.5) — with the CloudWatch-style 5-minute alarm
    /// period as the burst interval. ElasticRMI proper uses the fine-grained
    /// policy at the default 60-second burst interval.
    ///
    /// # Panics
    ///
    /// Panics if called for [`Deployment::Overprovision`], which has no
    /// scaling policy.
    pub fn pool_config(self, app: &AppModel, max_pool: u32) -> PoolConfig {
        assert!(
            self.is_elastic(),
            "the overprovisioning oracle has no scaling policy"
        );
        let min_pool = app.min_objects.max(2);
        let builder = PoolConfig::builder(app.name)
            .min_pool_size(min_pool)
            .max_pool_size(max_pool);
        let thresholds = Thresholds {
            cpu_incr: Some(85.0),
            cpu_decr: Some(50.0),
            ram_incr: Some(70.0),
            ram_decr: Some(40.0),
        };
        match self {
            Deployment::ElasticRmi => builder
                .policy(ScalingPolicy::FineGrained)
                .burst_interval(SimDuration::from_secs(60))
                .build()
                .expect("valid deployment config"),
            Deployment::ElasticRmiCpuMem | Deployment::CloudWatch => builder
                .policy(ScalingPolicy::Coarse(thresholds))
                .burst_interval(SimDuration::from_minutes(5))
                .build()
                .expect("valid deployment config"),
            Deployment::Overprovision => unreachable!("guarded above"),
        }
    }
}

impl std::fmt::Display for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erm_apps::AppKind;

    #[test]
    fn names_match_figure_legends() {
        assert_eq!(Deployment::ElasticRmi.name(), "ElasticRMI");
        assert_eq!(Deployment::Overprovision.name(), "Overprovisioning");
    }

    #[test]
    fn elastic_rmi_uses_fine_grained_policy() {
        let cfg = Deployment::ElasticRmi.pool_config(&AppKind::Paxos.model(), 60);
        assert_eq!(cfg.policy(), ScalingPolicy::FineGrained);
        assert_eq!(cfg.burst_interval(), SimDuration::from_secs(60));
    }

    #[test]
    fn threshold_deployments_share_conditions() {
        let a = Deployment::CloudWatch.pool_config(&AppKind::Dcs.model(), 60);
        let b = Deployment::ElasticRmiCpuMem.pool_config(&AppKind::Dcs.model(), 60);
        assert_eq!(a.policy(), b.policy());
        assert_eq!(a.burst_interval(), b.burst_interval());
    }

    #[test]
    fn provisioning_speed_ordering() {
        // Oracle < ElasticRMI < CloudWatch, the premise of Fig. 8.
        let mut rng = erm_sim::seeded_rng(1);
        let oracle = Deployment::Overprovision
            .provisioning()
            .sample(&mut rng, 0.5);
        let ermi = Deployment::ElasticRmi.provisioning().sample(&mut rng, 0.5);
        let cw = Deployment::CloudWatch.provisioning().sample(&mut rng, 0.5);
        assert!(oracle < ermi && ermi < cw);
    }

    #[test]
    #[should_panic(expected = "no scaling policy")]
    fn oracle_has_no_pool_config() {
        let _ = Deployment::Overprovision.pool_config(&AppKind::Paxos.model(), 60);
    }

    #[test]
    fn min_pool_respects_app_floor() {
        let cfg = Deployment::ElasticRmi.pool_config(&AppKind::Paxos.model(), 60);
        assert_eq!(cfg.min_pool_size(), 3, "Paxos quorum floor");
    }
}
