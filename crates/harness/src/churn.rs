//! Deterministic churn/chaos harness: member-crash recovery end to end.
//!
//! Where [`crate::telemetry`] stresses the *scaling* path, this module
//! stresses the *failure* path of paper §4.4: a pool of real [`Skeleton`]s
//! served from a real [`ResourceManager`] is driven through scripted and
//! seeded-random node failures, a cluster-master outage window, and
//! crash-mid-critical-section lock loss, while a steady client workload
//! keeps running. The run verifies the whole recovery chain:
//!
//! * **in-flight failover** — clients fail fast on closed endpoints
//!   (the stub's `ConnectionClosed` path) and retry elsewhere after a
//!   seeded, jittered backoff, instead of burning the reply timeout;
//! * **orphaned-lock reclamation** — a member that dies holding the class
//!   lock is fenced with [`Store::release_owner`], so `synchronized`
//!   waiters unblock at crash *detection*, not at TTL expiry;
//! * **crash-aware slice accounting** — revoked slices are never
//!   double-released, so the cluster books balance at quiesce;
//! * **recovery telemetry** — crash-to-reelection and
//!   crash-to-capacity-restored lags land in the
//!   `pool.recovery.reelection.lag` / `pool.recovery.capacity.lag`
//!   histograms and the why-recovered report.
//!
//! The run is a single-threaded discrete-event simulation on a
//! [`VirtualClock`], deterministic for a given seed: same seed, same
//! report, same CSV, byte for byte.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use elasticrmi::{
    AdmissionConfig, ElasticService, InvocationContext, RemoteError, ReplyCacheConfig, RmiMessage,
    Semantics, ServiceContext, Skeleton,
};
use erm_cluster::{ClusterConfig, LatencyModel, NodeId, ResourceManager, SliceGrant, SliceId};
use erm_kvstore::{LockOwner, Store, StoreConfig};
use erm_metrics::{
    snapshots_to_csv, MetricsHandle, RegistrySnapshot, TraceEvent, TraceHandle, TraceRecord,
    TraceSink,
};
use erm_sim::{seeded_rng, Clock, SharedClock, SimDuration, SimTime, VirtualClock};
use erm_transport::{EndpointId, InProcNetwork, Mailbox};
use rand::Rng;

/// Class name shared by every skeleton, the store lock, and the report.
const CLASS: &str = "Churn";

/// Members the control plane keeps the pool at.
const TARGET_POOL: u32 = 4;

/// Control-plane tick: crash detection, reclamation, re-election,
/// replacement requests, and client membership refresh all happen here.
const TICK: SimDuration = SimDuration::from_millis(200);

/// Deadline budget each invocation runs under.
const DEADLINE_BUDGET: SimDuration = SimDuration::from_millis(400);

/// Bound on the synchronized method's lock wait before it gives up and
/// returns `LockBusy` (the client retries).
const LOCK_WAIT_MAX: SimDuration = SimDuration::from_millis(30);

/// TTL a dying member leaves on the class lock. Deliberately far beyond
/// the run: only [`Store::release_owner`] can free it in time.
const CRASH_TTL: SimDuration = SimDuration::from_secs(120);

/// Attempts a client invests in one invocation before giving up.
const MAX_ATTEMPTS: u32 = 5;

/// Every Nth invocation calls the `synchronized` method.
const SYNC_EVERY: u64 = 5;

/// Client-side per-attempt reply timeout: an unanswered attempt is
/// retransmitted with a bumped attempt counter after this long. Together
/// with the reply-drop fault this is the duplicate-generation engine the
/// reply cache must absorb.
const REPLY_TIMEOUT: SimDuration = SimDuration::from_millis(120);

/// Percentage of in-flight replies the "network" silently drops. The
/// execution happened; only the answer is lost — the classic scenario
/// where a retry would re-execute a non-idempotent method.
const DROP_REPLY_PCT: u64 = 12;

/// Pad appended to each disruption window so requests overlapping its
/// tail are excused from the availability bar.
const WINDOW_PAD: SimDuration = SimDuration::from_millis(500);

/// Artifacts and tallies of one churn run.
#[derive(Debug, Clone)]
pub struct ChurnRun {
    /// The why-recovered report: crash chain, lags, availability, quiesce.
    pub report: String,
    /// Metrics-registry snapshot time series as CSV (includes the
    /// `churn.locks.leaked` / `churn.slices.leaked` quiesce gauges).
    pub metrics_csv: String,
    /// The complete trace, for property checks over terminal events.
    pub trace: Vec<TraceRecord>,
    /// Invocations accepted into the workload.
    pub invocations: usize,
    /// Invocations that completed `Ok` within their deadline.
    pub completed_ok: usize,
    /// Invocations that ended with a remote error.
    pub completed_err: usize,
    /// Invocations that expired without a usable answer.
    pub expired: usize,
    /// Fraction of disruption-free invocations that completed `Ok`.
    pub availability: f64,
    /// Invocations whose `[start, deadline]` missed every disruption
    /// window (the availability denominator).
    pub eligible: usize,
    /// Members lost to node failures.
    pub crashes: usize,
    /// Crashes that took the sentinel with them.
    pub sentinel_crashes: usize,
    /// Sentinel re-elections (initial election excluded).
    pub reelections: usize,
    /// Locks reclaimed from crashed owners via `release_owner`.
    pub locks_reclaimed: usize,
    /// Locks still held at quiesce (must be zero).
    pub leaked_locks: usize,
    /// Slices still granted or pending at quiesce (must be zero).
    pub leaked_slices: usize,
    /// Cluster slice total at quiesce.
    pub slices_total: usize,
    /// Free slices at quiesce.
    pub slices_free: usize,
    /// Trace records evicted from the ring (zero means complete).
    pub dropped: u64,
    /// Duplicate attempts absorbed by skeleton reply caches (wire v4).
    pub dedup_hits: u64,
    /// Cached replies replayed to duplicates (immediate hits plus parked
    /// attempts answered at completion).
    pub dedup_replayed: u64,
    /// Completed cache entries evicted under the entry/byte caps.
    pub dedup_evicted: u64,
    /// `AtMostOnce` invocations observed executing more than once — the
    /// exactly-once property violation counter (must be zero).
    pub duplicate_executions: usize,
    /// Reply-cache entries still live after the quiesce TTL sweep (must be
    /// zero).
    pub leaked_cache_entries: usize,
}

/// The hosted service. `work` burns a jittered service time; `sync`
/// additionally serializes on the class lock with a bounded wait, so a
/// crashed holder surfaces as `LockBusy` until reclamation frees it.
struct ChurnService {
    clock: Arc<VirtualClock>,
    rng: rand::rngs::StdRng,
    mean: SimDuration,
    owner: LockOwner,
    store: Arc<Store>,
}

impl ElasticService for ChurnService {
    fn dispatch(
        &mut self,
        method: &str,
        _args: &[u8],
        _ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError> {
        let factor: f64 = self.rng.gen_range(0.8..=1.2);
        let busy = SimDuration::from_micros((self.mean.as_micros() as f64 * factor) as u64);
        if method == "sync" {
            // Spin on the class lock advancing *virtual* time with a hard
            // bound: a lock orphaned by a crash must fail the request (the
            // client retries) rather than stall the pool until TTL expiry.
            let start = self.clock.now();
            let ttl = SimDuration::from_secs(1);
            while !self
                .store
                .try_lock(CLASS, self.owner, self.clock.now(), ttl)
            {
                if self.clock.now().saturating_since(start) >= LOCK_WAIT_MAX {
                    return Err(RemoteError::new(
                        "LockBusy",
                        "class lock held past the bounded wait",
                    ));
                }
                self.clock.advance(SimDuration::from_micros(100));
            }
            self.clock.advance(busy);
            let _ = self.store.unlock_at(CLASS, self.owner, self.clock.now());
        } else {
            self.clock.advance(busy);
        }
        Ok(Vec::new())
    }
}

/// One live pool member: its grant, transport identity, and skeleton.
struct Member {
    grant: SliceGrant,
    ep: EndpointId,
    mb: Mailbox,
    skeleton: Skeleton,
}

/// A member lost to a node failure, awaiting control-plane detection.
struct CrashRec {
    uid: u64,
    node: NodeId,
    slice: SliceId,
    at: SimTime,
    detected: Option<SimTime>,
    locks_reclaimed: Vec<String>,
    was_sentinel: bool,
}

/// Scripted chaos: what to do when the event comes due. Node repairs are
/// scheduled dynamically (the node is only known at injection time).
enum Chaos {
    /// Fail the node hosting the current sentinel.
    CrashSentinel,
    /// Fail the node hosting a seeded-random live member.
    CrashRandom,
    /// Take the cluster master down until the given time.
    MasterOutage(SimTime),
}

/// How an invocation ended.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Ok,
    Err,
    Expired,
}

/// Client-side invocation record for availability accounting.
struct InvRec {
    start: SimTime,
    deadline: SimTime,
    outcome: Option<Outcome>,
}

/// A client attempt awaiting its reply.
struct Pending {
    invocation: u64,
    attempt: u32,
    deadline: SimTime,
    target: EndpointId,
    /// When the attempt went out, for the reply-timeout retransmit sweep.
    sent: SimTime,
}

/// One contiguous recovery window: from the first crash until the pool
/// is back at target capacity.
struct Episode {
    opened: SimTime,
    restored: Option<SimTime>,
    capacity_lag: Option<SimDuration>,
}

/// Runs the churn scenario to completion. Deterministic per `seed`.
///
/// Timeline (all virtual): bootstrap to four members, then a steady
/// 120 req/s workload from t=1 s to t=25 s while the harness injects, in
/// order: a sentinel-node crash at 5 s (mid-critical-section), a master
/// outage from 10 s to 13 s with a member crash inside it at 10.4 s, and
/// two seeded-random crashes in [15 s, 21 s]. Every failed node heals a
/// few seconds later; the run then drains, restores capacity, and
/// quiesces with leak checks.
#[allow(clippy::too_many_lines)]
pub fn run_churn(seed: u64) -> ChurnRun {
    let net = InProcNetwork::new();
    let clock = Arc::new(VirtualClock::new());
    let sink = Arc::new(TraceSink::new(1 << 17));
    let trace = TraceHandle::new(Arc::clone(&sink));
    let (metrics, registry) = MetricsHandle::shared();
    let reelection_lag = metrics.histogram("pool.recovery.reelection.lag");
    let capacity_lag = metrics.histogram("pool.recovery.capacity.lag");

    let store = Arc::new(Store::new(StoreConfig::default()));
    store.install_lock_metrics(&metrics);

    let mut cluster = ResourceManager::new(ClusterConfig {
        nodes: 8,
        slices_per_node: 2,
        provisioning: LatencyModel::Fixed(SimDuration::from_millis(500)),
        ..ClusterConfig::default()
    });
    cluster.set_telemetry(trace.clone(), &metrics);

    let pool_size = Arc::new(AtomicU32::new(0));
    let (client_ep, client_mb) = net.open_endpoint();
    let (runtime_ep, _runtime_mb) = net.open_endpoint();

    let mut chaos_rng = seeded_rng(seed ^ 0x000c_4a05_u64);
    let mut client_rng = seeded_rng(seed ^ 0x11e7_u64);
    let mut arrival_rng = seeded_rng(seed);
    let mut drop_rng = seeded_rng(seed ^ 0xd20b_u64);

    // Scripted chaos plus the seeded-random phase, sorted by due time.
    let mut chaos: Vec<(SimTime, Chaos)> = vec![
        (SimTime::from_secs(5), Chaos::CrashSentinel),
        (
            SimTime::from_secs(10),
            Chaos::MasterOutage(SimTime::from_secs(13)),
        ),
        (
            SimTime::ZERO + SimDuration::from_millis(10_400),
            Chaos::CrashRandom,
        ),
    ];
    let r1 = SimTime::from_secs(15) + SimDuration::from_millis(chaos_rng.gen_range(0..3_000));
    let r2 = r1
        + SimDuration::from_millis(1_500)
        + SimDuration::from_millis(chaos_rng.gen_range(0..3_000));
    chaos.push((r1, Chaos::CrashRandom));
    chaos.push((r2, Chaos::CrashRandom));
    chaos.sort_by_key(|&(at, _)| at);
    let mut chaos = std::collections::VecDeque::from(chaos);
    // Repairs are scheduled dynamically once the crashed node is known.
    let mut repairs: Vec<(SimTime, NodeId)> = Vec::new();

    let spawn_service = |uid: u64, clock: &Arc<VirtualClock>, store: &Arc<Store>| ChurnService {
        clock: Arc::clone(clock),
        rng: seeded_rng(seed ^ uid.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        mean: SimDuration::from_micros(300),
        owner: LockOwner::new(uid),
        store: Arc::clone(store),
    };

    let mut members: BTreeMap<u64, Member> = BTreeMap::new();
    let mut next_uid: u64 = 0;
    let spawn_member = |grant: SliceGrant,
                        next_uid: &mut u64,
                        members: &mut BTreeMap<u64, Member>,
                        now: SimTime| {
        let uid = *next_uid;
        *next_uid += 1;
        let (ep, mb) = net.open_endpoint();
        let ctx = ServiceContext::new(
            Arc::clone(&store),
            CLASS,
            uid,
            Arc::<VirtualClock>::clone(&clock) as SharedClock,
            Arc::clone(&pool_size),
        );
        let service = spawn_service(uid, &clock, &store);
        let mut skeleton = Skeleton::new(
            uid,
            ep,
            runtime_ep,
            Arc::new(net.clone()),
            Arc::<VirtualClock>::clone(&clock) as SharedClock,
            Box::new(service),
            ctx,
            trace.clone(),
            Some(AdmissionConfig::edf(32)),
        );
        // A cap comfortably above the per-member at-most-once volume:
        // evicting a Completed entry whose duplicate is still in flight
        // would re-execute it, which is exactly what this harness checks.
        skeleton.set_reply_cache(ReplyCacheConfig {
            grace: SimDuration::from_secs(1),
            max_entries: 4096,
            max_bytes: 1 << 20,
        });
        skeleton.set_metrics(&metrics);
        trace.emit(now, TraceEvent::MemberJoined { uid });
        members.insert(
            uid,
            Member {
                grant,
                ep,
                mb,
                skeleton,
            },
        );
        uid
    };

    // Bootstrap: provision the target pool before traffic starts.
    cluster
        .request_slices(TARGET_POOL, clock.now())
        .expect("bootstrap slices");
    clock.advance_to(SimTime::ZERO + SimDuration::from_millis(500));
    for grant in cluster.poll_ready(clock.now()) {
        spawn_member(grant, &mut next_uid, &mut members, clock.now());
    }
    assert_eq!(members.len() as u32, TARGET_POOL, "bootstrap pool");
    pool_size.store(members.len() as u32, Ordering::SeqCst);

    // Initial sentinel election: lowest uid, epoch 1 (paper §4.4).
    let mut sentinel_uid: Option<u64> = members.keys().next().copied();
    let mut election_epoch: u64 = 1;
    if let Some(uid) = sentinel_uid {
        trace.emit(
            clock.now(),
            TraceEvent::SentinelElected {
                uid,
                epoch: election_epoch,
            },
        );
    }

    // Pre-computed steady arrival schedule: 120 req/s, ±50 % jitter.
    let start = SimTime::from_secs(1);
    let end = SimTime::from_secs(25);
    let mut schedule: Vec<SimTime> = Vec::new();
    let mut t = start;
    loop {
        let gap: f64 = 1_000_000.0 / 120.0 * arrival_rng.gen_range(0.5..=1.5);
        t += SimDuration::from_micros(gap as u64);
        if t >= end {
            break;
        }
        schedule.push(t);
    }
    let mut arrivals = schedule.into_iter().peekable();

    // Client state. The membership view refreshes only at control ticks,
    // so it goes stale the instant a member crashes — exactly the window
    // the fast-fail path must cover.
    let mut view: Vec<(u64, EndpointId)> = members.iter().map(|(&u, m)| (u, m.ep)).collect();
    let mut pending: HashMap<u64, Pending> = HashMap::new();
    let mut retries: Vec<(SimTime, u64, u32, SimTime)> = Vec::new();
    // At-most-once pinning, mirroring the stub's `committed` state: once a
    // member accepted an attempt, every retransmit goes back to it — its
    // reply cache is the only place the duplicate can be recognised.
    let mut pins: HashMap<u64, u64> = HashMap::new();
    let mut recs: BTreeMap<u64, InvRec> = BTreeMap::new();
    let mut next_call: u64 = 0;
    let mut next_invocation: u64 = 0;

    // Control-plane state.
    let mut crashed: Vec<CrashRec> = Vec::new();
    let mut episodes: Vec<Episode> = Vec::new();
    let mut open_episode: Option<usize> = None;
    let mut master_delayed_ticks: u64 = 0;
    let mut reelections: Vec<(u64, SimTime, SimDuration)> = Vec::new();
    let mut next_tick = SimTime::ZERO + SimDuration::from_millis(700);
    let mut next_snapshot = SimTime::from_secs(1);
    let mut snapshots: Vec<RegistrySnapshot> = vec![registry.snapshot(clock.now())];
    let hard_stop = SimTime::from_secs(60);

    loop {
        let now = clock.now();
        if now >= hard_stop {
            break; // backstop against a wedged schedule; checks will flag it
        }

        // 1. Chaos events due now.
        if chaos.front().is_some_and(|&(at, _)| at <= now) {
            let (_, event) = chaos.pop_front().expect("checked non-empty");
            match &event {
                Chaos::MasterOutage(until) => cluster.fail_master_until(*until),
                Chaos::CrashSentinel | Chaos::CrashRandom => {
                    let victim = match event {
                        Chaos::CrashSentinel => sentinel_uid,
                        _ => {
                            let live: Vec<u64> = members.keys().copied().collect();
                            if live.is_empty() {
                                None
                            } else {
                                Some(live[chaos_rng.gen_range(0..live.len())])
                            }
                        }
                    };
                    if let Some(victim) = victim {
                        let node = members[&victim].grant.node;
                        cluster.fail_node(node);
                        // Every member on the node dies with it. The first
                        // casualty dies *holding the class lock* (a crash
                        // mid-critical-section): only reclamation frees it.
                        let dead: Vec<u64> = members
                            .iter()
                            .filter(|(_, m)| m.grant.node == node)
                            .map(|(&u, _)| u)
                            .collect();
                        let mut took_lock = false;
                        for uid in dead {
                            if !took_lock
                                && store.try_lock(CLASS, LockOwner::new(uid), now, CRASH_TTL)
                            {
                                took_lock = true;
                            }
                            let m = members.remove(&uid).expect("listed above");
                            net.close_endpoint(m.ep);
                            trace.emit(now, TraceEvent::MemberCrashed { uid });
                            crashed.push(CrashRec {
                                uid,
                                node,
                                slice: m.grant.slice,
                                at: now,
                                detected: None,
                                locks_reclaimed: Vec::new(),
                                was_sentinel: sentinel_uid == Some(uid),
                            });
                        }
                        pool_size.store(members.len() as u32, Ordering::SeqCst);
                        repairs.push((
                            now + SimDuration::from_millis(
                                2_000 + chaos_rng.gen_range(0..1_500u64),
                            ),
                            node,
                        ));
                        if open_episode.is_none() {
                            open_episode = Some(episodes.len());
                            episodes.push(Episode {
                                opened: now,
                                restored: None,
                                capacity_lag: None,
                            });
                        }
                    }
                }
            }
            continue;
        }
        if let Some(idx) = repairs.iter().position(|&(at, _)| at <= now) {
            let (_, node) = repairs.swap_remove(idx);
            cluster.repair_node(node);
            continue;
        }

        // 2. Drain client replies.
        let mut drained = false;
        while let Ok(d) = client_mb.try_recv() {
            drained = true;
            match RmiMessage::decode(&d.payload) {
                Ok(RmiMessage::Response {
                    replayed: _,
                    call,
                    outcome,
                }) => {
                    // The reply-drop fault: the member executed and
                    // answered, but the answer never reaches the client —
                    // its retransmit is a true duplicate.
                    if pending.contains_key(&call) && drop_rng.gen_range(0..100u64) < DROP_REPLY_PCT
                    {
                        continue;
                    }
                    if let Some(p) = pending.remove(&call) {
                        let at = clock.now();
                        match outcome {
                            Ok(_) if at <= p.deadline => {
                                trace.emit(
                                    at,
                                    TraceEvent::InvocationCompleted {
                                        invocation: p.invocation,
                                        attempts: p.attempt,
                                        ok: true,
                                    },
                                );
                                finish(&mut recs, p.invocation, Outcome::Ok);
                            }
                            Ok(_) => {
                                trace.emit(
                                    at,
                                    TraceEvent::InvocationExpired {
                                        invocation: p.invocation,
                                        attempts: p.attempt,
                                    },
                                );
                                finish(&mut recs, p.invocation, Outcome::Expired);
                            }
                            Err(e) if e.is_deadline_exceeded() => {
                                trace.emit(
                                    at,
                                    TraceEvent::InvocationExpired {
                                        invocation: p.invocation,
                                        attempts: p.attempt,
                                    },
                                );
                                finish(&mut recs, p.invocation, Outcome::Expired);
                            }
                            Err(_) => {
                                // Transient server-side error (e.g. LockBusy
                                // behind a crashed holder): retry on budget.
                                let backoff = jitter(&mut client_rng, p.attempt);
                                let due = at + backoff;
                                if p.attempt < MAX_ATTEMPTS
                                    && due + SimDuration::from_millis(5) < p.deadline
                                {
                                    retries.push((due, p.invocation, p.attempt + 1, p.deadline));
                                } else {
                                    dead_end(&trace, &mut recs, &p, at);
                                }
                            }
                        }
                    }
                }
                Ok(RmiMessage::Overloaded {
                    call, retry_after, ..
                }) => {
                    if let Some(p) = pending.remove(&call) {
                        let at = clock.now();
                        // An explicit refusal proves the member never
                        // admitted (so never executed) the attempt: the
                        // at-most-once pin is safe to release.
                        pins.remove(&p.invocation);
                        trace.emit(
                            at,
                            TraceEvent::AttemptOverloaded {
                                invocation: p.invocation,
                                attempt: p.attempt,
                                target: p.target.0,
                                retry_after,
                            },
                        );
                        let due = at + retry_after;
                        if p.attempt < MAX_ATTEMPTS
                            && due + SimDuration::from_millis(5) < p.deadline
                        {
                            retries.push((due, p.invocation, p.attempt + 1, p.deadline));
                        } else {
                            dead_end(&trace, &mut recs, &p, at);
                        }
                    }
                }
                _ => {}
            }
        }
        if drained {
            continue;
        }

        // 3. Fast-fail sweep: pending attempts aimed at endpoints the
        //    crash closed. This is the stub's ConnectionClosed path — the
        //    client learns in one poll, not one reply timeout.
        let closed: Vec<u64> = pending
            .iter()
            .filter(|(_, p)| !net.is_open(p.target))
            .map(|(&call, _)| call)
            .collect();
        if !closed.is_empty() {
            let mut calls = closed;
            calls.sort_unstable();
            for call in calls {
                let p = pending.remove(&call).expect("listed above");
                trace.emit(
                    now,
                    TraceEvent::AttemptFailed {
                        invocation: p.invocation,
                        attempt: p.attempt,
                        target: p.target.0,
                    },
                );
                let due = now + jitter(&mut client_rng, p.attempt);
                if p.attempt < MAX_ATTEMPTS && due + SimDuration::from_millis(5) < p.deadline {
                    retries.push((due, p.invocation, p.attempt + 1, p.deadline));
                } else {
                    dead_end(&trace, &mut recs, &p, now);
                }
            }
            continue;
        }

        // 4. Client-side expiry sweep: no answer and the deadline passed.
        let expired_calls: Vec<u64> = {
            let mut v: Vec<u64> = pending
                .iter()
                .filter(|(_, p)| p.deadline < now)
                .map(|(&call, _)| call)
                .collect();
            v.sort_unstable();
            v
        };
        if !expired_calls.is_empty() {
            for call in expired_calls {
                let p = pending.remove(&call).expect("listed above");
                trace.emit(
                    now,
                    TraceEvent::InvocationExpired {
                        invocation: p.invocation,
                        attempts: p.attempt,
                    },
                );
                finish(&mut recs, p.invocation, Outcome::Expired);
            }
            continue;
        }

        // 4b. Reply-timeout sweep: attempts whose answer was lost (the
        //     drop fault, or a reply stuck behind a backlog) retransmit
        //     with a bumped attempt counter — the duplicate-generation
        //     path the reply cache must absorb.
        let timed_out: Vec<u64> = {
            let mut v: Vec<u64> = pending
                .iter()
                .filter(|(_, p)| p.sent + REPLY_TIMEOUT <= now)
                .map(|(&call, _)| call)
                .collect();
            v.sort_unstable();
            v
        };
        if !timed_out.is_empty() {
            for call in timed_out {
                let p = pending.remove(&call).expect("listed above");
                trace.emit(
                    now,
                    TraceEvent::AttemptFailed {
                        invocation: p.invocation,
                        attempt: p.attempt,
                        target: p.target.0,
                    },
                );
                let due = now + jitter(&mut client_rng, p.attempt);
                if p.attempt < MAX_ATTEMPTS && due + SimDuration::from_millis(5) < p.deadline {
                    retries.push((due, p.invocation, p.attempt + 1, p.deadline));
                } else {
                    dead_end(&trace, &mut recs, &p, now);
                }
            }
            continue;
        }

        // 5. Control tick: detection, reclamation, re-election,
        //    replacement, capacity accounting, membership refresh.
        if now >= next_tick {
            next_tick += TICK;
            // 5a. Detect revocations and finish the crashed members:
            //     reclaim their locks with epoch fencing.
            for slice in cluster.drain_revocations() {
                if let Some(rec) = crashed
                    .iter_mut()
                    .find(|r| r.slice == slice && r.detected.is_none())
                {
                    rec.detected = Some(now);
                    rec.locks_reclaimed = store.release_owner(LockOwner::new(rec.uid), now);
                }
            }
            // 5b. Sentinel re-election by lowest uid if the sentinel died.
            let sentinel_dead = sentinel_uid.is_some_and(|uid| !members.contains_key(&uid));
            if sentinel_dead {
                let dead_uid = sentinel_uid.expect("checked above");
                let crash_at = crashed
                    .iter()
                    .find(|r| r.uid == dead_uid)
                    .map_or(now, |r| r.at);
                sentinel_uid = members.keys().next().copied();
                if let Some(uid) = sentinel_uid {
                    election_epoch += 1;
                    trace.emit(
                        now,
                        TraceEvent::SentinelElected {
                            uid,
                            epoch: election_epoch,
                        },
                    );
                    let lag = now.saturating_since(crash_at);
                    reelection_lag.record(lag);
                    reelections.push((uid, now, lag));
                }
            }
            // 5c. Replacement capacity, retried across master outages.
            let live = members.len() as u32;
            let pending_slices = cluster.pending_slices() as u32;
            let deficit = TARGET_POOL.saturating_sub(live + pending_slices);
            if deficit > 0 {
                if cluster.master_available(now) {
                    let _ = cluster.request_slices(deficit, now);
                } else {
                    master_delayed_ticks += 1;
                }
            }
            // 5d. Replacements that finished provisioning come up.
            for grant in cluster.poll_ready(now) {
                spawn_member(grant, &mut next_uid, &mut members, now);
            }
            pool_size.store(members.len() as u32, Ordering::SeqCst);
            if sentinel_uid.is_none() {
                sentinel_uid = members.keys().next().copied();
                if let Some(uid) = sentinel_uid {
                    election_epoch += 1;
                    trace.emit(
                        now,
                        TraceEvent::SentinelElected {
                            uid,
                            epoch: election_epoch,
                        },
                    );
                }
            }
            // 5e. Close the recovery window once capacity is back.
            if let Some(i) = open_episode {
                if members.len() as u32 >= TARGET_POOL {
                    let lag = now.saturating_since(episodes[i].opened);
                    capacity_lag.record(lag);
                    episodes[i].capacity_lag = Some(lag);
                    episodes[i].restored = Some(now);
                    open_episode = None;
                }
            }
            // 5f. Clients refresh their membership view.
            view = members.iter().map(|(&u, m)| (u, m.ep)).collect();
            if now >= next_snapshot {
                next_snapshot += SimDuration::from_secs(1);
                snapshots.push(registry.snapshot(now));
            }
            continue;
        }

        // 6. Due retries re-enter ahead of fresh arrivals, targeting the
        //    *current* membership (failure triggered a refresh).
        if let Some(idx) = retries.iter().position(|&(due, ..)| due <= now) {
            let (_, invocation, attempt, deadline) = retries.swap_remove(idx);
            let fresh: Vec<(u64, EndpointId)> = members.iter().map(|(&u, m)| (u, m.ep)).collect();
            send_attempt(
                &net,
                &mut members,
                &fresh,
                &mut client_rng,
                &trace,
                &mut pending,
                &mut retries,
                &mut recs,
                &mut pins,
                &mut next_call,
                client_ep,
                now,
                invocation,
                attempt,
                deadline,
            );
            continue;
        }

        // 7. Arrivals due now enter, targeting the (possibly stale) view.
        if arrivals.peek().is_some_and(|&at| at <= now) {
            arrivals.next();
            let invocation = next_invocation;
            next_invocation += 1;
            recs.insert(
                invocation,
                InvRec {
                    start: now,
                    deadline: now + DEADLINE_BUDGET,
                    outcome: None,
                },
            );
            send_attempt(
                &net,
                &mut members,
                &view,
                &mut client_rng,
                &trace,
                &mut pending,
                &mut retries,
                &mut recs,
                &mut pins,
                &mut next_call,
                client_ep,
                now,
                invocation,
                1,
                now + DEADLINE_BUDGET,
            );
            continue;
        }

        // 8. Let every live member execute one admitted request.
        let uids: Vec<u64> = members.keys().copied().collect();
        let mut worked = false;
        for uid in uids {
            if let Some(m) = members.get_mut(&uid) {
                worked |= m.skeleton.step();
            }
        }
        if worked {
            continue;
        }

        // 9. Idle: jump to the next event, or finish.
        let workload_done = arrivals.peek().is_none() && retries.is_empty() && pending.is_empty();
        if workload_done
            && open_episode.is_none()
            && members.len() as u32 >= TARGET_POOL
            && chaos.is_empty()
            && repairs.is_empty()
        {
            break;
        }
        let mut targets = vec![next_tick];
        if let Some(&at) = arrivals.peek() {
            targets.push(at);
        }
        if let Some(&(due, ..)) = retries.iter().min_by_key(|&&(due, ..)| due) {
            targets.push(due);
        }
        if let Some(&(at, _)) = chaos.front() {
            targets.push(at);
        }
        if let Some(&(at, _)) = repairs.iter().min_by_key(|&&(at, _)| at) {
            targets.push(at);
        }
        if let Some(p) = pending.values().min_by_key(|p| p.sent) {
            targets.push(p.sent + REPLY_TIMEOUT);
        }
        let target = targets.into_iter().min().expect("next_tick always present");
        clock.advance_to(target.max(now + SimDuration::from_micros(1)));
    }

    // Quiesce: release every live member's slice (revoked slices were
    // already reabsorbed by fail_node — releasing them again is exactly
    // the double-release bug this harness guards against). First advance
    // past the last possible reply-cache TTL (deadline + grace) so the
    // sweep below can prove deterministic expiry: anything still cached
    // after that horizon is a leak.
    clock.advance(DEADLINE_BUDGET + SimDuration::from_secs(1));
    let quiesce_at = clock.now();
    let mut leaked_cache_entries = 0usize;
    let live_uids: Vec<u64> = members.keys().copied().collect();
    for uid in live_uids {
        let mut m = members.remove(&uid).expect("listed above");
        leaked_cache_entries += m.skeleton.sweep_reply_cache();
        let _ = cluster.release(m.grant.slice, quiesce_at);
        net.close_endpoint(m.ep);
        trace.emit(quiesce_at, TraceEvent::MemberDrained { uid });
    }
    let leaked_locks = store.held_locks().len();
    let leaked_slices = cluster.slices_in_use() + cluster.pending_slices();
    metrics.gauge("churn.locks.leaked").set(leaked_locks as i64);
    metrics
        .gauge("churn.slices.leaked")
        .set(leaked_slices as i64);

    // Exactly-once accounting over the trace: executions per invocation.
    // `work` (at-most-once) invocations must never execute twice; crashed
    // members make zero executions legal.
    let trace_records = sink.snapshot();
    let mut exec_counts: BTreeMap<u64, usize> = BTreeMap::new();
    for r in &trace_records {
        if let TraceEvent::RequestExecuted { invocation, .. } = r.event {
            *exec_counts.entry(invocation).or_default() += 1;
        }
    }
    let duplicate_executions = exec_counts
        .iter()
        .filter(|&(inv, &n)| !inv.is_multiple_of(SYNC_EVERY) && n > 1)
        .count();
    // Suppression totals come from the shared metrics registry, not the
    // skeletons: published diffs survive member crashes and re-elections.
    let dedup_hits = metrics.counter("rmi.dedup.hits").get();
    let dedup_replayed = metrics.counter("rmi.dedup.replayed").get();
    let dedup_evicted = metrics.counter("rmi.dedup.evicted").get();
    metrics
        .gauge("churn.dedup.leaked")
        .set(leaked_cache_entries as i64);
    metrics
        .gauge("churn.dedup.duplicates")
        .set(duplicate_executions as i64);
    snapshots.push(registry.snapshot(quiesce_at));

    // Availability over invocations untouched by any disruption window.
    let windows: Vec<(SimTime, SimTime)> = episodes
        .iter()
        .map(|e| (e.opened, e.restored.map_or(quiesce_at, |r| r + WINDOW_PAD)))
        .collect();
    let mut eligible = 0usize;
    let mut eligible_ok = 0usize;
    let mut completed_ok = 0usize;
    let mut completed_err = 0usize;
    let mut expired = 0usize;
    for rec in recs.values() {
        match rec.outcome {
            Some(Outcome::Ok) => completed_ok += 1,
            Some(Outcome::Err) => completed_err += 1,
            Some(Outcome::Expired) | None => expired += 1,
        }
        let disrupted = windows
            .iter()
            .any(|&(from, to)| rec.start <= to && rec.deadline >= from);
        if !disrupted {
            eligible += 1;
            if rec.outcome == Some(Outcome::Ok) {
                eligible_ok += 1;
            }
        }
    }
    let availability = if eligible == 0 {
        1.0
    } else {
        eligible_ok as f64 / eligible as f64
    };

    let locks_reclaimed: usize = crashed.iter().map(|r| r.locks_reclaimed.len()).sum();
    let sentinel_crashes = crashed.iter().filter(|r| r.was_sentinel).count();
    let report = render_report(
        seed,
        &recs,
        &crashed,
        &episodes,
        &reelections,
        availability,
        eligible,
        eligible_ok,
        completed_ok,
        completed_err,
        expired,
        master_delayed_ticks,
        leaked_locks,
        leaked_slices,
        &cluster,
        sink.dropped(),
        DedupSummary {
            hits: dedup_hits,
            replayed: dedup_replayed,
            evicted: dedup_evicted,
            duplicate_executions,
            leaked_cache_entries,
        },
    );

    ChurnRun {
        report,
        metrics_csv: snapshots_to_csv(&snapshots),
        trace: trace_records,
        invocations: recs.len(),
        completed_ok,
        completed_err,
        expired,
        availability,
        eligible,
        crashes: crashed.len(),
        sentinel_crashes,
        reelections: reelections.len(),
        locks_reclaimed,
        leaked_locks,
        leaked_slices,
        slices_total: cluster.total_slices(),
        slices_free: cluster.free_slices(),
        dropped: sink.dropped(),
        dedup_hits,
        dedup_replayed,
        dedup_evicted,
        duplicate_executions,
        leaked_cache_entries,
    }
}

/// Duplicate-suppression facts the report renders.
struct DedupSummary {
    hits: u64,
    replayed: u64,
    evicted: u64,
    duplicate_executions: usize,
    leaked_cache_entries: usize,
}

/// Seeded exponential backoff with jitter: `[step/2, step]` where the
/// step doubles per attempt from 2 ms, capped at 16 ms. Mirrors the
/// stub's `backoff_before_retry` so failover storms decorrelate.
fn jitter(rng: &mut rand::rngs::StdRng, attempt: u32) -> SimDuration {
    let step_us = (2_000u64 << u64::from(attempt.min(3))).min(16_000);
    SimDuration::from_micros(rng.gen_range(step_us / 2..=step_us))
}

/// Records the invocation's terminal outcome exactly once.
fn finish(recs: &mut BTreeMap<u64, InvRec>, invocation: u64, outcome: Outcome) {
    if let Some(rec) = recs.get_mut(&invocation) {
        debug_assert!(rec.outcome.is_none(), "double terminal for {invocation}");
        rec.outcome = Some(outcome);
    }
}

/// No more retry budget: emit the single terminal event for the attempt.
fn dead_end(trace: &TraceHandle, recs: &mut BTreeMap<u64, InvRec>, p: &Pending, now: SimTime) {
    if now >= p.deadline {
        trace.emit(
            now,
            TraceEvent::InvocationExpired {
                invocation: p.invocation,
                attempts: p.attempt,
            },
        );
        finish(recs, p.invocation, Outcome::Expired);
    } else {
        trace.emit(
            now,
            TraceEvent::InvocationCompleted {
                invocation: p.invocation,
                attempts: p.attempt,
                ok: false,
            },
        );
        finish(recs, p.invocation, Outcome::Err);
    }
}

/// Emits the `AttemptStarted` anchor, then either ingests the request at
/// the chosen member or fast-fails into the retry queue (closed endpoint
/// or stale membership entry). `sync` runs `AtLeastOnce`; `work` is the
/// non-idempotent `AtMostOnce` method, pinned to the member that first
/// accepted it (mirroring the stub's `committed` state).
#[allow(clippy::too_many_arguments)]
fn send_attempt(
    net: &InProcNetwork,
    members: &mut BTreeMap<u64, Member>,
    view: &[(u64, EndpointId)],
    rng: &mut rand::rngs::StdRng,
    trace: &TraceHandle,
    pending: &mut HashMap<u64, Pending>,
    retries: &mut Vec<(SimTime, u64, u32, SimTime)>,
    recs: &mut BTreeMap<u64, InvRec>,
    pins: &mut HashMap<u64, u64>,
    next_call: &mut u64,
    client_ep: EndpointId,
    now: SimTime,
    invocation: u64,
    attempt: u32,
    deadline: SimTime,
) {
    let (method, semantics) = if invocation.is_multiple_of(SYNC_EVERY) {
        ("sync", Semantics::AtLeastOnce)
    } else {
        ("work", Semantics::AtMostOnce)
    };
    let pinned = pins.get(&invocation).copied();
    let target = match pinned {
        // A pinned retransmit may only go back to the member that already
        // accepted an earlier attempt — it may have executed and lost the
        // reply, and only its cache can recognise the duplicate.
        Some(uid) => members.get(&uid).map(|m| (uid, m.ep)),
        None if view.is_empty() => None,
        None => Some(view[rng.gen_range(0..view.len())]),
    };
    let Some((uid, ep)) = target else {
        if pinned.is_some() {
            // The pinned member crashed. Failing over could execute the
            // invocation a second time, so it terminates here — the same
            // dead end a stub's committed invocation reaches.
            let p = Pending {
                invocation,
                attempt,
                deadline,
                target: EndpointId(0),
                sent: now,
            };
            dead_end(trace, recs, &p, now);
            return;
        }
        // Total blackout: park the attempt for one backoff, or give up.
        let due = now + jitter(rng, attempt);
        if attempt < MAX_ATTEMPTS && due + SimDuration::from_millis(5) < deadline {
            retries.push((due, invocation, attempt + 1, deadline));
        } else {
            trace.emit(
                now,
                TraceEvent::InvocationExpired {
                    invocation,
                    attempts: attempt,
                },
            );
            finish(recs, invocation, Outcome::Expired);
        }
        return;
    };
    trace.emit(
        now,
        TraceEvent::AttemptStarted {
            invocation,
            attempt,
            target: ep.0,
            deadline,
        },
    );
    let open = net.is_open(ep) && members.contains_key(&uid);
    if !open {
        // The stub's ConnectionClosed fast path: fail immediately,
        // decorrelate with jitter, retry against fresh membership.
        trace.emit(
            now,
            TraceEvent::AttemptFailed {
                invocation,
                attempt,
                target: ep.0,
            },
        );
        let due = now + jitter(rng, attempt);
        if attempt < MAX_ATTEMPTS && due + SimDuration::from_millis(5) < deadline {
            retries.push((due, invocation, attempt + 1, deadline));
        } else {
            let p = Pending {
                invocation,
                attempt,
                deadline,
                target: ep,
                sent: now,
            };
            dead_end(trace, recs, &p, now);
        }
        return;
    }
    let call = *next_call;
    *next_call += 1;
    pending.insert(
        call,
        Pending {
            invocation,
            attempt,
            deadline,
            target: ep,
            sent: now,
        },
    );
    if semantics == Semantics::AtMostOnce {
        // Delivery commits the attempt to this member (the skeleton's
        // cache now tracks it); only an explicit refusal releases it.
        pins.insert(invocation, uid);
    }
    let m = members.get_mut(&uid).expect("checked above");
    m.skeleton.ingest(
        client_ep,
        RmiMessage::Request {
            call,
            context: InvocationContext {
                id: invocation,
                deadline,
                attempt,
                origin: client_ep,
                semantics,
            },
            method: method.into(),
            args: Vec::new(),
        },
        &m.mb,
    );
}

fn ms(d: SimDuration) -> f64 {
    d.as_micros() as f64 / 1000.0
}

/// Renders the why-recovered report: one block per crash, each carrying
/// detection, reclamation, re-election, and capacity-restore facts.
#[allow(clippy::too_many_arguments)]
fn render_report(
    seed: u64,
    recs: &BTreeMap<u64, InvRec>,
    crashed: &[CrashRec],
    episodes: &[Episode],
    reelections: &[(u64, SimTime, SimDuration)],
    availability: f64,
    eligible: usize,
    eligible_ok: usize,
    completed_ok: usize,
    completed_err: usize,
    expired: usize,
    master_delayed_ticks: u64,
    leaked_locks: usize,
    leaked_slices: usize,
    cluster: &ResourceManager,
    dropped: u64,
    dedup: DedupSummary,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Churn run (seed {seed}): {} invocations (ok {completed_ok}, \
         remote-error {completed_err}, expired {expired})",
        recs.len(),
    );
    let _ = writeln!(
        out,
        "availability outside disruption windows: {:.2}% ({eligible_ok}/{eligible})",
        availability * 100.0,
    );
    let _ = writeln!(
        out,
        "crashes: {} members across {} recovery episodes; sentinel re-elections: {}",
        crashed.len(),
        episodes.len(),
        reelections.len(),
    );
    let _ = writeln!(
        out,
        "replacement requests deferred by master outage: {master_delayed_ticks} ticks"
    );
    out.push('\n');
    let _ = writeln!(out, "Why the pool recovered ({} crashes):", crashed.len());
    for (i, rec) in crashed.iter().enumerate() {
        let _ = writeln!(
            out,
            "#{} member {} ({}, {}) crashed t={:.2}s{}",
            i + 1,
            rec.uid,
            rec.node,
            rec.slice,
            rec.at.as_secs_f64(),
            if rec.was_sentinel { " [sentinel]" } else { "" },
        );
        match rec.detected {
            Some(at) => {
                let _ = writeln!(
                    out,
                    "    detected t={:.2}s (+{:.0}ms); locks reclaimed: {} {:?}",
                    at.as_secs_f64(),
                    ms(at.saturating_since(rec.at)),
                    rec.locks_reclaimed.len(),
                    rec.locks_reclaimed,
                );
            }
            None => {
                let _ = writeln!(out, "    NEVER DETECTED (revocation lost)");
            }
        }
        if rec.was_sentinel {
            if let Some((uid, at, lag)) = reelections.iter().find(|(_, at, _)| *at >= rec.at) {
                let _ = writeln!(
                    out,
                    "    sentinel re-elected: member {uid} t={:.2}s \
                     (crash-to-reelection lag {:.0}ms)",
                    at.as_secs_f64(),
                    ms(*lag),
                );
            }
        }
    }
    out.push('\n');
    let _ = writeln!(out, "Recovery episodes ({}):", episodes.len());
    for (i, e) in episodes.iter().enumerate() {
        match (e.restored, e.capacity_lag) {
            (Some(restored), Some(lag)) => {
                let _ = writeln!(
                    out,
                    "#{} opened t={:.2}s, capacity restored t={:.2}s \
                     (crash-to-capacity lag {:.0}ms)",
                    i + 1,
                    e.opened.as_secs_f64(),
                    restored.as_secs_f64(),
                    ms(lag),
                );
            }
            _ => {
                let _ = writeln!(
                    out,
                    "#{} opened t={:.2}s, NEVER CLOSED (capacity not restored)",
                    i + 1,
                    e.opened.as_secs_f64(),
                );
            }
        }
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "duplicate suppression (at-most-once): {} duplicates absorbed, \
         {} cached replies replayed, {} entries evicted; \
         duplicate executions {} (must be 0), leaked cache entries {} (must be 0)",
        dedup.hits,
        dedup.replayed,
        dedup.evicted,
        dedup.duplicate_executions,
        dedup.leaked_cache_entries,
    );
    let _ = writeln!(
        out,
        "quiesce: leaked locks {leaked_locks}, leaked slices {leaked_slices} \
         (free {}/{}, in-use {}, pending {})",
        cluster.free_slices(),
        cluster.total_slices(),
        cluster.slices_in_use(),
        cluster.pending_slices(),
    );
    if dropped > 0 {
        let _ = writeln!(
            out,
            "WARNING: trace ring dropped {dropped} records; property checks may be blind"
        );
    } else {
        let _ = writeln!(out, "trace ring dropped 0 records (lossless)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terminal_counts(run: &ChurnRun) -> BTreeMap<u64, usize> {
        let mut terminals: BTreeMap<u64, usize> = BTreeMap::new();
        for r in &run.trace {
            match r.event {
                TraceEvent::InvocationCompleted { invocation, .. }
                | TraceEvent::InvocationExpired { invocation, .. } => {
                    *terminals.entry(invocation).or_default() += 1;
                }
                _ => {}
            }
        }
        terminals
    }

    #[test]
    fn run_is_deterministic_for_a_seed() {
        let a = run_churn(7);
        let b = run_churn(7);
        assert_eq!(a.report, b.report);
        assert_eq!(a.metrics_csv, b.metrics_csv);
        assert_eq!(a.trace.len(), b.trace.len());
    }

    #[test]
    fn every_accepted_invocation_has_exactly_one_terminal_event() {
        let run = run_churn(7);
        assert_eq!(run.dropped, 0, "ring must be lossless for this check");
        let terminals = terminal_counts(&run);
        let mut started: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        for r in &run.trace {
            if let TraceEvent::AttemptStarted { invocation, .. } = r.event {
                started.insert(invocation);
            }
        }
        for inv in &started {
            assert_eq!(
                terminals.get(inv).copied().unwrap_or(0),
                1,
                "invocation {inv} must terminate exactly once"
            );
        }
        for (inv, n) in &terminals {
            assert_eq!(*n, 1, "invocation {inv} terminated {n} times");
        }
    }

    #[test]
    fn books_and_locks_balance_at_quiesce_across_seeds() {
        for seed in [7u64, 99, 2026] {
            let run = run_churn(seed);
            assert_eq!(run.leaked_locks, 0, "seed {seed}: locks leaked");
            assert_eq!(run.leaked_slices, 0, "seed {seed}: slices leaked");
            assert_eq!(
                run.slices_free, run.slices_total,
                "seed {seed}: every slice must be free at quiesce"
            );
        }
    }

    #[test]
    fn sentinel_reelections_match_sentinel_crashes() {
        for seed in [7u64, 99, 2026] {
            let run = run_churn(seed);
            assert_eq!(
                run.reelections, run.sentinel_crashes,
                "seed {seed}: one re-election per sentinel crash"
            );
            let elected = run
                .trace
                .iter()
                .filter(|r| matches!(r.event, TraceEvent::SentinelElected { .. }))
                .count();
            assert_eq!(
                elected,
                run.sentinel_crashes + 1,
                "seed {seed}: initial election plus one per sentinel crash"
            );
        }
    }

    #[test]
    fn availability_holds_outside_disruption_windows() {
        for seed in [7u64, 99, 2026] {
            let run = run_churn(seed);
            assert!(
                run.eligible > 500,
                "seed {seed}: workload too small ({} eligible)",
                run.eligible
            );
            assert!(
                run.availability >= 0.99,
                "seed {seed}: availability {:.4} below 99% ({}/{})\n{}",
                run.availability,
                run.completed_ok,
                run.eligible,
                run.report
            );
        }
    }

    #[test]
    fn crashed_holders_locks_are_reclaimed_not_leaked() {
        let run = run_churn(7);
        assert!(
            run.locks_reclaimed >= 1,
            "the mid-critical-section crash must exercise reclamation:\n{}",
            run.report
        );
        assert_eq!(run.leaked_locks, 0);
        assert!(run.crashes >= 3, "the schedule injects at least 3 crashes");
        assert!(
            run.sentinel_crashes >= 1,
            "the 5s crash targets the sentinel"
        );
    }

    #[test]
    fn at_most_once_invocations_execute_at_most_once_across_seeds() {
        // The exactly-once property under churn, crashes, and the
        // reply-drop fault: `work` invocations (at-most-once) never execute
        // twice, even though lost replies force retransmits with attempt
        // counters well past 1. Crashed members make zero executions legal;
        // a client-observed Ok pins the count to exactly one.
        for seed in [7u64, 99, 2026] {
            let run = run_churn(seed);
            assert_eq!(run.dropped, 0, "seed {seed}: ring must be lossless");
            let mut execs: BTreeMap<u64, usize> = BTreeMap::new();
            let mut max_attempt: BTreeMap<u64, u32> = BTreeMap::new();
            let mut completed_ok: std::collections::BTreeSet<u64> =
                std::collections::BTreeSet::new();
            for r in &run.trace {
                match r.event {
                    TraceEvent::RequestExecuted { invocation, .. } => {
                        *execs.entry(invocation).or_default() += 1;
                    }
                    TraceEvent::AttemptStarted {
                        invocation,
                        attempt,
                        ..
                    } => {
                        let e = max_attempt.entry(invocation).or_default();
                        *e = (*e).max(attempt);
                    }
                    TraceEvent::InvocationCompleted {
                        invocation,
                        ok: true,
                        ..
                    } => {
                        completed_ok.insert(invocation);
                    }
                    _ => {}
                }
            }
            let is_amo = |inv: u64| !inv.is_multiple_of(SYNC_EVERY);
            for (&inv, &n) in &execs {
                if is_amo(inv) {
                    assert!(
                        n <= 1,
                        "seed {seed}: at-most-once invocation {inv} executed {n} times\n{}",
                        run.report
                    );
                }
            }
            assert_eq!(run.duplicate_executions, 0, "seed {seed}");
            for &inv in &completed_ok {
                if is_amo(inv) {
                    assert_eq!(
                        execs.get(&inv).copied().unwrap_or(0),
                        1,
                        "seed {seed}: ok-completed at-most-once invocation {inv} \
                         must execute exactly once"
                    );
                }
            }
            // The fault must actually bite: at-most-once invocations that
            // needed more than one attempt yet executed exactly once, and
            // cached replies replayed to absorb the duplicates.
            let retried_exactly_once = execs
                .iter()
                .filter(|&(&inv, &n)| {
                    is_amo(inv) && n == 1 && max_attempt.get(&inv).copied().unwrap_or(0) > 1
                })
                .count();
            assert!(
                retried_exactly_once > 10,
                "seed {seed}: only {retried_exactly_once} retried-yet-once invocations — \
                 the reply-drop fault is not generating duplicates"
            );
            assert!(
                run.dedup_hits > 0 && run.dedup_replayed > 0,
                "seed {seed}: reply caches absorbed no duplicates \
                 (hits {}, replayed {})",
                run.dedup_hits,
                run.dedup_replayed
            );
            assert_eq!(
                run.leaked_cache_entries, 0,
                "seed {seed}: reply caches must be empty after the TTL sweep"
            );
        }
    }

    #[test]
    fn report_and_csv_carry_the_recovery_telemetry() {
        let run = run_churn(7);
        for needle in [
            "Why the pool recovered",
            "crash-to-reelection lag",
            "crash-to-capacity lag",
            "locks reclaimed",
            "quiesce: leaked locks 0, leaked slices 0",
            "duplicate suppression (at-most-once):",
            "duplicate executions 0 (must be 0), leaked cache entries 0 (must be 0)",
        ] {
            assert!(
                run.report.contains(needle),
                "report missing {needle}:\n{}",
                run.report
            );
        }
        for name in [
            "pool.recovery.reelection.lag",
            "pool.recovery.capacity.lag",
            "kv.lock.wait",
            "churn.locks.leaked",
            "churn.slices.leaked",
            "rmi.dedup.hits",
            "rmi.dedup.replayed",
            "rmi.dedup.evicted",
            "rmi.dedup.cache.size",
            "churn.dedup.leaked",
            "churn.dedup.duplicates",
        ] {
            assert!(
                run.metrics_csv.contains(name),
                "CSV missing {name}:\n{}",
                run.metrics_csv
            );
        }
    }
}
