//! Multi-tier application-level scaling (paper §3.3, "Making
//! Application-Level Scaling Decisions").
//!
//! "The mechanisms described above involve making scaling decisions local to
//! an elastic class, and may not be optimal for applications using multiple
//! elastic classes (where the application contains tiers of elastic pools).
//! ElasticRMI also supports decision making at the level of the application
//! using the Decider class."
//!
//! This module reproduces the scenario that motivates the `Decider`: two
//! elastic pools (a front tier and a back tier) sharing one cluster that is
//! **too small for both peaks**. Local fine-grained controllers race for
//! slices first-come-first-served; an application-level decider splits the
//! scarce capacity proportionally to each tier's demand. The experiment
//! measures joint agility both ways.

use elasticrmi::{PoolSample, ScalingDecision, ScalingEngine};
use erm_apps::{demand_vote, AppKind, AppModel};
use erm_cluster::{ClusterConfig, ResourceManager, SliceId};
use erm_metrics::{AgilityMeter, AgilityReport};
use erm_sim::{derive_seed, SimDuration, SimTime};
use erm_workloads::{PatternKind, Workload, WorkloadBuilder};

use crate::deployment::Deployment;

/// How the two tiers' sizes are decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierCoordination {
    /// Each tier runs its own fine-grained controller; slices go to whoever
    /// asks first.
    LocalControllers,
    /// One application-level `Decider` sees both tiers' demand and splits
    /// the scarce cluster proportionally (the paper's §3.3 mechanism).
    GlobalDecider,
}

impl std::fmt::Display for TierCoordination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TierCoordination::LocalControllers => write!(f, "local-controllers"),
            TierCoordination::GlobalDecider => write!(f, "global-decider"),
        }
    }
}

/// Result of a tiered run: per-tier agility plus the joint mean.
#[derive(Debug, Clone)]
pub struct TieredResult {
    /// Coordination mode the run used.
    pub coordination: TierCoordination,
    /// Agility of the front tier (Marketcetera).
    pub front: AgilityReport,
    /// Agility of the back tier (DCS).
    pub back: AgilityReport,
}

impl TieredResult {
    /// Mean of the two tiers' mean agilities.
    pub fn joint_agility(&self) -> f64 {
        (self.front.mean_agility() + self.back.mean_agility()) / 2.0
    }
}

struct Tier {
    app: AppModel,
    workload: Workload,
    engine: ScalingEngine,
    ready: Vec<SliceId>,
    pending: u32,
    draining: erm_sim::EventQueue<SliceId>,
    meter: AgilityMeter,
}

impl Tier {
    fn committed(&self) -> u32 {
        self.ready.len() as u32 + self.pending
    }
}

/// Runs the two-tier scarcity experiment: Marketcetera (front) and DCS
/// (back) on one cluster sized at 70% of their combined peak need, with the
/// two workloads phase-shifted so their peaks collide only part of the time.
pub fn run_tiered(coordination: TierCoordination, seed: u64) -> TieredResult {
    const TICK: SimDuration = SimDuration::from_secs(10);
    const DRAIN_DELAY: SimDuration = SimDuration::from_secs(5);

    let mk_tier = |app_kind: AppKind, label: &str, max_pool: u32| {
        let app = app_kind.model();
        let workload = WorkloadBuilder::new(PatternKind::Cyclic, app.point_a)
            .noise(0.04)
            .seed(derive_seed(seed, label))
            .build();
        let config = Deployment::ElasticRmi.pool_config(&app, max_pool);
        Tier {
            engine: ScalingEngine::new(config, SimTime::ZERO),
            meter: AgilityMeter::paper_default(),
            ready: Vec::new(),
            pending: 0,
            draining: erm_sim::EventQueue::new(),
            app,
            workload,
        }
    };
    let front_peak = AppKind::Marketcetera
        .model()
        .peak_objects(AppKind::Marketcetera.model().point_a * erm_workloads::paper::POINT_B_FACTOR);
    let back_peak = AppKind::Dcs
        .model()
        .peak_objects(AppKind::Dcs.model().point_a * erm_workloads::paper::POINT_B_FACTOR);
    // The scarce cluster: 70% of combined peak.
    let cluster_slices = ((front_peak + back_peak) as f64 * 0.7) as u32;
    let mut cluster = ResourceManager::new(ClusterConfig {
        nodes: cluster_slices,
        slices_per_node: 1,
        provisioning: Deployment::ElasticRmi.provisioning(),
        seed: derive_seed(seed, "tiered-cluster"),
        ..ClusterConfig::default()
    });

    let mut tiers = [
        mk_tier(AppKind::Marketcetera, "front", front_peak + 4),
        mk_tier(AppKind::Dcs, "back", back_peak + 4),
    ];

    // Initial provisioning: what each tier needs at t=0.
    let mut now = SimTime::ZERO;
    let mut grant_owner: Vec<(u64, usize)> = Vec::new(); // request_id -> tier
    for (i, tier) in tiers.iter_mut().enumerate() {
        let need = tier.app.req_min(tier.workload.rate_at(now), 0) as u32;
        if let Ok(out) = cluster.request_slices(need, now) {
            tier.pending += out.granted;
            grant_owner.push((out.request_id, i));
        }
    }

    let end = SimTime::ZERO + tiers[0].workload.duration();
    while now <= end {
        // Deliver grants to their owning tier.
        for grant in cluster.poll_ready(now) {
            let owner = grant_owner
                .iter()
                .find(|(id, _)| *id == grant.request_id)
                .map_or(0, |&(_, t)| t);
            tiers[owner].ready.push(grant.slice);
            tiers[owner].pending = tiers[owner].pending.saturating_sub(1);
        }
        // Finish drains.
        for tier in tiers.iter_mut() {
            for slice in tier.draining.pop_due(now).collect::<Vec<_>>() {
                let _ = cluster.release(slice, now);
            }
        }

        // Demand per tier. The back tier's cycle is phase-shifted ~1/3.
        let rates = [
            tiers[0].workload.noisy_rate_at(now),
            tiers[1]
                .workload
                .noisy_rate_at(now + SimDuration::from_minutes(170)),
        ];

        // Desired sizes.
        let desired: Vec<u32> = match coordination {
            TierCoordination::LocalControllers => tiers
                .iter()
                .zip(rates)
                .map(|(tier, rate)| {
                    let vote =
                        demand_vote(rate, tier.app.per_object_capacity, tier.committed(), 0.9);
                    (i64::from(tier.committed()) + i64::from(vote)).max(2) as u32
                })
                .collect(),
            TierCoordination::GlobalDecider => {
                // The Decider sees both demands and splits the whole cluster
                // proportionally when the sum exceeds capacity.
                let needs: Vec<f64> = tiers
                    .iter()
                    .zip(rates)
                    .map(|(tier, rate)| (rate / (tier.app.per_object_capacity * 0.9)).ceil())
                    .collect();
                let total: f64 = needs.iter().sum();
                let budget = cluster_slices as f64;
                if total <= budget {
                    needs.iter().map(|n| (*n as u32).max(2)).collect()
                } else {
                    // Proportional split of the scarce budget, rounding to
                    // nearest and never below the protocol floor.
                    let scale = budget / total;
                    needs
                        .iter()
                        .map(|n| ((n * scale).round() as u32).max(2))
                        .collect()
                }
            }
        };

        // Apply through each tier's real scaling engine (AppLevel semantics:
        // desired size in the sample).
        for (i, tier) in tiers.iter_mut().enumerate() {
            let sample = PoolSample {
                pool_size: tier.committed(),
                avg_cpu: 0.0,
                avg_ram: 0.0,
                fine_votes: vec![
                    (i64::from(desired[i]) - i64::from(tier.committed())).clamp(-4, 16)
                        as i32;
                    tier.ready.len().max(1)
                ],
                desired_size: None,
                ..PoolSample::default()
            };
            match tier.engine.poll(now, &sample) {
                ScalingDecision::Grow(k) => {
                    if let Ok(out) = cluster.request_slices(k, now) {
                        if out.granted > 0 {
                            tier.pending += out.granted;
                            grant_owner.push((out.request_id, i));
                        }
                    }
                }
                ScalingDecision::Shrink(k) => {
                    for _ in 0..k {
                        if tier.ready.len() as u32 <= tier.engine.config().min_pool_size() {
                            break;
                        }
                        if let Some(slice) = tier.ready.pop() {
                            tier.draining.schedule(now + DRAIN_DELAY, slice);
                        }
                    }
                }
                ScalingDecision::Hold => {}
            }
        }

        // Metrics.
        let minute = now.as_minutes_f64() as u64;
        for (tier, rate) in tiers.iter_mut().zip(rates) {
            let req = tier.app.req_min(rate, minute);
            tier.meter
                .record(now, req, f64::from(tier.ready.len() as u32));
        }

        now += TICK;
    }

    let [front, back] = tiers;
    TieredResult {
        coordination,
        front: front.meter.finish(),
        back: back.meter.finish(),
    }
}

/// Renders the tiered comparison for the `figures --ablation` output.
pub fn render_tiered(seed: u64) -> String {
    let mut out = String::new();
    for coordination in [
        TierCoordination::LocalControllers,
        TierCoordination::GlobalDecider,
    ] {
        let r = run_tiered(coordination, seed);
        out.push_str(&format!(
            "  {:<18} joint={:.2} front={:.2} (shortage {:.2}) back={:.2} (shortage {:.2})\n",
            r.coordination.to_string(),
            r.joint_agility(),
            r.front.mean_agility(),
            r.front.mean_shortage(),
            r.back.mean_agility(),
            r.back.mean_shortage(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiered_runs_are_deterministic() {
        let a = run_tiered(TierCoordination::GlobalDecider, 7);
        let b = run_tiered(TierCoordination::GlobalDecider, 7);
        assert_eq!(a.joint_agility(), b.joint_agility());
    }

    #[test]
    fn global_decider_reduces_shortage_under_scarcity() {
        // The point of §3.3: with a shared, scarce cluster, the tier that
        // asks last starves under local controllers; the Decider's
        // proportional split bounds both tiers' shortage.
        let local = run_tiered(TierCoordination::LocalControllers, 7);
        let global = run_tiered(TierCoordination::GlobalDecider, 7);
        let local_worst = local.front.mean_shortage().max(local.back.mean_shortage());
        let global_worst = global
            .front
            .mean_shortage()
            .max(global.back.mean_shortage());
        assert!(
            global_worst <= local_worst + 0.5,
            "decider must not starve a tier: worst shortage {global_worst:.2} vs {local_worst:.2}"
        );
    }

    #[test]
    fn both_tiers_get_capacity() {
        let r = run_tiered(TierCoordination::GlobalDecider, 7);
        assert!(r.front.sub_samples() > 400);
        assert!(r.front.mean_agility() < 30.0);
        assert!(r.back.mean_agility() < 30.0);
    }

    #[test]
    fn render_covers_both_modes() {
        let text = render_tiered(3);
        assert!(text.contains("local-controllers"));
        assert!(text.contains("global-decider"));
    }
}
