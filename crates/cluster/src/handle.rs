//! Shared, internally-locked handle to a [`ResourceManager`].

use std::sync::Arc;

use erm_sim::SimTime;
use parking_lot::Mutex;

use crate::manager::{
    AdminAlert, ClusterError, NodeId, RequestOutcome, ResourceManager, SliceGrant, SliceId,
};

/// A cloneable handle to a shared [`ResourceManager`].
///
/// The manager itself is a plain single-threaded state machine; the pool
/// runtime, fault-injection harnesses, and tests all poke at the same
/// instance from different threads. `ClusterHandle` owns that sharing: it
/// wraps the manager in an `Arc<Mutex<..>>` internally and exposes the
/// manager's API as short, self-locking methods, so callers never handle a
/// guard (or a deadlock) themselves.
///
/// # Example
///
/// ```
/// use erm_cluster::{ClusterConfig, ClusterHandle, ResourceManager};
/// use erm_sim::SimTime;
///
/// let cluster = ClusterHandle::new(ResourceManager::new(ClusterConfig::default()));
/// let worker = cluster.clone(); // same underlying manager
/// worker.request_slices(2, SimTime::ZERO).unwrap();
/// assert!(cluster.free_slices() < cluster.total_slices());
/// ```
#[derive(Clone)]
pub struct ClusterHandle {
    inner: Arc<Mutex<ResourceManager>>,
}

impl ClusterHandle {
    /// Wraps `manager` for shared use.
    pub fn new(manager: ResourceManager) -> Self {
        ClusterHandle {
            inner: Arc::new(Mutex::new(manager)),
        }
    }

    /// Runs `f` with exclusive access to the manager, for call sequences
    /// that must be atomic or APIs without a delegating method.
    pub fn with<R>(&self, f: impl FnOnce(&mut ResourceManager) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// See [`ResourceManager::set_telemetry`].
    pub fn set_telemetry(
        &self,
        trace: erm_metrics::TraceHandle,
        metrics: &erm_metrics::MetricsHandle,
    ) {
        self.inner.lock().set_telemetry(trace, metrics);
    }

    /// See [`ResourceManager::request_slices`].
    pub fn request_slices(&self, n: u32, now: SimTime) -> Result<RequestOutcome, ClusterError> {
        self.inner.lock().request_slices(n, now)
    }

    /// See [`ResourceManager::poll_ready`].
    pub fn poll_ready(&self, now: SimTime) -> Vec<SliceGrant> {
        self.inner.lock().poll_ready(now)
    }

    /// See [`ResourceManager::release`].
    pub fn release(&self, slice: SliceId, now: SimTime) -> Result<(), ClusterError> {
        self.inner.lock().release(slice, now)
    }

    /// See [`ResourceManager::drain_revocations`].
    pub fn drain_revocations(&self) -> Vec<SliceId> {
        self.inner.lock().drain_revocations()
    }

    /// See [`ResourceManager::total_slices`].
    pub fn total_slices(&self) -> usize {
        self.inner.lock().total_slices()
    }

    /// See [`ResourceManager::free_slices`].
    pub fn free_slices(&self) -> usize {
        self.inner.lock().free_slices()
    }

    /// See [`ResourceManager::slices_in_use`].
    pub fn slices_in_use(&self) -> usize {
        self.inner.lock().slices_in_use()
    }

    /// See [`ResourceManager::pending_slices`].
    pub fn pending_slices(&self) -> usize {
        self.inner.lock().pending_slices()
    }

    /// See [`ResourceManager::utilization`].
    pub fn utilization(&self) -> f64 {
        self.inner.lock().utilization()
    }

    /// See [`ResourceManager::fail_node`].
    pub fn fail_node(&self, node: NodeId) {
        self.inner.lock().fail_node(node);
    }

    /// See [`ResourceManager::repair_node`].
    pub fn repair_node(&self, node: NodeId) {
        self.inner.lock().repair_node(node);
    }

    /// See [`ResourceManager::fail_master_until`].
    pub fn fail_master_until(&self, until: SimTime) {
        self.inner.lock().fail_master_until(until);
    }

    /// See [`ResourceManager::master_available`].
    pub fn master_available(&self, now: SimTime) -> bool {
        self.inner.lock().master_available(now)
    }

    /// See [`ResourceManager::set_admin_thresholds`].
    pub fn set_admin_thresholds(&self, low: f64, high: f64) {
        self.inner.lock().set_admin_thresholds(low, high);
    }

    /// See [`ResourceManager::drain_alerts`].
    pub fn drain_alerts(&self) -> Vec<AdminAlert> {
        self.inner.lock().drain_alerts()
    }
}

impl std::fmt::Debug for ClusterHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterHandle")
            .field("total_slices", &self.total_slices())
            .field("free_slices", &self.free_slices())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::ClusterConfig;
    use crate::LatencyModel;

    fn handle() -> ClusterHandle {
        ClusterHandle::new(ResourceManager::new(ClusterConfig {
            nodes: 4,
            slices_per_node: 2,
            provisioning: LatencyModel::instant(),
            ..ClusterConfig::default()
        }))
    }

    #[test]
    fn clones_share_one_manager() {
        let a = handle();
        let b = a.clone();
        a.request_slices(3, SimTime::ZERO).unwrap();
        assert_eq!(b.free_slices(), b.total_slices() - 3);
    }

    #[test]
    fn with_gives_exclusive_access() {
        let cluster = handle();
        cluster.request_slices(1, SimTime::ZERO).unwrap();
        let ready = cluster.with(|m| m.poll_ready(SimTime::from_secs(1)));
        assert_eq!(ready.len(), 1);
        let slice = ready[0].slice;
        cluster.release(slice, SimTime::from_secs(2)).unwrap();
        assert_eq!(cluster.slices_in_use(), 0);
    }

    #[test]
    fn delegates_failure_injection() {
        let cluster = handle();
        cluster.request_slices(2, SimTime::ZERO).unwrap();
        cluster.poll_ready(SimTime::from_secs(1));
        let grants = cluster.with(|m| m.slices_in_use());
        assert_eq!(grants, 2);
        cluster.fail_node(NodeId(0));
        assert!(!cluster.drain_revocations().is_empty());
        cluster.fail_master_until(SimTime::from_secs(10));
        assert!(!cluster.master_available(SimTime::from_secs(5)));
        assert!(cluster.master_available(SimTime::from_secs(10)));
    }
}
