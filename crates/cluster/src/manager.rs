//! The resource manager: slices, grants, provisioning, failures, alerts.

use std::collections::{BTreeSet, HashSet};
use std::fmt;

use erm_metrics::{Histogram, MetricsHandle, TraceEvent, TraceHandle};
use erm_sim::{derive_seed, seeded_rng, EventQueue, SimTime};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::latency::LatencyModel;

/// Identifies a physical/virtual node managed by the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// Identifies one slice (resource offer) of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SliceId(pub u64);

impl fmt::Display for SliceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slice-{}", self.0)
    }
}

/// A slice that finished provisioning and is ready to host one elastic
/// object (at most one — the paper's invariant).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SliceGrant {
    /// The granted slice.
    pub slice: SliceId,
    /// The node hosting the slice.
    pub node: NodeId,
    /// CPUs reserved for the slice.
    pub cpus: f64,
    /// Memory (GiB) reserved for the slice.
    pub mem_gib: f64,
    /// The request this grant satisfies.
    pub request_id: u64,
    /// When the slice became usable.
    pub ready_at: SimTime,
}

/// Result of a slice request. Mirrors the paper's instantiation rule: "if
/// only `l < k` are available, then only `l` objects are created".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// Identifier shared by all grants resulting from this request.
    pub request_id: u64,
    /// How many slices were granted (`granted <= requested`).
    pub granted: u32,
    /// How many were requested.
    pub requested: u32,
}

/// Errors surfaced by the cluster manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The Mesos master is unreachable; scaling operations are unavailable
    /// until it recovers (paper §4.4).
    MasterDown,
    /// A slice was released or re-granted in an invalid state.
    UnknownSlice(SliceId),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::MasterDown => write!(f, "cluster master is down"),
            ClusterError::UnknownSlice(id) => write!(f, "slice {id} is not currently granted"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// An administrator notification about cluster utilization (paper §4.2:
/// "enables administrators to be notified if the utilization of the Mesos
/// cluster exceeds or falls below configurable thresholds").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdminAlert {
    /// Utilization rose above the high threshold at this time.
    HighUtilization {
        /// When the threshold was crossed.
        at: SimTime,
        /// Utilization at crossing.
        utilization: f64,
    },
    /// Utilization fell below the low threshold at this time.
    LowUtilization {
        /// When the threshold was crossed.
        at: SimTime,
        /// Utilization at crossing.
        utilization: f64,
    },
}

/// Static description of a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of nodes under management.
    pub nodes: u32,
    /// Slices carved out of each node.
    pub slices_per_node: u32,
    /// CPUs reserved per slice.
    pub cpus_per_slice: f64,
    /// Memory (GiB) reserved per slice.
    pub mem_gib_per_slice: f64,
    /// Provisioning-latency model for new grants.
    pub provisioning: LatencyModel,
    /// Seed for latency jitter.
    pub seed: u64,
}

impl Default for ClusterConfig {
    /// A 64-node cluster with 2 slices per node and ElasticRMI-like
    /// provisioning latency.
    fn default() -> Self {
        ClusterConfig {
            nodes: 64,
            slices_per_node: 2,
            cpus_per_slice: 2.0,
            mem_gib_per_slice: 2.0,
            provisioning: LatencyModel::elastic_rmi_default(),
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
struct PendingGrant {
    slice: SliceId,
    request_id: u64,
    requested_at: SimTime,
}

/// The cluster resource manager. See the [crate docs](crate) for an overview.
#[derive(Debug)]
pub struct ResourceManager {
    config: ClusterConfig,
    free: Vec<SliceId>,
    provisioning: EventQueue<PendingGrant>,
    // Ordered so failure paths (fail_node's revocation sweep) visit slices
    // in slice-id order: crash recovery must be deterministic per seed.
    in_use: BTreeSet<SliceId>,
    failed_nodes: HashSet<NodeId>,
    revoked: Vec<SliceId>,
    pending_count: usize,
    master_down_until: Option<SimTime>,
    deferred_releases: Vec<SliceId>,
    rng: StdRng,
    next_request: u64,
    alert_high: Option<f64>,
    alert_low: Option<f64>,
    above_high: bool,
    below_low: bool,
    alerts: Vec<AdminAlert>,
    trace: TraceHandle,
    provision_latency: Histogram,
}

impl ResourceManager {
    /// Creates a manager with every slice free.
    ///
    /// # Panics
    ///
    /// Panics if the configuration describes an empty cluster.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(
            config.nodes > 0 && config.slices_per_node > 0,
            "cluster must have at least one slice"
        );
        let total = u64::from(config.nodes) * u64::from(config.slices_per_node);
        // Free list kept in reverse so pops hand out low ids first.
        let free: Vec<SliceId> = (0..total).rev().map(SliceId).collect();
        let rng = seeded_rng(derive_seed(config.seed, "cluster"));
        ResourceManager {
            config,
            free,
            provisioning: EventQueue::new(),
            in_use: BTreeSet::new(),
            failed_nodes: HashSet::new(),
            revoked: Vec::new(),
            pending_count: 0,
            master_down_until: None,
            deferred_releases: Vec::new(),
            rng,
            next_request: 0,
            alert_high: None,
            alert_low: None,
            above_high: false,
            below_low: false,
            alerts: Vec::new(),
            trace: TraceHandle::disabled(),
            provision_latency: Histogram::disabled(),
        }
    }

    /// Enables telemetry: offer request/outcome trace events and the
    /// `cluster.provision.latency` histogram (request → slice ready).
    pub fn set_telemetry(&mut self, trace: TraceHandle, metrics: &MetricsHandle) {
        self.trace = trace;
        self.provision_latency = metrics.histogram("cluster.provision.latency");
    }

    /// The node a slice belongs to.
    pub fn node_of(&self, slice: SliceId) -> NodeId {
        NodeId((slice.0 / u64::from(self.config.slices_per_node)) as u32)
    }

    /// Total slices in the cluster.
    pub fn total_slices(&self) -> usize {
        (self.config.nodes * self.config.slices_per_node) as usize
    }

    /// Slices currently free (not granted, not provisioning).
    pub fn free_slices(&self) -> usize {
        self.free.len()
    }

    /// Slices currently granted and ready.
    pub fn slices_in_use(&self) -> usize {
        self.in_use.len()
    }

    /// Slices granted but still provisioning (not yet collectable with
    /// [`ResourceManager::poll_ready`]).
    pub fn pending_slices(&self) -> usize {
        self.pending_count
    }

    /// Fraction of the cluster that is granted or provisioning.
    pub fn utilization(&self) -> f64 {
        1.0 - self.free.len() as f64 / self.total_slices() as f64
    }

    /// Requests `n` slices. Grants `min(n, free)` immediately (they then
    /// provision asynchronously; collect them with [`poll_ready`]).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::MasterDown`] while a master failure window is
    /// active.
    ///
    /// [`poll_ready`]: ResourceManager::poll_ready
    pub fn request_slices(&mut self, n: u32, now: SimTime) -> Result<RequestOutcome, ClusterError> {
        self.check_master(now)?;
        let request_id = self.next_request;
        self.next_request += 1;
        self.trace.emit(
            now,
            TraceEvent::OfferRequested {
                request_id,
                count: n,
            },
        );
        let load = self.utilization();
        let mut granted = 0u32;
        let mut skipped: Vec<SliceId> = Vec::new();
        while granted < n {
            let Some(slice) = self.free.pop() else { break };
            if self.failed_nodes.contains(&self.node_of(slice)) {
                skipped.push(slice);
                continue;
            }
            let latency = self.config.provisioning.sample(&mut self.rng, load);
            self.pending_count += 1;
            self.provisioning.schedule(
                now + latency,
                PendingGrant {
                    slice,
                    request_id,
                    requested_at: now,
                },
            );
            granted += 1;
        }
        // Slices on failed nodes stay in the pool (they come back with the
        // node) but cannot be granted now.
        self.free.extend(skipped);
        self.refresh_alerts(now);
        self.trace.emit(
            now,
            TraceEvent::OfferOutcome {
                request_id,
                granted,
                requested: n,
            },
        );
        Ok(RequestOutcome {
            request_id,
            granted,
            requested: n,
        })
    }

    /// Collects every grant whose provisioning finished by `now`.
    pub fn poll_ready(&mut self, now: SimTime) -> Vec<SliceGrant> {
        let mut ready = Vec::new();
        while let Some((ready_at, pending)) = self.provisioning.pop_one_due(now) {
            self.pending_count -= 1;
            self.in_use.insert(pending.slice);
            self.provision_latency
                .record(ready_at.saturating_since(pending.requested_at));
            ready.push(SliceGrant {
                slice: pending.slice,
                node: self.node_of(pending.slice),
                cpus: self.config.cpus_per_slice,
                mem_gib: self.config.mem_gib_per_slice,
                request_id: pending.request_id,
                ready_at,
            });
        }
        ready
    }

    /// Returns a slice to the free pool ("this slice is then available to
    /// other elastic objects in the cluster, or for subsequent use by the
    /// same elastic object", §2.5). While the master is down the release is
    /// deferred and applied automatically on recovery.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownSlice`] if the slice is not currently
    /// granted.
    pub fn release(&mut self, slice: SliceId, now: SimTime) -> Result<(), ClusterError> {
        if !self.in_use.contains(&slice) {
            return Err(ClusterError::UnknownSlice(slice));
        }
        if self.check_master(now).is_err() {
            // Defer: applied in check_master once the master recovers.
            if !self.deferred_releases.contains(&slice) {
                self.deferred_releases.push(slice);
            }
            return Ok(());
        }
        self.in_use.remove(&slice);
        self.free.push(slice);
        self.refresh_alerts(now);
        Ok(())
    }

    /// Fails a whole node: every ready or provisioning slice on it is
    /// revoked (collect the revocations with
    /// [`ResourceManager::drain_revocations`]) and its slices cannot be
    /// granted until [`ResourceManager::repair_node`].
    pub fn fail_node(&mut self, node: NodeId) {
        self.failed_nodes.insert(node);
        // Revoke in-use slices on the node.
        let lost: Vec<SliceId> = self
            .in_use
            .iter()
            .copied()
            .filter(|&s| self.node_of(s) == node)
            .collect();
        for slice in lost {
            self.in_use.remove(&slice);
            self.free.push(slice); // back in inventory, ungrantable until repair
            self.revoked.push(slice);
        }
        // Revoke slices still provisioning on the node.
        let pending = self.provisioning.drain_all();
        for (due, grant) in pending {
            if self.node_of(grant.slice) == node {
                self.pending_count -= 1;
                self.free.push(grant.slice);
                self.revoked.push(grant.slice);
            } else {
                self.provisioning.schedule(due, grant);
            }
        }
    }

    /// Returns a failed node to service; its slices become grantable again.
    pub fn repair_node(&mut self, node: NodeId) {
        self.failed_nodes.remove(&node);
    }

    /// Takes the slices revoked by node failures since the last call. The
    /// middleware uses this to treat affected members as crashed.
    pub fn drain_revocations(&mut self) -> Vec<SliceId> {
        std::mem::take(&mut self.revoked)
    }

    /// Simulates a Mesos master outage lasting until `until`. During the
    /// outage slice requests fail and releases are deferred, but already
    /// provisioned slices keep serving (paper §4.4: failures "affect the
    /// addition/removal of new objects until Mesos recovers").
    pub fn fail_master_until(&mut self, until: SimTime) {
        self.master_down_until = Some(until);
    }

    /// Whether the master is reachable at `now`.
    pub fn master_available(&self, now: SimTime) -> bool {
        match self.master_down_until {
            Some(until) => now >= until,
            None => true,
        }
    }

    fn check_master(&mut self, now: SimTime) -> Result<(), ClusterError> {
        if self.master_available(now) {
            if self.master_down_until.take().is_some() {
                // Recovery: apply deferred releases.
                for slice in std::mem::take(&mut self.deferred_releases) {
                    self.in_use.remove(&slice);
                    self.free.push(slice);
                }
            }
            Ok(())
        } else {
            Err(ClusterError::MasterDown)
        }
    }

    /// Configures the admin alert thresholds (fractions of total capacity).
    ///
    /// # Panics
    ///
    /// Panics unless `low <= high` and both are within `[0, 1]`.
    pub fn set_admin_thresholds(&mut self, low: f64, high: f64) {
        assert!(
            (0.0..=1.0).contains(&low) && (0.0..=1.0).contains(&high) && low <= high,
            "thresholds must satisfy 0 <= low <= high <= 1"
        );
        self.alert_low = Some(low);
        self.alert_high = Some(high);
    }

    fn refresh_alerts(&mut self, now: SimTime) {
        let u = self.utilization();
        if let Some(high) = self.alert_high {
            if u > high && !self.above_high {
                self.above_high = true;
                self.alerts.push(AdminAlert::HighUtilization {
                    at: now,
                    utilization: u,
                });
            } else if u <= high {
                self.above_high = false;
            }
        }
        if let Some(low) = self.alert_low {
            if u < low && !self.below_low {
                self.below_low = true;
                self.alerts.push(AdminAlert::LowUtilization {
                    at: now,
                    utilization: u,
                });
            } else if u >= low {
                self.below_low = false;
            }
        }
    }

    /// Takes and clears the pending admin alerts.
    pub fn drain_alerts(&mut self) -> Vec<AdminAlert> {
        std::mem::take(&mut self.alerts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erm_sim::SimDuration;

    fn small_cluster(provisioning: LatencyModel) -> ResourceManager {
        ResourceManager::new(ClusterConfig {
            nodes: 4,
            slices_per_node: 2,
            provisioning,
            ..ClusterConfig::default()
        })
    }

    fn instant_cluster() -> ResourceManager {
        small_cluster(LatencyModel::instant())
    }

    #[test]
    fn grants_all_when_capacity_allows() {
        let mut c = instant_cluster();
        let out = c.request_slices(5, SimTime::ZERO).unwrap();
        assert_eq!(out.granted, 5);
        assert_eq!(c.poll_ready(SimTime::ZERO).len(), 5);
        assert_eq!(c.slices_in_use(), 5);
        assert_eq!(c.free_slices(), 3);
    }

    #[test]
    fn grants_l_less_than_k_when_short() {
        // Paper §4.2: "If only l < k are available, then only l objects are
        // created."
        let mut c = instant_cluster();
        let out = c.request_slices(100, SimTime::ZERO).unwrap();
        assert_eq!(out.granted, 8);
        assert_eq!(out.requested, 100);
        assert_eq!(c.free_slices(), 0);
    }

    #[test]
    fn provisioning_latency_delays_readiness() {
        let mut c = small_cluster(LatencyModel::Fixed(SimDuration::from_secs(20)));
        c.request_slices(2, SimTime::ZERO).unwrap();
        assert!(c.poll_ready(SimTime::from_secs(19)).is_empty());
        assert_eq!(c.poll_ready(SimTime::from_secs(20)).len(), 2);
    }

    #[test]
    fn telemetry_records_offers_and_provision_latency() {
        use erm_metrics::{MetricsHandle, TraceHandle, TraceSink};
        let sink = std::sync::Arc::new(TraceSink::new(64));
        let (metrics, registry) = MetricsHandle::shared();
        let mut c = small_cluster(LatencyModel::Fixed(SimDuration::from_secs(20)));
        c.set_telemetry(TraceHandle::new(std::sync::Arc::clone(&sink)), &metrics);

        c.request_slices(2, SimTime::ZERO).unwrap();
        assert_eq!(c.poll_ready(SimTime::from_secs(20)).len(), 2);

        let events: Vec<_> = sink.snapshot().into_iter().map(|r| r.event).collect();
        let requested = events
            .iter()
            .any(|e| matches!(e, TraceEvent::OfferRequested { count: 2, .. }));
        let resolved = events.iter().any(|e| {
            matches!(
                e,
                TraceEvent::OfferOutcome {
                    granted: 2,
                    requested: 2,
                    ..
                }
            )
        });
        assert!(requested, "missing OfferRequested: {events:?}");
        assert!(resolved, "missing OfferOutcome: {events:?}");

        let snap = registry.snapshot(SimTime::from_secs(20));
        let hist = snap
            .histograms
            .iter()
            .find(|(name, _)| *name == "cluster.provision.latency")
            .map(|(_, h)| h.clone())
            .expect("provision latency histogram registered");
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.max(), Some(SimDuration::from_secs(20)));
    }

    #[test]
    fn released_slices_are_reusable() {
        let mut c = instant_cluster();
        c.request_slices(8, SimTime::ZERO).unwrap();
        let grants = c.poll_ready(SimTime::ZERO);
        c.release(grants[0].slice, SimTime::from_secs(1)).unwrap();
        assert_eq!(c.free_slices(), 1);
        let out = c.request_slices(1, SimTime::from_secs(2)).unwrap();
        assert_eq!(out.granted, 1);
        let again = c.poll_ready(SimTime::from_secs(2));
        assert_eq!(again[0].slice, grants[0].slice);
    }

    #[test]
    fn release_of_unknown_slice_errors() {
        let mut c = instant_cluster();
        let err = c.release(SliceId(42), SimTime::ZERO).unwrap_err();
        assert_eq!(err, ClusterError::UnknownSlice(SliceId(42)));
    }

    #[test]
    fn each_slice_granted_at_most_once() {
        let mut c = instant_cluster();
        c.request_slices(8, SimTime::ZERO).unwrap();
        let grants = c.poll_ready(SimTime::ZERO);
        let mut ids: Vec<_> = grants.iter().map(|g| g.slice).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 8, "no slice may host two objects");
    }

    #[test]
    fn node_mapping_groups_slices() {
        let c = instant_cluster();
        assert_eq!(c.node_of(SliceId(0)), NodeId(0));
        assert_eq!(c.node_of(SliceId(1)), NodeId(0));
        assert_eq!(c.node_of(SliceId(2)), NodeId(1));
    }

    #[test]
    fn master_failure_blocks_requests_until_recovery() {
        let mut c = instant_cluster();
        c.fail_master_until(SimTime::from_secs(100));
        assert_eq!(
            c.request_slices(1, SimTime::from_secs(50)).unwrap_err(),
            ClusterError::MasterDown
        );
        assert!(!c.master_available(SimTime::from_secs(50)));
        let out = c.request_slices(1, SimTime::from_secs(100)).unwrap();
        assert_eq!(out.granted, 1);
    }

    #[test]
    fn releases_during_outage_are_deferred() {
        let mut c = instant_cluster();
        c.request_slices(2, SimTime::ZERO).unwrap();
        let grants = c.poll_ready(SimTime::ZERO);
        c.fail_master_until(SimTime::from_secs(100));
        c.release(grants[0].slice, SimTime::from_secs(10)).unwrap();
        // Still accounted as in-use during the outage.
        assert_eq!(c.free_slices(), 6);
        // First post-recovery operation applies the deferred release.
        c.request_slices(0, SimTime::from_secs(200)).unwrap();
        assert_eq!(c.free_slices(), 7);
    }

    #[test]
    fn admin_alerts_fire_on_threshold_crossings() {
        let mut c = instant_cluster();
        c.set_admin_thresholds(0.2, 0.8);
        c.request_slices(7, SimTime::ZERO).unwrap(); // 7/8 = 0.875 > 0.8
        let alerts = c.drain_alerts();
        assert!(matches!(alerts[0], AdminAlert::HighUtilization { .. }));
        let grants = c.poll_ready(SimTime::ZERO);
        for g in &grants {
            c.release(g.slice, SimTime::from_secs(1)).unwrap();
        }
        let alerts = c.drain_alerts();
        assert!(alerts
            .iter()
            .any(|a| matches!(a, AdminAlert::LowUtilization { .. })));
    }

    #[test]
    fn alerts_do_not_repeat_while_level_persists() {
        let mut c = instant_cluster();
        c.set_admin_thresholds(0.0, 0.5);
        c.request_slices(5, SimTime::ZERO).unwrap();
        c.request_slices(1, SimTime::from_secs(1)).unwrap();
        let alerts = c.drain_alerts();
        assert_eq!(alerts.len(), 1, "one alert per crossing, not per poll");
    }

    #[test]
    fn failed_node_revokes_its_slices() {
        let mut c = instant_cluster();
        c.request_slices(4, SimTime::ZERO).unwrap();
        let grants = c.poll_ready(SimTime::ZERO);
        let node0_slices: Vec<SliceId> = grants
            .iter()
            .filter(|g| g.node == NodeId(0))
            .map(|g| g.slice)
            .collect();
        assert!(!node0_slices.is_empty());
        c.fail_node(NodeId(0));
        let revoked = c.drain_revocations();
        assert_eq!(revoked.len(), node0_slices.len());
        for s in &node0_slices {
            assert!(revoked.contains(s));
        }
        // Second drain is empty.
        assert!(c.drain_revocations().is_empty());
    }

    #[test]
    fn failed_node_slices_are_not_granted_until_repair() {
        let mut c = instant_cluster(); // 4 nodes x 2 slices
        c.fail_node(NodeId(0));
        let out = c.request_slices(8, SimTime::ZERO).unwrap();
        assert_eq!(out.granted, 6, "two slices of the failed node withheld");
        for g in c.poll_ready(SimTime::ZERO) {
            assert_ne!(g.node, NodeId(0));
        }
        c.repair_node(NodeId(0));
        let out = c.request_slices(8, SimTime::ZERO).unwrap();
        assert_eq!(out.granted, 2, "repaired node's slices grantable again");
    }

    #[test]
    fn node_failure_revokes_pending_provisioning_too() {
        let mut c = small_cluster(LatencyModel::Fixed(SimDuration::from_secs(60)));
        c.request_slices(8, SimTime::ZERO).unwrap();
        c.fail_node(NodeId(1));
        let revoked = c.drain_revocations();
        assert_eq!(revoked.len(), 2, "both provisioning slices of node 1");
        // Remaining grants still arrive on schedule.
        let ready = c.poll_ready(SimTime::from_secs(60));
        assert_eq!(ready.len(), 6);
    }

    #[test]
    fn utilization_counts_pending_provisioning() {
        let mut c = small_cluster(LatencyModel::Fixed(SimDuration::from_secs(60)));
        c.request_slices(4, SimTime::ZERO).unwrap();
        assert_eq!(c.utilization(), 0.5);
        assert_eq!(c.slices_in_use(), 0, "not ready yet, but reserved");
    }
}
