#![warn(missing_docs)]

//! Mesos-like cluster resource manager substrate (paper §2.4, §4.2).
//!
//! ElasticRMI obtains "virtual nodes" by asking Apache Mesos for *slices*
//! (resource offers): a configurable reservation of CPU and memory on one of
//! the managed nodes, at most one elastic object per slice. This crate
//! reproduces the parts of that contract the middleware observes:
//!
//! * a fixed inventory of nodes divided into slices,
//! * a grant protocol where a request for `k` slices may yield `l < k`
//!   when the cluster is short (the paper instantiates only `l` objects),
//! * a provisioning-latency model (slices become usable after a delay),
//! * slice release/reuse ("this slice is then available to other elastic
//!   objects in the cluster"),
//! * master failures, during which adding/removing objects is impossible
//!   (paper §4.4), and
//! * administrator alerts when utilization crosses configurable thresholds
//!   (paper §4.2).
//!
//! # Example
//!
//! ```
//! use erm_cluster::{ClusterConfig, ResourceManager};
//! use erm_sim::{SimDuration, SimTime};
//!
//! let mut cluster = ResourceManager::new(ClusterConfig::default());
//! let outcome = cluster.request_slices(3, SimTime::ZERO).unwrap();
//! assert_eq!(outcome.granted, 3);
//! // Slices are usable only after the provisioning latency has elapsed.
//! let ready = cluster.poll_ready(SimTime::ZERO + SimDuration::from_minutes(5));
//! assert_eq!(ready.len(), 3);
//! ```

mod handle;
mod latency;
mod manager;

pub use handle::ClusterHandle;
pub use latency::LatencyModel;
pub use manager::{
    AdminAlert, ClusterConfig, ClusterError, NodeId, RequestOutcome, ResourceManager, SliceGrant,
    SliceId,
};
