//! Provisioning-latency models.

use erm_sim::SimDuration;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How long a granted slice takes to become usable.
///
/// The paper contrasts ElasticRMI's sub-30-second provisioning (Mesos slices
/// are lightweight Linux containers) with CloudWatch/AutoScaling's
/// minutes-scale VM boot times, and observes provisioning latency *growing
/// with workload* (Fig. 8). Each of those regimes is expressible here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Always exactly this long (e.g. 0 for the overprovisioning oracle).
    Fixed(SimDuration),
    /// Uniformly distributed in `[min, max]`.
    Uniform {
        /// Smallest possible latency.
        min: SimDuration,
        /// Largest possible latency.
        max: SimDuration,
    },
    /// `base + slope_per_load · load + jitter`, where `load` is a caller
    /// supplied 0..1 load factor (cluster utilization or pool pressure) and
    /// jitter is uniform in `[0, jitter]`. Reproduces the Fig. 8 observation
    /// that provisioning slows down as the workload grows.
    LoadDependent {
        /// Latency at zero load.
        base: SimDuration,
        /// Additional latency at full load.
        slope_per_load: SimDuration,
        /// Upper bound of the uniform jitter term.
        jitter: SimDuration,
    },
}

impl LatencyModel {
    /// Mesos-container-like latency used for ElasticRMI deployments: a few
    /// seconds at idle, growing toward ~30 s under full load (Fig. 8 caps
    /// below 30 s).
    pub fn elastic_rmi_default() -> Self {
        LatencyModel::LoadDependent {
            base: SimDuration::from_secs(4),
            slope_per_load: SimDuration::from_secs(22),
            jitter: SimDuration::from_secs(3),
        }
    }

    /// VM-provisioning latency used for the CloudWatch baseline: "in the
    /// order of several minutes" (paper §5.6).
    pub fn cloudwatch_default() -> Self {
        LatencyModel::Uniform {
            min: SimDuration::from_minutes(3),
            max: SimDuration::from_minutes(6),
        }
    }

    /// Zero latency (the overprovisioning oracle's resources are always up).
    pub fn instant() -> Self {
        LatencyModel::Fixed(SimDuration::ZERO)
    }

    /// Samples a latency given the current 0..1 `load` factor.
    ///
    /// # Panics
    ///
    /// Panics if `load` is not within `[0, 1]` or the model has
    /// `min > max`.
    pub fn sample(&self, rng: &mut StdRng, load: f64) -> SimDuration {
        assert!(
            (0.0..=1.0).contains(&load),
            "load must be in [0,1], got {load}"
        );
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { min, max } => {
                assert!(min <= max, "uniform latency model has min > max");
                if min == max {
                    min
                } else {
                    SimDuration::from_micros(rng.gen_range(min.as_micros()..=max.as_micros()))
                }
            }
            LatencyModel::LoadDependent {
                base,
                slope_per_load,
                jitter,
            } => {
                let slope =
                    SimDuration::from_micros((slope_per_load.as_micros() as f64 * load) as u64);
                let j = if jitter.is_zero() {
                    SimDuration::ZERO
                } else {
                    SimDuration::from_micros(rng.gen_range(0..=jitter.as_micros()))
                };
                base + slope + j
            }
        }
    }

    /// The largest latency this model can produce at the given load.
    pub fn upper_bound(&self, load: f64) -> SimDuration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { max, .. } => max,
            LatencyModel::LoadDependent {
                base,
                slope_per_load,
                jitter,
            } => {
                base + SimDuration::from_micros((slope_per_load.as_micros() as f64 * load) as u64)
                    + jitter
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erm_sim::seeded_rng;

    #[test]
    fn fixed_is_constant() {
        let m = LatencyModel::Fixed(SimDuration::from_secs(5));
        let mut rng = seeded_rng(0);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng, 0.5), SimDuration::from_secs(5));
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let m = LatencyModel::Uniform {
            min: SimDuration::from_secs(10),
            max: SimDuration::from_secs(20),
        };
        let mut rng = seeded_rng(1);
        for _ in 0..100 {
            let d = m.sample(&mut rng, 0.0);
            assert!(d >= SimDuration::from_secs(10) && d <= SimDuration::from_secs(20));
        }
    }

    #[test]
    fn load_dependent_grows_with_load() {
        let m = LatencyModel::LoadDependent {
            base: SimDuration::from_secs(4),
            slope_per_load: SimDuration::from_secs(20),
            jitter: SimDuration::ZERO,
        };
        let mut rng = seeded_rng(2);
        let idle = m.sample(&mut rng, 0.0);
        let busy = m.sample(&mut rng, 1.0);
        assert_eq!(idle, SimDuration::from_secs(4));
        assert_eq!(busy, SimDuration::from_secs(24));
    }

    #[test]
    fn elastic_rmi_default_stays_under_thirty_seconds() {
        let m = LatencyModel::elastic_rmi_default();
        let mut rng = seeded_rng(3);
        for load in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let d = m.sample(&mut rng, load);
            assert!(
                d < SimDuration::from_secs(30),
                "ElasticRMI provisioning should stay < 30s (paper Fig. 8), got {d}"
            );
        }
    }

    #[test]
    fn cloudwatch_default_takes_minutes() {
        let m = LatencyModel::cloudwatch_default();
        let mut rng = seeded_rng(4);
        let d = m.sample(&mut rng, 0.5);
        assert!(d >= SimDuration::from_minutes(3));
    }

    #[test]
    #[should_panic(expected = "load must be in [0,1]")]
    fn rejects_out_of_range_load() {
        let mut rng = seeded_rng(5);
        let _ = LatencyModel::instant().sample(&mut rng, 1.5);
    }

    #[test]
    fn upper_bound_dominates_samples() {
        let m = LatencyModel::elastic_rmi_default();
        let mut rng = seeded_rng(6);
        for _ in 0..50 {
            assert!(m.sample(&mut rng, 0.7) <= m.upper_bound(0.7));
        }
    }
}
