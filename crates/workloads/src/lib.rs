#![warn(missing_docs)]

//! Workload pattern generators for the ElasticRMI evaluation (paper §5.3).
//!
//! The paper drives every experiment with one of two shapes:
//!
//! * **Abrupt** (Fig. 7a, 450 minutes): gradual non-cyclic increase, rapid
//!   increases, rapid decrease and gradual decrease — "all possible scenarios
//!   regarding abrupt changes in workload".
//! * **Cyclic** (Fig. 7b, 500 minutes): three cycles rising to the peak and
//!   falling back.
//!
//! The *shape* is identical for all four evaluated systems; only the
//! magnitude (point A for abrupt, point B = 1.2·A for cyclic) differs. That
//! is exactly how [`Workload`] is parameterized.

mod arrivals;
mod pattern;

pub use arrivals::ArrivalProcess;
pub use pattern::{PatternKind, Workload, WorkloadBuilder};

/// Point-A peak rates used by the paper for each application (§5.3).
pub mod paper {
    /// Marketcetera order routing: 50,000 orders/s.
    pub const MARKETCETERA_POINT_A: f64 = 50_000.0;
    /// DCS coordination service: 75,000 updates/s.
    pub const DCS_POINT_A: f64 = 75_000.0;
    /// Paxos: 24,000 consensus rounds/s.
    pub const PAXOS_POINT_A: f64 = 24_000.0;
    /// Hedwig publish/subscribe: 30,000 messages/s.
    pub const HEDWIG_POINT_A: f64 = 30_000.0;
    /// Point B is "20% above point A" for the cyclic workload.
    pub const POINT_B_FACTOR: f64 = 1.2;
}
