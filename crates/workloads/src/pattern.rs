//! Piecewise-linear workload patterns with optional multiplicative noise.

use erm_sim::{derive_seed, seeded_rng, SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which of the paper's two patterns a workload follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternKind {
    /// Fig. 7a: 450 minutes with gradual and abrupt rises and falls, peaking
    /// at point A.
    Abrupt,
    /// Fig. 7b: 500 minutes, three cycles peaking at point B (= 1.2 A).
    Cyclic,
}

impl PatternKind {
    /// The experiment duration the paper uses for this pattern.
    pub fn duration(self) -> SimDuration {
        match self {
            PatternKind::Abrupt => SimDuration::from_minutes(450),
            PatternKind::Cyclic => SimDuration::from_minutes(500),
        }
    }
}

impl std::fmt::Display for PatternKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatternKind::Abrupt => write!(f, "abrupt"),
            PatternKind::Cyclic => write!(f, "cyclic"),
        }
    }
}

/// An arrival-rate trajectory: request rate (events/second) as a function of
/// simulated time.
///
/// # Example
///
/// ```
/// use erm_sim::SimTime;
/// use erm_workloads::{PatternKind, Workload};
///
/// let w = Workload::paper_pattern(PatternKind::Abrupt, 50_000.0);
/// let peak = w.rate_at(SimTime::from_minutes(240));
/// assert!(peak > 45_000.0, "pattern peaks near point A");
/// assert!(w.rate_at(SimTime::from_minutes(0)) < peak / 2.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    kind: PatternKind,
    peak: f64,
    /// Control points as (minute, fraction-of-peak); linearly interpolated.
    points: Vec<(f64, f64)>,
    noise_amplitude: f64,
    seed: u64,
}

impl Workload {
    /// Builds one of the paper's two patterns with the given peak rate
    /// (point A for [`PatternKind::Abrupt`]; for [`PatternKind::Cyclic`] pass
    /// point A as well — the generator applies the paper's 1.2× factor to
    /// obtain point B).
    ///
    /// # Panics
    ///
    /// Panics unless `peak_a` is finite and positive.
    pub fn paper_pattern(kind: PatternKind, peak_a: f64) -> Workload {
        WorkloadBuilder::new(kind, peak_a).build()
    }

    /// The underlying pattern kind.
    pub fn kind(&self) -> PatternKind {
        self.kind
    }

    /// The absolute peak rate of this trajectory (point A or B).
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Total duration of the trajectory.
    pub fn duration(&self) -> SimDuration {
        self.kind.duration()
    }

    /// The deterministic (noise-free) rate at `t`, linearly interpolated
    /// between control points and clamped to the final value after the end.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let minute = t.as_minutes_f64();
        let pts = &self.points;
        if minute <= pts[0].0 {
            return pts[0].1 * self.peak;
        }
        for pair in pts.windows(2) {
            let (t0, f0) = pair[0];
            let (t1, f1) = pair[1];
            if minute <= t1 {
                let alpha = if t1 > t0 {
                    (minute - t0) / (t1 - t0)
                } else {
                    1.0
                };
                return (f0 + alpha * (f1 - f0)) * self.peak;
            }
        }
        pts.last().expect("patterns have control points").1 * self.peak
    }

    /// The rate at `t` with deterministic, seed-derived multiplicative noise
    /// (±`noise_amplitude`), quantized per minute so repeated calls within a
    /// minute agree.
    pub fn noisy_rate_at(&self, t: SimTime) -> f64 {
        let base = self.rate_at(t);
        if self.noise_amplitude == 0.0 {
            return base;
        }
        let minute = t.as_minutes_f64().floor() as u64;
        let mut rng = seeded_rng(derive_seed(self.seed, &format!("noise-{minute}")));
        let factor = 1.0 + rng.gen_range(-self.noise_amplitude..=self.noise_amplitude);
        (base * factor).max(0.0)
    }

    /// Samples the trajectory at a fixed interval — handy for printing
    /// Fig. 7a/7b themselves.
    pub fn sample(&self, interval: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        let end = SimTime::ZERO + self.duration();
        while t <= end {
            out.push((t, self.rate_at(t)));
            t += interval;
        }
        out
    }
}

/// Configures a [`Workload`] beyond the paper defaults.
///
/// # Example
///
/// ```
/// use erm_workloads::{PatternKind, WorkloadBuilder};
///
/// let w = WorkloadBuilder::new(PatternKind::Cyclic, 30_000.0)
///     .noise(0.05)
///     .seed(7)
///     .build();
/// assert_eq!(w.peak(), 36_000.0); // point B = 1.2 * A
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    kind: PatternKind,
    peak_a: f64,
    noise_amplitude: f64,
    seed: u64,
}

impl WorkloadBuilder {
    /// Starts a builder for the given pattern and point-A rate.
    ///
    /// # Panics
    ///
    /// Panics unless `peak_a` is finite and positive.
    pub fn new(kind: PatternKind, peak_a: f64) -> Self {
        assert!(
            peak_a.is_finite() && peak_a > 0.0,
            "peak rate must be finite and positive, got {peak_a}"
        );
        WorkloadBuilder {
            kind,
            peak_a,
            noise_amplitude: 0.0,
            seed: 0,
        }
    }

    /// Adds multiplicative noise of the given amplitude (e.g. `0.05` = ±5%).
    ///
    /// # Panics
    ///
    /// Panics unless `amplitude` is within `[0, 1)`.
    pub fn noise(mut self, amplitude: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&amplitude),
            "noise amplitude must be in [0,1), got {amplitude}"
        );
        self.noise_amplitude = amplitude;
        self
    }

    /// Sets the seed from which per-minute noise is derived.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds a workload from custom control points instead of the paper
    /// patterns: `(minute, fraction_of_peak)` pairs, linearly interpolated.
    /// The pattern kind is kept for duration bookkeeping; pass whichever of
    /// the two the custom trace is closest to.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, times are not non-decreasing, or any
    /// fraction is negative or non-finite.
    pub fn build_custom(self, points: Vec<(f64, f64)>) -> Workload {
        assert!(!points.is_empty(), "custom pattern needs control points");
        for pair in points.windows(2) {
            assert!(
                pair[0].0 <= pair[1].0,
                "control point times must be non-decreasing"
            );
        }
        for &(t, f) in &points {
            assert!(
                t.is_finite() && f.is_finite() && f >= 0.0,
                "control point ({t}, {f}) invalid"
            );
        }
        Workload {
            kind: self.kind,
            peak: self.peak_a,
            points,
            noise_amplitude: self.noise_amplitude,
            seed: self.seed,
        }
    }

    /// Builds the workload.
    pub fn build(self) -> Workload {
        let (peak, points) = match self.kind {
            // Fig. 7a: low start, gradual non-cyclic increase, a rapid jump,
            // a plateau at point A, a rapid ("abrupt") decrease, then a
            // gradual decrease back to the starting level over 450 minutes.
            PatternKind::Abrupt => (
                self.peak_a,
                vec![
                    (0.0, 0.10),
                    (60.0, 0.20),  // gradual increase
                    (120.0, 0.40), // continued gradual increase
                    (150.0, 0.45),
                    (155.0, 0.90), // abrupt increase
                    (200.0, 1.00), // reaches point A
                    (250.0, 1.00), // plateau at peak
                    (255.0, 0.35), // abrupt decrease
                    (330.0, 0.30), // slow drift
                    (450.0, 0.10), // gradual decrease to the initial level
                ],
            ),
            // Fig. 7b: three cycles to point B = 1.2 A over 500 minutes.
            PatternKind::Cyclic => {
                let mut pts = Vec::new();
                let cycle = 500.0 / 3.0;
                for c in 0..3 {
                    let start = c as f64 * cycle;
                    pts.push((start, 0.15));
                    pts.push((start + cycle * 0.5, 1.00));
                }
                pts.push((500.0, 0.15));
                (self.peak_a * crate::paper::POINT_B_FACTOR, pts)
            }
        };
        Workload {
            kind: self.kind,
            peak,
            points,
            noise_amplitude: self.noise_amplitude,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abrupt_pattern_shape() {
        let w = Workload::paper_pattern(PatternKind::Abrupt, 50_000.0);
        // Starts low.
        assert!(w.rate_at(SimTime::ZERO) <= 0.11 * 50_000.0);
        // Abrupt jump between minute 150 and 160.
        let before = w.rate_at(SimTime::from_minutes(150));
        let after = w.rate_at(SimTime::from_minutes(160));
        assert!(after > before * 1.8, "jump {before} -> {after} not abrupt");
        // Peak plateau hits point A.
        assert_eq!(w.rate_at(SimTime::from_minutes(225)), 50_000.0);
        // Abrupt decrease after the plateau.
        let dropped = w.rate_at(SimTime::from_minutes(260));
        assert!(dropped < 0.5 * 50_000.0);
        // Ends back near the start.
        assert!(w.rate_at(SimTime::from_minutes(450)) <= 0.11 * 50_000.0);
    }

    #[test]
    fn cyclic_pattern_has_three_peaks() {
        let w = Workload::paper_pattern(PatternKind::Cyclic, 30_000.0);
        assert_eq!(w.peak(), 36_000.0);
        let samples = w.sample(SimDuration::from_minutes(1));
        // Count strict local maxima near the peak value.
        let peaks = samples
            .windows(3)
            .filter(|tri| {
                tri[1].1 >= tri[0].1 && tri[1].1 >= tri[2].1 && tri[1].1 > 0.95 * w.peak()
            })
            .count();
        assert!(peaks >= 3, "expected >=3 near-peak maxima, got {peaks}");
    }

    #[test]
    fn rate_is_continuous_at_control_points() {
        let w = Workload::paper_pattern(PatternKind::Abrupt, 1_000.0);
        for minute in [60.0, 120.0, 200.0, 330.0] {
            let eps = 1e-4;
            let left = w.rate_at(SimTime::from_micros(((minute - eps) * 60e6) as u64));
            let right = w.rate_at(SimTime::from_micros(((minute + eps) * 60e6) as u64));
            assert!(
                (left - right).abs() < 1.0,
                "discontinuity at {minute}: {left} vs {right}"
            );
        }
    }

    #[test]
    fn rate_clamps_after_end() {
        let w = Workload::paper_pattern(PatternKind::Abrupt, 1_000.0);
        assert_eq!(
            w.rate_at(SimTime::from_minutes(450)),
            w.rate_at(SimTime::from_minutes(9_999))
        );
    }

    #[test]
    fn noise_is_deterministic_per_seed_and_minute() {
        let w = WorkloadBuilder::new(PatternKind::Abrupt, 10_000.0)
            .noise(0.1)
            .seed(3)
            .build();
        let t = SimTime::from_minutes(100);
        let t2 = t + SimDuration::from_secs(30);
        // The noise *factor* is latched per minute; the base rate still
        // interpolates, so compare ratios.
        let factor_a = w.noisy_rate_at(t) / w.rate_at(t);
        let factor_b = w.noisy_rate_at(t2) / w.rate_at(t2);
        assert!((factor_a - factor_b).abs() < 1e-12);
        let w2 = WorkloadBuilder::new(PatternKind::Abrupt, 10_000.0)
            .noise(0.1)
            .seed(4)
            .build();
        assert_ne!(w.noisy_rate_at(t), w2.noisy_rate_at(t));
    }

    #[test]
    fn noise_stays_within_amplitude() {
        let w = WorkloadBuilder::new(PatternKind::Cyclic, 10_000.0)
            .noise(0.05)
            .seed(11)
            .build();
        for m in 0..500 {
            let t = SimTime::from_minutes(m);
            let base = w.rate_at(t);
            let noisy = w.noisy_rate_at(t);
            assert!(
                (noisy - base).abs() <= base * 0.05 + 1e-9,
                "minute {m}: base {base} noisy {noisy}"
            );
        }
    }

    #[test]
    fn durations_match_paper() {
        assert_eq!(
            PatternKind::Abrupt.duration(),
            SimDuration::from_minutes(450)
        );
        assert_eq!(
            PatternKind::Cyclic.duration(),
            SimDuration::from_minutes(500)
        );
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_zero_peak() {
        let _ = WorkloadBuilder::new(PatternKind::Abrupt, 0.0);
    }

    #[test]
    fn custom_patterns_interpolate_their_points() {
        let w = WorkloadBuilder::new(PatternKind::Abrupt, 1_000.0).build_custom(vec![
            (0.0, 0.0),
            (10.0, 1.0),
            (20.0, 0.5),
        ]);
        assert_eq!(w.rate_at(SimTime::ZERO), 0.0);
        assert_eq!(w.rate_at(SimTime::from_minutes(10)), 1_000.0);
        assert_eq!(w.rate_at(SimTime::from_minutes(5)), 500.0);
        assert_eq!(w.rate_at(SimTime::from_minutes(20)), 500.0);
        assert_eq!(w.rate_at(SimTime::from_minutes(99)), 500.0, "clamped");
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn custom_pattern_rejects_time_travel() {
        let _ = WorkloadBuilder::new(PatternKind::Abrupt, 1.0)
            .build_custom(vec![(10.0, 0.1), (5.0, 0.2)]);
    }

    #[test]
    #[should_panic(expected = "needs control points")]
    fn custom_pattern_rejects_empty() {
        let _ = WorkloadBuilder::new(PatternKind::Abrupt, 1.0).build_custom(vec![]);
    }

    #[test]
    fn rates_never_negative() {
        let w = WorkloadBuilder::new(PatternKind::Abrupt, 100.0)
            .noise(0.3)
            .build();
        for m in 0..450 {
            assert!(w.noisy_rate_at(SimTime::from_minutes(m)) >= 0.0);
        }
    }
}
