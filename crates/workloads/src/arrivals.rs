//! Open-loop arrival processes on top of the rate patterns.
//!
//! The fluid experiment harness consumes rates directly; driving a *real*
//! pool (integration tests, demos) needs discrete request arrivals. This
//! module turns a [`Workload`] rate trajectory into reproducible arrival
//! counts and timestamps via a Poisson process with the pattern's
//! time-varying intensity.

use erm_sim::{derive_seed, seeded_rng, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

use crate::pattern::Workload;

/// A deterministic Poisson arrival generator following a workload pattern.
///
/// # Example
///
/// ```
/// use erm_sim::{SimDuration, SimTime};
/// use erm_workloads::{ArrivalProcess, PatternKind, Workload};
///
/// let w = Workload::paper_pattern(PatternKind::Abrupt, 1_000.0);
/// let mut arrivals = ArrivalProcess::new(w, 7);
/// let n = arrivals.count_in(SimTime::ZERO, SimDuration::from_secs(1));
/// assert!(n < 400, "initial load is ~10% of the 1k/s peak, got {n}");
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    workload: Workload,
    rng: StdRng,
}

impl ArrivalProcess {
    /// Creates a process for `workload` seeded by `seed`.
    pub fn new(workload: Workload, seed: u64) -> Self {
        ArrivalProcess {
            rng: seeded_rng(derive_seed(seed, "arrivals")),
            workload,
        }
    }

    /// The underlying workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Samples how many requests arrive in `[start, start + window)`.
    ///
    /// Uses a Poisson draw with mean `rate(midpoint) × window` (the pattern
    /// changes slowly relative to any sensible window, so midpoint intensity
    /// is an adequate thinning).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn count_in(&mut self, start: SimTime, window: SimDuration) -> u64 {
        assert!(!window.is_zero(), "arrival window must be positive");
        let midpoint = start + window / 2;
        let mean = self.workload.noisy_rate_at(midpoint) * window.as_secs_f64();
        self.poisson(mean)
    }

    /// Samples the arrival timestamps in `[start, start + window)`, sorted.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn arrivals_in(&mut self, start: SimTime, window: SimDuration) -> Vec<SimTime> {
        let n = self.count_in(start, window);
        // Conditioned on the count, Poisson arrivals are uniform i.i.d.
        let mut times: Vec<SimTime> = (0..n)
            .map(|_| start + SimDuration::from_micros(self.rng.gen_range(0..window.as_micros())))
            .collect();
        times.sort_unstable();
        times
    }

    fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        if mean > 64.0 {
            // Normal approximation for large means (exact enough here and
            // O(1) instead of O(mean)): N(mean, mean), clamped at 0.
            let (u1, u2): (f64, f64) = (self.rng.gen_range(1e-12..1.0), self.rng.gen());
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            return (mean + z * mean.sqrt()).round().max(0.0) as u64;
        }
        // Knuth's algorithm for small means.
        let limit = (-mean).exp();
        let mut product: f64 = 1.0;
        let mut count = 0u64;
        loop {
            product *= self.rng.gen::<f64>();
            if product <= limit {
                return count;
            }
            count += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternKind;

    fn process(peak: f64) -> ArrivalProcess {
        ArrivalProcess::new(Workload::paper_pattern(PatternKind::Abrupt, peak), 42)
    }

    #[test]
    fn counts_track_the_pattern() {
        let mut p = process(10_000.0);
        let early = p.count_in(SimTime::ZERO, SimDuration::from_secs(10));
        let peak = p.count_in(SimTime::from_minutes(225), SimDuration::from_secs(10));
        // ~10% of peak vs 100% of peak over 10 s.
        assert!(peak > early * 5, "early {early}, peak {peak}");
        let expect_peak = 10_000.0 * 10.0;
        assert!((peak as f64) > 0.9 * expect_peak && (peak as f64) < 1.1 * expect_peak);
    }

    #[test]
    fn same_seed_same_arrivals() {
        let mut a = process(500.0);
        let mut b = process(500.0);
        for minute in [0, 100, 225] {
            assert_eq!(
                a.count_in(SimTime::from_minutes(minute), SimDuration::from_secs(5)),
                b.count_in(SimTime::from_minutes(minute), SimDuration::from_secs(5))
            );
        }
    }

    #[test]
    fn arrival_times_are_sorted_and_in_window() {
        let mut p = process(200.0);
        let start = SimTime::from_minutes(225);
        let window = SimDuration::from_secs(2);
        let times = p.arrivals_in(start, window);
        assert!(!times.is_empty());
        for pair in times.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
        assert!(times.iter().all(|&t| t >= start && t < start + window));
    }

    #[test]
    fn poisson_small_mean_statistics() {
        let mut p = process(1.0);
        let total: u64 = (0..2_000).map(|_| p.poisson(2.0)).sum();
        let mean = total as f64 / 2_000.0;
        assert!((1.8..2.2).contains(&mean), "sample mean {mean}");
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut p = process(1.0);
        assert_eq!(p.poisson(0.0), 0);
        assert_eq!(p.poisson(-5.0), 0);
    }

    #[test]
    fn large_mean_uses_sane_approximation() {
        let mut p = process(1.0);
        let sample = p.poisson(10_000.0);
        assert!((9_000..=11_000).contains(&sample), "sample {sample}");
    }
}
