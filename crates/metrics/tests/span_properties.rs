//! Property test for span reconstruction: generated well-formed invocation
//! traces (modelled on the stub's state machine) always fold into span trees
//! where every `AttemptStarted` is closed by exactly one terminal event.

use erm_metrics::{SpanBuilder, TraceEvent, TraceRecord};
use erm_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One invocation's event stream plus the number of attempts it started.
struct GeneratedInvocation {
    records: Vec<TraceRecord>,
    attempts_started: usize,
}

/// Generates a well-formed invocation the way the stub emits one: zero or
/// more non-final attempts (failed / overloaded / redirected, possibly with
/// server-side markers), then a final attempt closed by completion or
/// expiry — or a local throttle with no attempts at all.
fn generate_invocation(rng: &mut StdRng, invocation: u64, mut now_ms: u64) -> GeneratedInvocation {
    let mut records = Vec::new();
    let mut rec = |at_ms: u64, event: TraceEvent| {
        records.push(TraceRecord {
            at: SimTime::from_micros(at_ms * 1_000),
            event,
        });
    };
    if rng.gen_bool(0.1) {
        rec(
            now_ms,
            TraceEvent::InvocationThrottled {
                invocation,
                retry_after: SimDuration::from_millis(rng.gen_range(1..50u64)),
            },
        );
        return GeneratedInvocation {
            records,
            attempts_started: 0,
        };
    }
    let total_attempts = rng.gen_range(1..=5u32);
    for attempt in 1..=total_attempts {
        let target = rng.gen_range(1..10u64);
        let deadline = SimTime::from_micros((now_ms + 250) * 1_000);
        rec(
            now_ms,
            TraceEvent::AttemptStarted {
                invocation,
                attempt,
                target,
                deadline,
            },
        );
        now_ms += rng.gen_range(1..20u64);
        let last = attempt == total_attempts;
        if !last {
            // A non-final attempt ends in a retryable way.
            match rng.gen_range(0..3u32) {
                0 => rec(
                    now_ms,
                    TraceEvent::AttemptFailed {
                        invocation,
                        attempt,
                        target,
                    },
                ),
                1 => {
                    if rng.gen_bool(0.5) {
                        rec(
                            now_ms,
                            TraceEvent::RequestOverloaded {
                                uid: target,
                                invocation,
                                queue_depth: rng.gen_range(1..32u32),
                                retry_after: SimDuration::from_millis(5),
                            },
                        );
                    }
                    rec(
                        now_ms,
                        TraceEvent::AttemptOverloaded {
                            invocation,
                            attempt,
                            target,
                            retry_after: SimDuration::from_millis(5),
                        },
                    );
                }
                _ => {
                    if rng.gen_bool(0.5) {
                        rec(
                            now_ms,
                            TraceEvent::RequestShed {
                                uid: target,
                                invocation,
                            },
                        );
                    }
                    rec(
                        now_ms,
                        TraceEvent::AttemptRedirected {
                            invocation,
                            attempt,
                            remaining: SimDuration::from_millis(100),
                        },
                    );
                }
            }
            now_ms += rng.gen_range(1..10u64);
            continue;
        }
        // The final attempt: either served (admit → execute → complete) or
        // the deadline expires.
        if rng.gen_bool(0.8) {
            rec(
                now_ms,
                TraceEvent::RequestAdmitted {
                    uid: target,
                    invocation,
                    depth: rng.gen_range(1..8u32),
                },
            );
            let queued = rng.gen_range(0..30u64);
            let ran = rng.gen_range(1..20u64);
            now_ms += queued + ran;
            rec(
                now_ms,
                TraceEvent::RequestExecuted {
                    uid: target,
                    invocation,
                    queued_for: SimDuration::from_millis(queued),
                    ran_for: SimDuration::from_millis(ran),
                },
            );
            now_ms += rng.gen_range(1..5u64);
            rec(
                now_ms,
                TraceEvent::InvocationCompleted {
                    invocation,
                    attempts: attempt,
                    ok: rng.gen_bool(0.9),
                },
            );
        } else {
            now_ms += rng.gen_range(1..50u64);
            rec(
                now_ms,
                TraceEvent::InvocationExpired {
                    invocation,
                    attempts: attempt,
                },
            );
        }
    }
    GeneratedInvocation {
        records,
        attempts_started: total_attempts as usize,
    }
}

/// Randomly interleaves several per-invocation streams, preserving each
/// stream's internal order (the only ordering the emitters guarantee).
fn interleave(rng: &mut StdRng, mut streams: Vec<Vec<TraceRecord>>) -> Vec<TraceRecord> {
    let mut merged = Vec::new();
    while !streams.is_empty() {
        let pick = rng.gen_range(0..streams.len());
        merged.push(streams[pick].remove(0));
        if streams[pick].is_empty() {
            streams.remove(pick);
        }
    }
    merged
}

#[test]
fn every_started_attempt_is_closed_exactly_once() {
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_invocations = rng.gen_range(1..8usize);
        let mut streams = Vec::new();
        let mut expected_attempts = Vec::new();
        for inv_id in 0..n_invocations as u64 {
            let start_ms = rng.gen_range(0..1000u64);
            let generated = generate_invocation(&mut rng, inv_id, start_ms);
            expected_attempts.push(generated.attempts_started);
            streams.push(generated.records);
        }
        let records = interleave(&mut rng, streams);
        let spans = SpanBuilder::new(records).invocations();
        assert_eq!(spans.len(), n_invocations, "seed {seed}");
        for span in &spans {
            let expected = expected_attempts[span.invocation as usize];
            let attempts = span.attempts();
            // Exactly one attempt span per AttemptStarted: none lost, none
            // double-closed (a double close would surface as a stray event
            // or a superseded/unclosed status).
            assert_eq!(
                attempts.len(),
                expected,
                "seed {seed} inv {}: attempt count",
                span.invocation
            );
            assert_eq!(
                span.stray_events, 0,
                "seed {seed} inv {}: stray terminal events",
                span.invocation
            );
            for attempt in &attempts {
                let status = attempt.arg("status").expect("every attempt has a status");
                assert!(
                    !matches!(status, "unclosed" | "superseded"),
                    "seed {seed} inv {}: attempt closed abnormally ({status})",
                    span.invocation
                );
                assert!(attempt.start <= attempt.end, "spans never run backwards");
            }
        }
    }
}
