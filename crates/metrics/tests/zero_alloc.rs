//! Proof that disabled telemetry is free of per-event heap traffic: emitting
//! through a disabled `TraceHandle` and recording into disabled registry
//! instruments must not allocate at all.
//!
//! Uses a counting global allocator, so this file holds exactly one test
//! (the counter is process-global).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use erm_metrics::{MetricsHandle, TraceEvent, TraceHandle};
use erm_sim::{SimDuration, SimTime};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_telemetry_does_not_allocate_per_event() {
    // Instruments are registered once at wiring time; registration cost is
    // not on the per-invocation path.
    let trace = TraceHandle::disabled();
    let metrics = MetricsHandle::disabled();
    let counter = metrics.counter("invocations.total");
    let gauge = metrics.gauge("pool.size");
    let histogram = metrics.histogram("skeleton.queue.delay");

    // The counter is process-global, so the libtest harness's own threads
    // can allocate concurrently with the measured loop. Take the minimum
    // over several attempts: an allocating hot path would add ≥10k to every
    // attempt, while harness noise is occasional and small.
    let mut min_delta = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for i in 0..10_000u64 {
            trace.emit(
                SimTime::from_micros(i),
                TraceEvent::AttemptStarted {
                    invocation: i,
                    attempt: 1,
                    target: 0,
                    deadline: SimTime::from_micros(i + 1_000),
                },
            );
            trace.emit(
                SimTime::from_micros(i + 10),
                TraceEvent::InvocationCompleted {
                    invocation: i,
                    attempts: 1,
                    ok: true,
                },
            );
            counter.incr();
            gauge.set(i as i64);
            histogram.record(SimDuration::from_micros(i));
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        min_delta = min_delta.min(after - before);
        if min_delta == 0 {
            break;
        }
    }
    assert_eq!(
        min_delta, 0,
        "disabled trace/metrics path allocated on the hot loop"
    );
}
