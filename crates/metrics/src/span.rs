//! Span reconstruction: folding the flat [`TraceEvent`] ring back into
//! per-invocation span trees and per-decision control-plane spans.
//!
//! The trace ring records *events*; debugging elasticity needs *intervals*:
//! how long each attempt ran, how much of it was queue wait versus execution,
//! and how long the pool took from a symptom (a rule crossing its threshold)
//! to new capacity serving. [`SpanBuilder`] performs that fold in one pass
//! and the result exports to Chrome/Perfetto `trace_event` JSON via
//! [`chrome_trace`], so any experiment run opens in `ui.perfetto.dev`.
//!
//! Reconstruction rules:
//!
//! * An **invocation span** opens at its first `AttemptStarted` (or
//!   `InvocationThrottled`) and closes at `InvocationCompleted` /
//!   `InvocationExpired` — or, for clients that do not retry, at the
//!   terminal event of their only attempt.
//! * Each **attempt span** is closed by exactly one terminal event
//!   (`AttemptFailed`, `AttemptRedirected`, `AttemptOverloaded`, or the
//!   invocation-level completion); terminal events with no open attempt are
//!   counted in [`InvocationSpan::stray_events`] instead of being guessed at.
//! * A skeleton's `RequestExecuted` event back-fills **queue-wait** and
//!   **execute** child spans inside the attempt it answered.
//! * A **decision span** pairs `RuleFired` → `ScaleDecision` →
//!   `OfferRequested`/`OfferOutcome` → `MemberJoined`, which is everything
//!   the `why-scaled` report needs.

use std::collections::HashMap;
use std::fmt::Write as _;

use erm_sim::{SimDuration, SimTime};

use crate::trace::{TraceEvent, TraceRecord};

/// One reconstructed interval, possibly with nested children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Display name (e.g. `inv 42`, `attempt 2`, `queue wait`).
    pub name: String,
    /// Coarse kind: `invoke`, `attempt`, `queue`, `execute` or `control`.
    pub category: &'static str,
    /// When the interval began.
    pub start: SimTime,
    /// When the interval ended (`>= start`).
    pub end: SimTime,
    /// Key/value annotations (attempt target, close status, …).
    pub args: Vec<(String, String)>,
    /// Nested sub-intervals, in start order.
    pub children: Vec<Span>,
}

impl Span {
    /// The interval's length.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }

    /// The value of annotation `key`, if present.
    pub fn arg(&self, key: &str) -> Option<&str> {
        self.args
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// How an invocation ended, as far as the trace shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvocationOutcome {
    /// A response arrived and the remote method returned normally.
    Completed,
    /// A response arrived carrying a remote error.
    RemoteError,
    /// The deadline passed before any member answered.
    Expired,
    /// The client-side limiter refused it before any send.
    Throttled,
    /// The last attempt was refused with `Overloaded` and never retried.
    Rejected,
    /// The trace ended with the invocation still in flight.
    Incomplete,
}

/// One invocation's reconstructed span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvocationSpan {
    /// The invocation id all events were keyed on.
    pub invocation: u64,
    /// How the invocation ended.
    pub outcome: InvocationOutcome,
    /// The root `invoke` span; attempts are its children, queue/execute
    /// phases are the attempts' children.
    pub root: Span,
    /// Terminal or server events that arrived with no open attempt to close
    /// (zero on a well-formed trace).
    pub stray_events: u32,
}

/// One labelled segment of an invocation's critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSegment {
    /// What the time went to.
    pub label: &'static str,
    /// How much of the invocation's wall clock it accounts for.
    pub duration: SimDuration,
}

impl InvocationSpan {
    /// The attempt spans, in order.
    pub fn attempts(&self) -> Vec<&Span> {
        self.root
            .children
            .iter()
            .filter(|s| s.category == "attempt")
            .collect()
    }

    /// Decomposes the invocation's latency into the segments that determined
    /// it: time burned on earlier attempts and backoff, then — inside the
    /// deciding attempt — transport/ingest, queue wait, execution, and the
    /// reply. Zero-length segments are omitted (except `execute`, which is
    /// kept as the anchor).
    pub fn critical_path(&self) -> Vec<PathSegment> {
        let mut path = Vec::new();
        let attempts = self.attempts();
        let Some(last) = attempts.last() else {
            path.push(PathSegment {
                label: "throttled",
                duration: self.root.duration(),
            });
            return path;
        };
        fn push(path: &mut Vec<PathSegment>, label: &'static str, duration: SimDuration) {
            if !duration.is_zero() {
                path.push(PathSegment { label, duration });
            }
        }
        push(
            &mut path,
            "earlier attempts & backoff",
            last.start.saturating_since(self.root.start),
        );
        let queue = last.children.iter().find(|s| s.category == "queue");
        let execute = last.children.iter().find(|s| s.category == "execute");
        match (queue, execute) {
            (Some(q), Some(x)) => {
                push(
                    &mut path,
                    "network & ingest",
                    q.start.saturating_since(last.start),
                );
                push(&mut path, "queue wait", q.duration());
                path.push(PathSegment {
                    label: "execute",
                    duration: x.duration(),
                });
                push(&mut path, "reply", last.end.saturating_since(x.end));
            }
            _ => push(&mut path, "attempt (no server breakdown)", last.duration()),
        }
        push(
            &mut path,
            "after last attempt",
            self.root.end.saturating_since(last.end),
        );
        path
    }
}

/// The rule crossing that triggered a scaling decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleInfo {
    /// Rule identifier (see [`TraceEvent::RuleFired`]).
    pub rule: &'static str,
    /// Sampled value, milli-units.
    pub observed_milli: i64,
    /// Configured threshold, milli-units.
    pub threshold_milli: i64,
    /// When the sample was taken.
    pub at: SimTime,
}

/// The resource-offer round trip a grow decision went through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OfferInfo {
    /// Cluster request id.
    pub request_id: u64,
    /// Slices requested.
    pub requested: u32,
    /// Slices granted (zero = denied).
    pub granted: u32,
    /// When the offer was requested.
    pub requested_at: SimTime,
    /// When the cluster resolved it.
    pub resolved_at: SimTime,
}

/// One pool-size change, stitched to its cause and its effect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionSpan {
    /// When the scaling engine decided.
    pub at: SimTime,
    /// Pool size the decision was made at.
    pub pool_size: u32,
    /// Members added (positive) or removed (negative).
    pub delta: i64,
    /// The threshold crossing that triggered it, when traced.
    pub rule: Option<RuleInfo>,
    /// The slice-request round trip (grow decisions only).
    pub offer: Option<OfferInfo>,
    /// `(uid, at)` of each member that came up to satisfy this decision.
    pub members_up: Vec<(u64, SimTime)>,
}

impl DecisionSpan {
    /// When the symptom was observed: the rule's sample time, falling back
    /// to the decision time.
    pub fn symptom_at(&self) -> SimTime {
        self.rule.as_ref().map_or(self.at, |r| r.at)
    }

    /// When the decided capacity change was fully in effect: the last member
    /// up for a grow (once every granted slice joined), the decision time
    /// for a shrink. `None` while a grow is still provisioning (or was
    /// denied outright).
    pub fn capacity_at(&self) -> Option<SimTime> {
        if self.delta < 0 {
            return Some(self.at);
        }
        let granted = self.offer.as_ref().map_or(0, |o| o.granted) as usize;
        if granted > 0 && self.members_up.len() >= granted {
            self.members_up.last().map(|&(_, at)| at)
        } else {
            None
        }
    }

    /// Symptom-to-capacity lag: how long the workload felt the symptom
    /// before the capacity it demanded existed.
    pub fn lag(&self) -> Option<SimDuration> {
        self.capacity_at()
            .map(|t| t.saturating_since(self.symptom_at()))
    }
}

/// Folds a trace-record stream into span trees. See the module docs for the
/// reconstruction rules.
#[derive(Debug, Clone)]
pub struct SpanBuilder {
    records: Vec<TraceRecord>,
}

struct AttemptState {
    attempt: u32,
    target: u64,
    start: SimTime,
    deadline: SimTime,
    children: Vec<Span>,
    notes: Vec<(String, String)>,
}

struct InvState {
    start: SimTime,
    last_seen: SimTime,
    attempts: Vec<Span>,
    open: Option<AttemptState>,
    outcome: Option<InvocationOutcome>,
    end: Option<SimTime>,
    notes: Vec<(String, String)>,
    stray_events: u32,
}

impl InvState {
    fn new(at: SimTime) -> Self {
        InvState {
            start: at,
            last_seen: at,
            attempts: Vec::new(),
            open: None,
            outcome: None,
            end: None,
            notes: Vec::new(),
            stray_events: 0,
        }
    }

    fn close_attempt(&mut self, at: SimTime, status: &str) {
        let Some(open) = self.open.take() else {
            self.stray_events += 1;
            return;
        };
        let mut args = vec![
            ("target".to_string(), format!("endpoint {}", open.target)),
            ("status".to_string(), status.to_string()),
            ("deadline".to_string(), open.deadline.to_string()),
        ];
        args.extend(open.notes);
        self.attempts.push(Span {
            name: format!("attempt {}", open.attempt),
            category: "attempt",
            start: open.start,
            end: at,
            args,
            children: open.children,
        });
    }

    fn note(&mut self, key: String, value: String) {
        match &mut self.open {
            Some(open) => open.notes.push((key, value)),
            None => self.notes.push((key, value)),
        }
    }
}

/// Fetches (creating on first sight) the state for `invocation`, refreshing
/// its last-seen time.
fn touch<'a>(
    by_id: &'a mut HashMap<u64, InvState>,
    order: &mut Vec<u64>,
    invocation: u64,
    at: SimTime,
) -> &'a mut InvState {
    let inv = by_id.entry(invocation).or_insert_with(|| {
        order.push(invocation);
        InvState::new(at)
    });
    inv.last_seen = at;
    inv
}

impl SpanBuilder {
    /// Wraps a record stream (oldest first, as [`crate::TraceSink::snapshot`]
    /// returns it).
    pub fn new(records: Vec<TraceRecord>) -> Self {
        SpanBuilder { records }
    }

    /// Reconstructs every invocation seen in the stream, in first-seen order.
    pub fn invocations(&self) -> Vec<InvocationSpan> {
        let mut order: Vec<u64> = Vec::new();
        let mut by_id: HashMap<u64, InvState> = HashMap::new();
        for rec in &self.records {
            let at = rec.at;
            match &rec.event {
                TraceEvent::AttemptStarted {
                    invocation,
                    attempt,
                    target,
                    deadline,
                } => {
                    let inv = touch(&mut by_id, &mut order, *invocation, at);
                    if inv.open.is_some() {
                        // A new attempt with the prior one unclosed: the
                        // stream is missing a terminal event.
                        inv.close_attempt(at, "superseded");
                        inv.stray_events += 1;
                    }
                    inv.open = Some(AttemptState {
                        attempt: *attempt,
                        target: *target,
                        start: at,
                        deadline: *deadline,
                        children: Vec::new(),
                        notes: Vec::new(),
                    });
                }
                TraceEvent::AttemptFailed { invocation, .. } => {
                    touch(&mut by_id, &mut order, *invocation, at).close_attempt(at, "failed");
                }
                TraceEvent::AttemptRedirected {
                    invocation,
                    remaining,
                    ..
                } => {
                    let inv = touch(&mut by_id, &mut order, *invocation, at);
                    if let Some(open) = &mut inv.open {
                        open.notes
                            .push(("budget_left".to_string(), remaining.to_string()));
                    }
                    inv.close_attempt(at, "redirected");
                }
                TraceEvent::AttemptOverloaded {
                    invocation,
                    retry_after,
                    ..
                } => {
                    let inv = touch(&mut by_id, &mut order, *invocation, at);
                    if let Some(open) = &mut inv.open {
                        open.notes
                            .push(("retry_after".to_string(), retry_after.to_string()));
                    }
                    inv.close_attempt(at, "overloaded");
                }
                TraceEvent::RequestAdmitted {
                    invocation, depth, ..
                } => {
                    touch(&mut by_id, &mut order, *invocation, at)
                        .note("admitted_depth".to_string(), depth.to_string());
                }
                TraceEvent::RequestExecuted {
                    invocation,
                    queued_for,
                    ran_for,
                    uid,
                } => {
                    let inv = touch(&mut by_id, &mut order, *invocation, at);
                    let exec_start = at - *ran_for;
                    let queue_start = exec_start - *queued_for;
                    let queue = Span {
                        name: "queue wait".to_string(),
                        category: "queue",
                        start: queue_start,
                        end: exec_start,
                        args: vec![("member".to_string(), uid.to_string())],
                        children: Vec::new(),
                    };
                    let execute = Span {
                        name: "execute".to_string(),
                        category: "execute",
                        start: exec_start,
                        end: at,
                        args: vec![("member".to_string(), uid.to_string())],
                        children: Vec::new(),
                    };
                    match &mut inv.open {
                        Some(open) => open.children.extend([queue, execute]),
                        None => inv.stray_events += 1,
                    }
                }
                TraceEvent::RequestExpired {
                    invocation,
                    late_by,
                    uid,
                } => {
                    touch(&mut by_id, &mut order, *invocation, at).note(
                        format!("server_expired@{uid}"),
                        format!("{late_by} past deadline"),
                    );
                }
                TraceEvent::RequestShed { invocation, uid } => {
                    touch(&mut by_id, &mut order, *invocation, at)
                        .note(format!("shed@{uid}"), at.to_string());
                }
                TraceEvent::RequestOverloaded {
                    invocation,
                    uid,
                    queue_depth,
                    ..
                } => {
                    touch(&mut by_id, &mut order, *invocation, at).note(
                        format!("refused@{uid}"),
                        format!("queue depth {queue_depth}"),
                    );
                }
                TraceEvent::InvocationCompleted { invocation, ok, .. } => {
                    let inv = touch(&mut by_id, &mut order, *invocation, at);
                    inv.close_attempt(at, if *ok { "ok" } else { "error" });
                    inv.outcome = Some(if *ok {
                        InvocationOutcome::Completed
                    } else {
                        InvocationOutcome::RemoteError
                    });
                    inv.end = Some(at);
                }
                TraceEvent::InvocationExpired { invocation, .. } => {
                    let inv = touch(&mut by_id, &mut order, *invocation, at);
                    inv.close_attempt(at, "expired");
                    inv.outcome = Some(InvocationOutcome::Expired);
                    inv.end = Some(at);
                }
                TraceEvent::InvocationThrottled {
                    invocation,
                    retry_after,
                } => {
                    let inv = touch(&mut by_id, &mut order, *invocation, at);
                    inv.notes
                        .push(("retry_after".to_string(), retry_after.to_string()));
                    if inv.outcome.is_none() {
                        inv.outcome = Some(InvocationOutcome::Throttled);
                        inv.end = Some(at);
                    }
                }
                // Pool-membership and control-plane events belong to
                // decision spans, not invocations.
                _ => {}
            }
        }
        order
            .into_iter()
            .map(|id| {
                let mut inv = by_id.remove(&id).expect("ordered id present");
                if inv.open.is_some() {
                    inv.close_attempt(inv.last_seen, "unclosed");
                }
                let outcome = inv.outcome.unwrap_or_else(|| {
                    match inv.attempts.last().and_then(|a| a.arg("status")) {
                        Some("overloaded") => InvocationOutcome::Rejected,
                        Some("expired") => InvocationOutcome::Expired,
                        _ => InvocationOutcome::Incomplete,
                    }
                });
                let end = inv
                    .end
                    .or_else(|| inv.attempts.last().map(|a| a.end))
                    .unwrap_or(inv.last_seen);
                let mut args = vec![
                    ("outcome".to_string(), format!("{outcome:?}")),
                    ("attempts".to_string(), inv.attempts.len().to_string()),
                ];
                args.extend(inv.notes);
                InvocationSpan {
                    invocation: id,
                    outcome,
                    stray_events: inv.stray_events,
                    root: Span {
                        name: format!("inv {id}"),
                        category: "invoke",
                        start: inv.start,
                        end,
                        args,
                        children: inv.attempts,
                    },
                }
            })
            .collect()
    }

    /// Reconstructs every scaling decision, pairing each with its triggering
    /// rule, its offer round trip, and the members that came up for it.
    pub fn decisions(&self) -> Vec<DecisionSpan> {
        let mut decisions: Vec<DecisionSpan> = Vec::new();
        let mut pending_rule: Option<RuleInfo> = None;
        for rec in &self.records {
            let at = rec.at;
            match &rec.event {
                TraceEvent::RuleFired {
                    rule,
                    observed_milli,
                    threshold_milli,
                } => {
                    pending_rule = Some(RuleInfo {
                        rule,
                        observed_milli: *observed_milli,
                        threshold_milli: *threshold_milli,
                        at,
                    });
                }
                TraceEvent::ScaleDecision { pool_size, delta } => {
                    decisions.push(DecisionSpan {
                        at,
                        pool_size: *pool_size,
                        delta: *delta,
                        rule: pending_rule.take(),
                        offer: None,
                        members_up: Vec::new(),
                    });
                }
                TraceEvent::OfferRequested { request_id, count } => {
                    if let Some(d) = decisions
                        .iter_mut()
                        .rev()
                        .find(|d| d.delta > 0 && d.offer.is_none())
                    {
                        d.offer = Some(OfferInfo {
                            request_id: *request_id,
                            requested: *count,
                            granted: 0,
                            requested_at: at,
                            resolved_at: at,
                        });
                    }
                }
                TraceEvent::OfferOutcome {
                    request_id,
                    granted,
                    ..
                } => {
                    if let Some(offer) = decisions
                        .iter_mut()
                        .rev()
                        .filter_map(|d| d.offer.as_mut())
                        .find(|o| o.request_id == *request_id)
                    {
                        offer.granted = *granted;
                        offer.resolved_at = at;
                    }
                }
                TraceEvent::MemberJoined { uid } => {
                    if let Some(d) = decisions.iter_mut().find(|d| {
                        let granted = d.offer.as_ref().map_or(0, |o| o.granted) as usize;
                        granted > 0 && d.members_up.len() < granted
                    }) {
                        d.members_up.push((*uid, at));
                    }
                }
                _ => {}
            }
        }
        decisions
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn push_event(
    out: &mut Vec<String>,
    name: &str,
    cat: &str,
    pid: u32,
    tid: u64,
    ts: SimTime,
    dur: SimDuration,
    args: &[(String, String)],
) {
    let args_json: Vec<String> = args
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
        .collect();
    out.push(format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
         \"pid\":{pid},\"tid\":{tid},\"args\":{{{}}}}}",
        escape_json(name),
        escape_json(cat),
        ts.as_micros(),
        dur.as_micros().max(1),
        args_json.join(",")
    ));
}

fn push_span(out: &mut Vec<String>, span: &Span, pid: u32, tid: u64) {
    push_event(
        out,
        &span.name,
        span.category,
        pid,
        tid,
        span.start,
        span.duration(),
        &span.args,
    );
    for child in &span.children {
        push_span(out, child, pid, tid);
    }
}

const INVOCATION_PID: u32 = 1;
const CONTROL_PID: u32 = 2;

/// Renders span trees as Chrome `trace_event` JSON (the format
/// `ui.perfetto.dev` and `chrome://tracing` load directly). Invocations get
/// one track each under the "invocations" process; decision spans share the
/// "control plane" process, each spanning symptom to capacity.
pub fn chrome_trace(invocations: &[InvocationSpan], decisions: &[DecisionSpan]) -> String {
    let mut events: Vec<String> = vec![
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{INVOCATION_PID},\
             \"args\":{{\"name\":\"invocations\"}}}}"
        ),
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{CONTROL_PID},\
             \"args\":{{\"name\":\"control plane\"}}}}"
        ),
    ];
    for inv in invocations {
        push_span(&mut events, &inv.root, INVOCATION_PID, inv.invocation);
    }
    for d in decisions {
        let start = d.symptom_at();
        let end = d.capacity_at().unwrap_or(d.at);
        let mut args = vec![
            ("pool_size".to_string(), d.pool_size.to_string()),
            ("delta".to_string(), format!("{:+}", d.delta)),
        ];
        if let Some(rule) = &d.rule {
            args.push(("rule".to_string(), rule.rule.to_string()));
            args.push((
                "observed_vs_threshold_milli".to_string(),
                format!("{} vs {}", rule.observed_milli, rule.threshold_milli),
            ));
        }
        if let Some(lag) = d.lag() {
            args.push(("symptom_to_capacity".to_string(), lag.to_string()));
        }
        push_event(
            &mut events,
            &format!("scale {:+}", d.delta),
            "control",
            CONTROL_PID,
            0,
            start,
            end.saturating_since(start),
            &args,
        );
        if let Some(offer) = &d.offer {
            push_event(
                &mut events,
                &format!(
                    "offer {} ({}/{})",
                    offer.request_id, offer.granted, offer.requested
                ),
                "control",
                CONTROL_PID,
                1,
                offer.requested_at,
                offer.resolved_at.saturating_since(offer.requested_at),
                &[],
            );
        }
        for &(uid, at) in &d.members_up {
            events.push(format!(
                "{{\"name\":\"member {uid} up\",\"cat\":\"control\",\"ph\":\"i\",\"s\":\"p\",\
                 \"ts\":{},\"pid\":{CONTROL_PID},\"tid\":0}}",
                at.as_micros()
            ));
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        events.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent as E;

    fn t(ms: u64) -> SimTime {
        SimTime::from_micros(ms * 1_000)
    }

    fn rec(ms: u64, event: E) -> TraceRecord {
        TraceRecord { at: t(ms), event }
    }

    /// The satellite golden test: retry after a failure, a redirect hop, and
    /// an overload shed, folded into the expected tree.
    #[test]
    fn golden_retry_redirect_overload_tree() {
        let records = vec![
            // Attempt 1 fails outright.
            rec(
                0,
                E::AttemptStarted {
                    invocation: 7,
                    attempt: 1,
                    target: 10,
                    deadline: t(250),
                },
            ),
            rec(
                20,
                E::AttemptFailed {
                    invocation: 7,
                    attempt: 1,
                    target: 10,
                },
            ),
            // Attempt 2 is refused by an overloaded member.
            rec(
                25,
                E::AttemptStarted {
                    invocation: 7,
                    attempt: 2,
                    target: 11,
                    deadline: t(250),
                },
            ),
            rec(
                30,
                E::RequestOverloaded {
                    uid: 1,
                    invocation: 7,
                    queue_depth: 8,
                    retry_after: SimDuration::from_millis(10),
                },
            ),
            rec(
                30,
                E::AttemptOverloaded {
                    invocation: 7,
                    attempt: 2,
                    target: 11,
                    retry_after: SimDuration::from_millis(10),
                },
            ),
            // Attempt 3 is shed sideways (rebalance redirect).
            rec(
                45,
                E::AttemptStarted {
                    invocation: 7,
                    attempt: 3,
                    target: 12,
                    deadline: t(250),
                },
            ),
            rec(
                50,
                E::RequestShed {
                    uid: 2,
                    invocation: 7,
                },
            ),
            rec(
                50,
                E::AttemptRedirected {
                    invocation: 7,
                    attempt: 3,
                    remaining: SimDuration::from_millis(200),
                },
            ),
            // Attempt 4 is admitted, waits, executes, completes.
            rec(
                55,
                E::AttemptStarted {
                    invocation: 7,
                    attempt: 4,
                    target: 13,
                    deadline: t(250),
                },
            ),
            rec(
                60,
                E::RequestAdmitted {
                    uid: 3,
                    invocation: 7,
                    depth: 2,
                },
            ),
            rec(
                100,
                E::RequestExecuted {
                    uid: 3,
                    invocation: 7,
                    queued_for: SimDuration::from_millis(30),
                    ran_for: SimDuration::from_millis(10),
                },
            ),
            rec(
                105,
                E::InvocationCompleted {
                    invocation: 7,
                    attempts: 4,
                    ok: true,
                },
            ),
        ];
        let spans = SpanBuilder::new(records).invocations();
        assert_eq!(spans.len(), 1);
        let inv = &spans[0];
        assert_eq!(inv.invocation, 7);
        assert_eq!(inv.outcome, InvocationOutcome::Completed);
        assert_eq!(inv.stray_events, 0);
        assert_eq!(inv.root.start, SimTime::ZERO);
        assert_eq!(inv.root.end, t(105));

        let attempts = inv.attempts();
        assert_eq!(attempts.len(), 4);
        let statuses: Vec<&str> = attempts.iter().filter_map(|a| a.arg("status")).collect();
        assert_eq!(statuses, ["failed", "overloaded", "redirected", "ok"]);
        assert!(attempts[1].arg("refused@1").is_some(), "overload note kept");
        assert!(attempts[2].arg("shed@2").is_some(), "shed note kept");

        // The winning attempt carries the server-side breakdown.
        let winner = attempts[3];
        assert_eq!(winner.children.len(), 2);
        let queue = &winner.children[0];
        let execute = &winner.children[1];
        assert_eq!(queue.category, "queue");
        assert_eq!(queue.start, t(60));
        assert_eq!(queue.end, t(90));
        assert_eq!(execute.category, "execute");
        assert_eq!(execute.start, t(90));
        assert_eq!(execute.end, t(100));

        // Critical path: 55 ms of earlier attempts, 5 ms transport, 30 ms
        // queue, 10 ms execute, 5 ms reply = the root's 105 ms.
        let path = inv.critical_path();
        let total: u64 = path.iter().map(|s| s.duration.as_micros()).sum();
        assert_eq!(total, inv.root.duration().as_micros());
        assert_eq!(
            path.iter().map(|s| s.label).collect::<Vec<_>>(),
            [
                "earlier attempts & backoff",
                "network & ingest",
                "queue wait",
                "execute",
                "reply"
            ]
        );
        assert_eq!(path[2].duration, SimDuration::from_millis(30));
        assert_eq!(path[3].duration, SimDuration::from_millis(10));
    }

    #[test]
    fn throttled_invocation_has_zero_attempts() {
        let spans = SpanBuilder::new(vec![rec(
            5,
            E::InvocationThrottled {
                invocation: 1,
                retry_after: SimDuration::from_millis(4),
            },
        )])
        .invocations();
        assert_eq!(spans[0].outcome, InvocationOutcome::Throttled);
        assert!(spans[0].attempts().is_empty());
        assert_eq!(spans[0].critical_path()[0].label, "throttled");
    }

    #[test]
    fn unretried_overload_is_a_rejection() {
        let spans = SpanBuilder::new(vec![
            rec(
                0,
                E::AttemptStarted {
                    invocation: 3,
                    attempt: 1,
                    target: 9,
                    deadline: t(100),
                },
            ),
            rec(
                2,
                E::AttemptOverloaded {
                    invocation: 3,
                    attempt: 1,
                    target: 9,
                    retry_after: SimDuration::from_millis(20),
                },
            ),
        ])
        .invocations();
        assert_eq!(spans[0].outcome, InvocationOutcome::Rejected);
        assert_eq!(spans[0].root.end, t(2));
        assert_eq!(spans[0].stray_events, 0);
    }

    #[test]
    fn truncated_trace_yields_unclosed_attempt_not_panic() {
        let spans = SpanBuilder::new(vec![rec(
            0,
            E::AttemptStarted {
                invocation: 4,
                attempt: 1,
                target: 9,
                deadline: t(100),
            },
        )])
        .invocations();
        assert_eq!(spans[0].outcome, InvocationOutcome::Incomplete);
        assert_eq!(spans[0].attempts()[0].arg("status"), Some("unclosed"));
    }

    #[test]
    fn decision_span_pairs_rule_offer_and_member() {
        let records = vec![
            rec(
                1000,
                E::RuleFired {
                    rule: "queue-delay-above-bound",
                    observed_milli: 132,
                    threshold_milli: 50,
                },
            ),
            rec(
                1000,
                E::ScaleDecision {
                    pool_size: 1,
                    delta: 1,
                },
            ),
            rec(
                1001,
                E::OfferRequested {
                    request_id: 4,
                    count: 1,
                },
            ),
            rec(
                1002,
                E::OfferOutcome {
                    request_id: 4,
                    granted: 1,
                    requested: 1,
                },
            ),
            rec(1500, E::MemberJoined { uid: 1 }),
        ];
        let decisions = SpanBuilder::new(records).decisions();
        assert_eq!(decisions.len(), 1);
        let d = &decisions[0];
        assert_eq!(d.delta, 1);
        assert_eq!(d.rule.as_ref().unwrap().rule, "queue-delay-above-bound");
        let offer = d.offer.as_ref().unwrap();
        assert_eq!((offer.granted, offer.requested), (1, 1));
        assert_eq!(d.members_up, vec![(1, t(1500))]);
        assert_eq!(d.capacity_at(), Some(t(1500)));
        assert_eq!(d.lag(), Some(SimDuration::from_millis(500)));
    }

    #[test]
    fn shrink_capacity_is_immediate_and_denied_offer_has_no_lag() {
        let records = vec![
            rec(
                2000,
                E::ScaleDecision {
                    pool_size: 4,
                    delta: -1,
                },
            ),
            rec(
                3000,
                E::ScaleDecision {
                    pool_size: 3,
                    delta: 2,
                },
            ),
            rec(
                3001,
                E::OfferRequested {
                    request_id: 9,
                    count: 2,
                },
            ),
            rec(
                3001,
                E::OfferOutcome {
                    request_id: 9,
                    granted: 0,
                    requested: 2,
                },
            ),
        ];
        let decisions = SpanBuilder::new(records).decisions();
        assert_eq!(decisions[0].lag(), Some(SimDuration::ZERO));
        assert_eq!(decisions[1].capacity_at(), None, "denied offer never lands");
    }

    #[test]
    fn chrome_trace_is_loadable_shaped_json() {
        let records = vec![
            rec(
                0,
                E::AttemptStarted {
                    invocation: 1,
                    attempt: 1,
                    target: 5,
                    deadline: t(100),
                },
            ),
            rec(
                10,
                E::InvocationCompleted {
                    invocation: 1,
                    attempts: 1,
                    ok: true,
                },
            ),
        ];
        let builder = SpanBuilder::new(records);
        let json = chrome_trace(&builder.invocations(), &builder.decisions());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"inv 1\""));
        assert!(json.contains("\"name\":\"attempt 1\""));
        // Balanced braces/brackets — a cheap structural check that the
        // hand-rolled JSON is well-formed.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escapes_json_specials() {
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }
}
