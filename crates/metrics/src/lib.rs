#![warn(missing_docs)]

//! SPEC elasticity metrics for the ElasticRMI reproduction.
//!
//! Implements the two metrics the paper's evaluation (§5.1) is built on:
//!
//! * **Agility** — for a measurement period divided into `N` sub-intervals,
//!   `Agility = (1/N) (Σ Excess(i) + Σ Shortage(i))` where
//!   `Excess(i) = max(0, Cap_prov(i) − Req_min(i))` and
//!   `Shortage(i) = max(0, Req_min(i) − Cap_prov(i))`. An ideal deployment
//!   has agility 0: never under- nor over-provisioned. See [`AgilityMeter`].
//! * **Provisioning interval** — the time between requesting a new resource
//!   and that resource serving its first request. See
//!   [`ProvisioningRecorder`].
//!
//! The crate also provides the QoS trackers (throughput / latency) used by
//! the threaded runtime and application tests, plus the telemetry layer:
//!
//! * a [`Registry`] of named counters, gauges and log-linear histograms that
//!   every component reaches through a cheap [`MetricsHandle`] (disabled by
//!   default, like [`TraceHandle`]);
//! * a [`SpanBuilder`] that folds the flat trace ring back into
//!   per-invocation span trees and per-decision control-plane spans, with
//!   Chrome/Perfetto export via [`chrome_trace`] and CSV snapshots via
//!   [`snapshots_to_csv`].

mod agility;
mod provisioning;
mod qos;
mod registry;
mod span;
mod trace;

pub use agility::{AgilityMeter, AgilityReport};
pub use provisioning::{ProvisioningRecorder, ProvisioningReport};
pub use qos::{AdmissionCounters, AdmissionStats, LatencyTracker, ThroughputTracker};
pub use registry::{
    snapshots_to_csv, Counter, Gauge, Histogram, HistogramSnapshot, MetricsHandle, Registry,
    RegistrySnapshot, CSV_HEADER,
};
pub use span::{
    chrome_trace, DecisionSpan, InvocationOutcome, InvocationSpan, OfferInfo, PathSegment,
    RuleInfo, Span, SpanBuilder,
};
pub use trace::{TraceEvent, TraceHandle, TraceRecord, TraceSink};
