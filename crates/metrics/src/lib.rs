#![warn(missing_docs)]

//! SPEC elasticity metrics for the ElasticRMI reproduction.
//!
//! Implements the two metrics the paper's evaluation (§5.1) is built on:
//!
//! * **Agility** — for a measurement period divided into `N` sub-intervals,
//!   `Agility = (1/N) (Σ Excess(i) + Σ Shortage(i))` where
//!   `Excess(i) = max(0, Cap_prov(i) − Req_min(i))` and
//!   `Shortage(i) = max(0, Req_min(i) − Cap_prov(i))`. An ideal deployment
//!   has agility 0: never under- nor over-provisioned. See [`AgilityMeter`].
//! * **Provisioning interval** — the time between requesting a new resource
//!   and that resource serving its first request. See
//!   [`ProvisioningRecorder`].
//!
//! The crate also provides the QoS trackers (throughput / latency) used by
//! the threaded runtime and application tests.

mod agility;
mod provisioning;
mod qos;
mod trace;

pub use agility::{AgilityMeter, AgilityReport};
pub use provisioning::{ProvisioningRecorder, ProvisioningReport};
pub use qos::{AdmissionCounters, AdmissionStats, LatencyTracker, ThroughputTracker};
pub use trace::{TraceEvent, TraceHandle, TraceRecord, TraceSink};
