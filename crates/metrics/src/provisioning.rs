//! The provisioning-interval metric (paper §5.1, Fig. 8).

use std::collections::HashMap;

use erm_sim::{SimDuration, SimTime, TimeSeries};
use serde::{Deserialize, Serialize};

/// Records provisioning intervals: the time between *initiating the request*
/// to bring up a new resource and that resource *serving its first request*.
///
/// # Example
///
/// ```
/// use erm_metrics::ProvisioningRecorder;
/// use erm_sim::{SimDuration, SimTime};
///
/// let mut rec = ProvisioningRecorder::new();
/// rec.requested(1, SimTime::from_secs(100));
/// rec.first_served(1, SimTime::from_secs(118));
/// let report = rec.finish(SimTime::from_secs(200));
/// assert_eq!(report.mean_latency(), Some(SimDuration::from_secs(18)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProvisioningRecorder {
    pending: HashMap<u64, SimTime>,
    completed: Vec<(SimTime, SimDuration)>,
}

impl ProvisioningRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Notes that resource `id` was requested at `t`. Re-requesting an id
    /// that is still pending keeps the *earlier* request time, since the
    /// metric is defined from request initiation.
    pub fn requested(&mut self, id: u64, t: SimTime) {
        self.pending.entry(id).or_insert(t);
    }

    /// Notes that resource `id` served its first request at `t`. Unknown ids
    /// are ignored (the resource may predate the measurement period).
    pub fn first_served(&mut self, id: u64, t: SimTime) {
        if let Some(start) = self.pending.remove(&id) {
            self.completed.push((t, t.saturating_since(start)));
        }
    }

    /// Number of requests still awaiting their first served invocation.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Closes the measurement at `end` and returns the report. Requests that
    /// never served anything are reported as `abandoned`.
    pub fn finish(self, end: SimTime) -> ProvisioningReport {
        let mut completed = self.completed;
        completed.sort_by_key(|&(t, _)| t);
        let mut series = TimeSeries::new("provisioning_latency_s");
        for &(t, d) in &completed {
            series.push(t, d.as_secs_f64());
        }
        let abandoned = self.pending.len();
        let mean = if completed.is_empty() {
            None
        } else {
            let total: u64 = completed.iter().map(|&(_, d)| d.as_micros()).sum();
            Some(SimDuration::from_micros(total / completed.len() as u64))
        };
        let max = completed.iter().map(|&(_, d)| d).max();
        ProvisioningReport {
            end,
            events: completed.len(),
            abandoned,
            mean,
            max,
            series,
        }
    }
}

/// Summary of provisioning intervals over a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProvisioningReport {
    end: SimTime,
    events: usize,
    abandoned: usize,
    mean: Option<SimDuration>,
    max: Option<SimDuration>,
    series: TimeSeries,
}

impl ProvisioningReport {
    /// Number of completed provisioning events.
    pub fn events(&self) -> usize {
        self.events
    }

    /// Requests that never served a first invocation before the run ended.
    pub fn abandoned(&self) -> usize {
        self.abandoned
    }

    /// Mean provisioning interval, `None` if no events completed.
    pub fn mean_latency(&self) -> Option<SimDuration> {
        self.mean
    }

    /// Maximum provisioning interval, `None` if no events completed.
    pub fn max_latency(&self) -> Option<SimDuration> {
        self.max
    }

    /// Latency (seconds) against completion time — the Fig. 8 curve.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_request_to_first_serve() {
        let mut rec = ProvisioningRecorder::new();
        rec.requested(7, SimTime::from_secs(10));
        rec.first_served(7, SimTime::from_secs(35));
        let report = rec.finish(SimTime::from_secs(100));
        assert_eq!(report.events(), 1);
        assert_eq!(report.mean_latency(), Some(SimDuration::from_secs(25)));
        assert_eq!(report.max_latency(), Some(SimDuration::from_secs(25)));
    }

    #[test]
    fn re_request_keeps_earliest_time() {
        let mut rec = ProvisioningRecorder::new();
        rec.requested(1, SimTime::from_secs(10));
        rec.requested(1, SimTime::from_secs(20));
        rec.first_served(1, SimTime::from_secs(30));
        let report = rec.finish(SimTime::from_secs(50));
        assert_eq!(report.mean_latency(), Some(SimDuration::from_secs(20)));
    }

    #[test]
    fn unknown_serve_is_ignored() {
        let mut rec = ProvisioningRecorder::new();
        rec.first_served(99, SimTime::from_secs(5));
        let report = rec.finish(SimTime::from_secs(10));
        assert_eq!(report.events(), 0);
        assert_eq!(report.mean_latency(), None);
    }

    #[test]
    fn abandoned_requests_are_counted() {
        let mut rec = ProvisioningRecorder::new();
        rec.requested(1, SimTime::from_secs(1));
        rec.requested(2, SimTime::from_secs(2));
        rec.first_served(1, SimTime::from_secs(3));
        assert_eq!(rec.pending_count(), 1);
        let report = rec.finish(SimTime::from_secs(10));
        assert_eq!(report.abandoned(), 1);
        assert_eq!(report.events(), 1);
    }

    #[test]
    fn mean_over_multiple_events() {
        let mut rec = ProvisioningRecorder::new();
        for (id, start, served) in [(1, 0, 10), (2, 0, 20), (3, 0, 30)] {
            rec.requested(id, SimTime::from_secs(start));
            rec.first_served(id, SimTime::from_secs(served));
        }
        let report = rec.finish(SimTime::from_secs(60));
        assert_eq!(report.mean_latency(), Some(SimDuration::from_secs(20)));
        assert_eq!(report.max_latency(), Some(SimDuration::from_secs(30)));
        assert_eq!(report.series().len(), 3);
    }
}
