//! A lock-cheap registry of named instruments.
//!
//! Components register [`Counter`]s, [`Gauge`]s and [`Histogram`]s once (at
//! construction or wiring time) and record into them on the hot path with
//! nothing but relaxed atomic operations — no locks, no allocation, no
//! formatting. Like [`crate::TraceHandle`], the whole layer is opt-in: a
//! disabled [`MetricsHandle`] hands out disabled instruments whose record
//! calls compile down to a branch on a `None`.
//!
//! Instrument names are dotted paths (`component.noun.metric`), e.g.
//! `skeleton.queue.delay`, `kv.lock.wait`, `cluster.provision.latency`.
//! Registering the same name twice returns the same underlying cell, so
//! restarted components keep accumulating into one series.
//!
//! Histograms use the same log-linear (√2 resolution, 64 bucket) scheme as
//! [`crate::LatencyTracker`], but over atomics: fixed allocation, mergeable
//! snapshots, HDR-style approximate quantiles with exact count/mean/max.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use erm_sim::{SimDuration, SimTime};

use crate::qos::{bucket_index, bucket_upper_bound, BUCKETS};

/// The shared instrument table. Create one per run (or per pool) and snapshot
/// it whenever a time-series sample is wanted.
///
/// # Example
///
/// ```
/// use erm_metrics::MetricsHandle;
/// use erm_sim::{SimDuration, SimTime};
///
/// let (metrics, registry) = MetricsHandle::shared();
/// let delay = metrics.histogram("skeleton.queue.delay");
/// delay.record(SimDuration::from_millis(12));
/// let snap = registry.snapshot(SimTime::from_secs(1));
/// assert_eq!(snap.histograms[0].0, "skeleton.queue.delay");
/// assert_eq!(snap.histograms[0].1.count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<HistogramCore>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn counter_cell(&self, name: &'static str) -> Arc<AtomicU64> {
        let mut table = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(table.entry(name).or_default())
    }

    fn gauge_cell(&self, name: &'static str) -> Arc<AtomicI64> {
        let mut table = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(table.entry(name).or_default())
    }

    fn histogram_cell(&self, name: &'static str) -> Arc<HistogramCore> {
        let mut table = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            table
                .entry(name)
                .or_insert_with(|| Arc::new(HistogramCore::new())),
        )
    }

    /// A point-in-time copy of every instrument, stamped `at` (whatever clock
    /// the caller runs on — virtual time in experiments).
    pub fn snapshot(&self, at: SimTime) -> RegistrySnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(&name, cell)| (name, cell.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(&name, cell)| (name, cell.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(&name, cell)| (name, cell.snapshot()))
            .collect();
        RegistrySnapshot {
            at,
            counters,
            gauges,
            histograms,
        }
    }
}

/// A cheap, cloneable handle components register instruments through: either
/// disabled (the default — every instrument it hands out is a no-op) or
/// backed by a shared [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct MetricsHandle {
    registry: Option<Arc<Registry>>,
}

impl MetricsHandle {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        MetricsHandle::default()
    }

    /// A handle backed by `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        MetricsHandle {
            registry: Some(registry),
        }
    }

    /// Creates a registry and a handle onto it.
    pub fn shared() -> (Self, Arc<Registry>) {
        let registry = Arc::new(Registry::new());
        (MetricsHandle::new(Arc::clone(&registry)), registry)
    }

    /// Whether instruments reach a registry.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// Registers (or re-opens) the named counter.
    pub fn counter(&self, name: &'static str) -> Counter {
        Counter {
            cell: self.registry.as_ref().map(|r| r.counter_cell(name)),
        }
    }

    /// Registers (or re-opens) the named gauge.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        Gauge {
            cell: self.registry.as_ref().map(|r| r.gauge_cell(name)),
        }
    }

    /// Registers (or re-opens) the named histogram.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        Histogram {
            core: self.registry.as_ref().map(|r| r.histogram_cell(name)),
        }
    }
}

/// A monotonically increasing count. Disabled by default.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A counter that records nothing.
    pub fn disabled() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current count (zero when disabled).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A last-value-wins instantaneous measurement. Disabled by default.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// A gauge that records nothing.
    pub fn disabled() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, value: i64) {
        if let Some(cell) = &self.cell {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Adjusts the value by `delta`.
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The current value (zero when disabled).
    pub fn get(&self) -> i64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A duration distribution with log-linear buckets. Disabled by default.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// A histogram that records nothing.
    pub fn disabled() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, d: SimDuration) {
        if let Some(core) = &self.core {
            core.record(d);
        }
    }

    /// A point-in-time copy (empty when disabled).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.core
            .as_ref()
            .map_or_else(HistogramSnapshot::default, |core| core.snapshot())
    }
}

/// The fixed-allocation atomic core behind a [`Histogram`]: 64 log-linear
/// buckets plus exact count / sum / max, all relaxed atomics so concurrent
/// skeleton threads can record without coordination.
#[derive(Debug)]
pub struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }

    fn record(&self, d: SimDuration) {
        let micros = d.as_micros();
        self.buckets[bucket_index(d)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one histogram, mergeable across members (the same
/// aggregation the sentinel does for per-skeleton latency).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_micros: u64,
    max_micros: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum_micros: 0,
            max_micros: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean, `None` when empty.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.count == 0 {
            return None;
        }
        Some(SimDuration::from_micros(self.sum_micros / self.count))
    }

    /// Exact maximum, `None` when empty.
    pub fn max(&self) -> Option<SimDuration> {
        if self.count == 0 {
            None
        } else {
            Some(SimDuration::from_micros(self.max_micros))
        }
    }

    /// Approximate quantile (`0.0..=1.0`) as a bucket upper bound, clamped to
    /// the exact maximum.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        assert!((0.0..=1.0).contains(&q), "quantile must be within [0,1]");
        if self.count == 0 {
            return None;
        }
        let max = SimDuration::from_micros(self.max_micros);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(bucket_upper_bound(i).min(max));
            }
        }
        Some(max)
    }

    /// Merges another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_micros += other.sum_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
    }
}

/// Every instrument's value at one instant, for CSV time series.
#[derive(Debug, Clone)]
pub struct RegistrySnapshot {
    /// When the snapshot was taken, on the caller's clock.
    pub at: SimTime,
    /// Counter values, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(&'static str, i64)>,
    /// Histogram copies, sorted by name.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

/// Header row of [`snapshots_to_csv`].
pub const CSV_HEADER: &str = "at_s,name,kind,count,value,mean_us,p50_us,p90_us,p99_us,max_us";

/// Renders snapshots as one CSV: a row per instrument per snapshot, so a
/// sequence of snapshots becomes a time series keyed on `at_s,name`.
/// Counters and gauges fill `value`; histograms fill the percentile columns
/// (microseconds, blank when the histogram is empty).
pub fn snapshots_to_csv(snapshots: &[RegistrySnapshot]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for snap in snapshots {
        let at = format!("{:.6}", snap.at.as_secs_f64());
        for &(name, value) in &snap.counters {
            out.push_str(&format!("{at},{name},counter,{value},{value},,,,,\n"));
        }
        for &(name, value) in &snap.gauges {
            out.push_str(&format!("{at},{name},gauge,,{value},,,,,\n"));
        }
        for (name, h) in &snap.histograms {
            let us =
                |d: Option<SimDuration>| d.map_or(String::new(), |d| d.as_micros().to_string());
            out.push_str(&format!(
                "{at},{name},histogram,{},,{},{},{},{},{}\n",
                h.count(),
                us(h.mean()),
                us(h.quantile(0.5)),
                us(h.quantile(0.9)),
                us(h.quantile(0.99)),
                us(h.max()),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_instruments_are_no_ops() {
        let handle = MetricsHandle::disabled();
        assert!(!handle.is_enabled());
        let c = handle.counter("x");
        let g = handle.gauge("y");
        let h = handle.histogram("z");
        c.incr();
        g.set(5);
        h.record(SimDuration::from_millis(1));
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.snapshot().count(), 0);
    }

    #[test]
    fn same_name_shares_the_cell() {
        let (handle, registry) = MetricsHandle::shared();
        let a = handle.counter("pool.grow");
        let b = handle.counter("pool.grow");
        a.incr();
        b.incr();
        assert_eq!(a.get(), 2);
        let snap = registry.snapshot(SimTime::ZERO);
        assert_eq!(snap.counters, vec![("pool.grow", 2)]);
    }

    #[test]
    fn histogram_quantiles_match_latency_tracker() {
        let (handle, _registry) = MetricsHandle::shared();
        let h = handle.histogram("lat");
        let mut tracker = crate::LatencyTracker::new();
        for ms in 1..=100u64 {
            let d = SimDuration::from_millis(ms);
            h.record(d);
            tracker.observe(d);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        assert_eq!(snap.mean(), tracker.mean());
        assert_eq!(snap.max(), tracker.max());
        for q in [0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), tracker.quantile(q), "q={q}");
        }
    }

    #[test]
    fn snapshots_merge_like_the_sentinel_does() {
        let (handle, _r) = MetricsHandle::shared();
        let a = handle.histogram("a");
        let b = handle.histogram("b");
        a.record(SimDuration::from_millis(5));
        b.record(SimDuration::from_millis(50));
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.max(), Some(SimDuration::from_millis(50)));
    }

    #[test]
    fn gauge_tracks_last_value_and_deltas() {
        let (handle, _r) = MetricsHandle::shared();
        let g = handle.gauge("pool.size");
        g.set(3);
        g.add(2);
        g.add(-1);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn csv_has_a_row_per_instrument_per_snapshot() {
        let (handle, registry) = MetricsHandle::shared();
        handle.counter("c").add(7);
        handle.gauge("g").set(-2);
        handle.histogram("h").record(SimDuration::from_millis(10));
        let s1 = registry.snapshot(SimTime::from_secs(1));
        handle.counter("c").add(1);
        let s2 = registry.snapshot(SimTime::from_secs(2));
        let csv = snapshots_to_csv(&[s1, s2]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines.len(), 1 + 3 + 3);
        assert!(lines[1].starts_with("1.000000,c,counter,7,7"));
        assert!(lines[2].starts_with("1.000000,g,gauge,,-2"));
        assert!(lines[3].starts_with("1.000000,h,histogram,1,,"));
        assert!(lines[4].starts_with("2.000000,c,counter,8,8"));
    }

    #[test]
    fn empty_histogram_csv_leaves_percentiles_blank() {
        let (handle, registry) = MetricsHandle::shared();
        let _ = handle.histogram("h");
        let csv = snapshots_to_csv(&[registry.snapshot(SimTime::ZERO)]);
        assert!(csv.lines().nth(1).unwrap().ends_with("histogram,0,,,,,,"));
    }
}
