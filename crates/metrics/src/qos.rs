//! QoS trackers: throughput and latency.
//!
//! The paper defines QoS per application as "typically a combination of
//! throughput and latency" (§5.1). These trackers are used by the threaded
//! runtime's skeletons (per-method stats feeding `getMethodCallStats`) and by
//! the application tests.

use std::sync::atomic::{AtomicU64, Ordering};

use erm_sim::{SimDuration, SimTime, TimeSeries};

/// Counts events per fixed window and exposes a rate series.
///
/// # Example
///
/// ```
/// use erm_metrics::ThroughputTracker;
/// use erm_sim::{SimDuration, SimTime};
///
/// let mut t = ThroughputTracker::new(SimDuration::from_secs(1));
/// for i in 0..500 {
///     t.observe(SimTime::from_micros(i * 2_000)); // 500 events in 1s
/// }
/// t.flush(SimTime::from_secs(1));
/// assert_eq!(t.series().samples()[0].1, 500.0);
/// ```
#[derive(Debug, Clone)]
pub struct ThroughputTracker {
    window: SimDuration,
    window_start: SimTime,
    count: u64,
    total: u64,
    series: TimeSeries,
}

impl ThroughputTracker {
    /// Creates a tracker with the given aggregation window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "throughput window must be positive");
        ThroughputTracker {
            window,
            window_start: SimTime::ZERO,
            count: 0,
            total: 0,
            series: TimeSeries::new("throughput_per_s"),
        }
    }

    /// Records one event at `now`, closing windows as needed.
    pub fn observe(&mut self, now: SimTime) {
        self.roll(now);
        self.count += 1;
        self.total += 1;
    }

    /// Records `n` events at once.
    pub fn observe_n(&mut self, now: SimTime, n: u64) {
        self.roll(now);
        self.count += n;
        self.total += n;
    }

    fn roll(&mut self, now: SimTime) {
        while now.saturating_since(self.window_start) >= self.window {
            let end = self.window_start + self.window;
            let rate = self.count as f64 / self.window.as_secs_f64();
            self.series.push(end, rate);
            self.count = 0;
            self.window_start = end;
        }
    }

    /// Closes the window containing `now` so the final partial window is
    /// emitted.
    pub fn flush(&mut self, now: SimTime) {
        self.roll(now + self.window);
    }

    /// Total events observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Rate per window over time (events/second).
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }
}

/// Online latency statistics with logarithmic buckets.
///
/// Tracks count/mean/max exactly and quantiles approximately (bucketed by
/// powers of √2 starting at 1 µs), which is plenty for QoS thresholds like
/// "put latency > 100 ms" in the paper's `CacheExplicit2` example.
#[derive(Debug, Clone)]
pub struct LatencyTracker {
    buckets: Vec<u64>,
    count: u64,
    sum_micros: u128,
    max: SimDuration,
}

pub(crate) const BUCKETS: usize = 64;

/// Log-linear bucket index for a duration: two buckets per power of two
/// (≈ √2 resolution) starting at 1 µs. Shared by [`LatencyTracker`] and the
/// registry's atomic histograms so their quantiles agree.
pub(crate) fn bucket_index(d: SimDuration) -> usize {
    let micros = d.as_micros().max(1);
    let log2 = 63 - micros.leading_zeros() as usize;
    let half = usize::from(micros >= (1u64 << log2) + (1u64 << log2.saturating_sub(1)));
    (2 * log2 + half).min(BUCKETS - 1)
}

/// Upper bound of a log-linear bucket, the value quantiles report.
pub(crate) fn bucket_upper_bound(index: usize) -> SimDuration {
    let log2 = index / 2;
    let base = 1u64 << log2;
    let bound = if index.is_multiple_of(2) {
        base + base / 2
    } else {
        base * 2
    };
    SimDuration::from_micros(bound)
}

impl LatencyTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        LatencyTracker {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_micros: 0,
            max: SimDuration::ZERO,
        }
    }

    /// Records one latency observation.
    pub fn observe(&mut self, latency: SimDuration) {
        self.buckets[bucket_index(latency)] += 1;
        self.count += 1;
        self.sum_micros += u128::from(latency.as_micros());
        if latency > self.max {
            self.max = latency;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean latency, `None` when empty.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.count == 0 {
            return None;
        }
        Some(SimDuration::from_micros(
            (self.sum_micros / u128::from(self.count)) as u64,
        ))
    }

    /// Exact maximum latency, `None` when empty.
    pub fn max(&self) -> Option<SimDuration> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Approximate quantile (`0.0..=1.0`) as a bucket upper bound.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        assert!((0.0..=1.0).contains(&q), "quantile must be within [0,1]");
        if self.count == 0 {
            return None;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(bucket_upper_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Merges another tracker into this one (used when aggregating
    /// per-skeleton stats at the sentinel).
    pub fn merge(&mut self, other: &LatencyTracker) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_micros += other.sum_micros;
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

impl Default for LatencyTracker {
    fn default() -> Self {
        Self::new()
    }
}

/// Thread-safe counters of admission-control decisions — one per component
/// (skeleton, pool, experiment) that admits, rejects, culls or sheds work.
///
/// # Example
///
/// ```
/// use erm_metrics::AdmissionCounters;
///
/// let counters = AdmissionCounters::new();
/// counters.admit();
/// counters.reject();
/// let stats = counters.snapshot();
/// assert_eq!((stats.admitted, stats.rejected), (1, 1));
/// ```
#[derive(Debug, Default)]
pub struct AdmissionCounters {
    admitted: AtomicU64,
    rejected: AtomicU64,
    culled: AtomicU64,
    shed: AtomicU64,
}

/// A point-in-time copy of [`AdmissionCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Requests admitted into a run queue.
    pub admitted: u64,
    /// Requests refused with `Overloaded` (queue full).
    pub rejected: u64,
    /// Admitted requests culled from a queue after their deadline passed.
    pub culled: u64,
    /// Requests shed sideways (rebalance redirect or shutdown drain).
    pub shed: u64,
}

impl AdmissionCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        AdmissionCounters::default()
    }

    /// Counts one admission.
    pub fn admit(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one `Overloaded` rejection.
    pub fn reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one expired-in-queue cull.
    pub fn cull(&self) {
        self.culled.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one shed (redirect).
    pub fn shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            culled: self.culled.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_counts_rate_per_window() {
        let mut t = ThroughputTracker::new(SimDuration::from_secs(10));
        for s in 0..10 {
            t.observe_n(SimTime::from_secs(s), 100); // 1000 events in 10s
        }
        t.flush(SimTime::from_secs(10));
        assert_eq!(t.total(), 1000);
        assert_eq!(t.series().samples()[0].1, 100.0);
    }

    #[test]
    fn throughput_emits_zero_windows_for_idle_gaps() {
        let mut t = ThroughputTracker::new(SimDuration::from_secs(1));
        t.observe(SimTime::from_secs(0));
        t.observe(SimTime::from_secs(5));
        t.flush(SimTime::from_secs(5));
        let zeros = t.series().iter().filter(|&(_, v)| v == 0.0).count();
        assert!(
            zeros >= 3,
            "idle seconds should appear as zero-rate windows"
        );
    }

    #[test]
    fn latency_mean_and_max_are_exact() {
        let mut l = LatencyTracker::new();
        l.observe(SimDuration::from_millis(10));
        l.observe(SimDuration::from_millis(20));
        l.observe(SimDuration::from_millis(30));
        assert_eq!(l.mean(), Some(SimDuration::from_millis(20)));
        assert_eq!(l.max(), Some(SimDuration::from_millis(30)));
        assert_eq!(l.count(), 3);
    }

    #[test]
    fn quantile_is_order_of_magnitude_accurate() {
        let mut l = LatencyTracker::new();
        for ms in 1..=100u64 {
            l.observe(SimDuration::from_millis(ms));
        }
        let p50 = l.quantile(0.5).unwrap();
        assert!(
            p50 >= SimDuration::from_millis(32) && p50 <= SimDuration::from_millis(100),
            "p50 = {p50}"
        );
        let p100 = l.quantile(1.0).unwrap();
        assert_eq!(p100, SimDuration::from_millis(100));
    }

    #[test]
    fn empty_latency_tracker_returns_none() {
        let l = LatencyTracker::new();
        assert_eq!(l.mean(), None);
        assert_eq!(l.max(), None);
        assert_eq!(l.quantile(0.9), None);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyTracker::new();
        let mut b = LatencyTracker::new();
        a.observe(SimDuration::from_millis(5));
        b.observe(SimDuration::from_millis(50));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Some(SimDuration::from_millis(50)));
    }

    #[test]
    #[should_panic(expected = "within [0,1]")]
    fn quantile_validates_range() {
        let l = LatencyTracker::new();
        let _ = l.quantile(1.5);
    }

    #[test]
    fn admission_counters_tally_each_decision() {
        let c = AdmissionCounters::new();
        c.admit();
        c.admit();
        c.reject();
        c.cull();
        c.shed();
        assert_eq!(
            c.snapshot(),
            AdmissionStats {
                admitted: 2,
                rejected: 1,
                culled: 1,
                shed: 1,
            }
        );
    }
}
