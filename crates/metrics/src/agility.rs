//! The SPEC agility metric (paper §5.1).

use erm_sim::{SimDuration, SimTime, TimeSeries};
use serde::{Deserialize, Serialize};

/// Accumulates `Req_min(i)` / `Cap_prov(i)` sub-samples and produces both the
/// agility-over-time series plotted in Fig. 7 and the run-wide average
/// agility quoted in the paper's prose.
///
/// The meter distinguishes two granularities, matching the paper:
///
/// * a **sub-interval** (the SPEC `i`; we default to 1 minute) at which one
///   `Excess(i)`/`Shortage(i)` pair is recorded, and
/// * a **plot window** (the figure sampling interval; the paper uses
///   10 minutes) over which the sub-samples are averaged into one plotted
///   agility value.
///
/// # Example
///
/// ```
/// use erm_metrics::AgilityMeter;
/// use erm_sim::{SimDuration, SimTime};
///
/// let mut meter = AgilityMeter::new(SimDuration::from_minutes(1), SimDuration::from_minutes(10));
/// for minute in 0..20 {
///     let t = SimTime::from_minutes(minute);
///     // 2 nodes needed, 3 provisioned -> excess of 1 everywhere.
///     meter.record(t, 2.0, 3.0);
/// }
/// let report = meter.finish();
/// assert_eq!(report.mean_agility(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct AgilityMeter {
    sub_interval: SimDuration,
    window: SimDuration,
    next_sub_due: SimTime,
    window_start: SimTime,
    window_excess: f64,
    window_shortage: f64,
    window_count: u32,
    total_excess: f64,
    total_shortage: f64,
    total_count: u64,
    shortage_subs: u64,
    series: TimeSeries,
    excess_series: TimeSeries,
    shortage_series: TimeSeries,
}

impl AgilityMeter {
    /// Creates a meter sampling one SPEC sub-interval every `sub_interval`
    /// and emitting one plotted point every `window`.
    ///
    /// # Panics
    ///
    /// Panics if either duration is zero or if `window < sub_interval`.
    pub fn new(sub_interval: SimDuration, window: SimDuration) -> Self {
        assert!(!sub_interval.is_zero(), "sub-interval must be positive");
        assert!(
            window >= sub_interval,
            "window must cover >= 1 sub-interval"
        );
        AgilityMeter {
            sub_interval,
            window,
            next_sub_due: SimTime::ZERO,
            window_start: SimTime::ZERO,
            window_excess: 0.0,
            window_shortage: 0.0,
            window_count: 0,
            total_excess: 0.0,
            total_shortage: 0.0,
            total_count: 0,
            shortage_subs: 0,
            series: TimeSeries::new("agility"),
            excess_series: TimeSeries::new("excess"),
            shortage_series: TimeSeries::new("shortage"),
        }
    }

    /// A meter with the paper's parameters: 1-minute sub-intervals averaged
    /// into 10-minute plotted points.
    pub fn paper_default() -> Self {
        Self::new(SimDuration::from_minutes(1), SimDuration::from_minutes(10))
    }

    /// Feeds the current capacity picture. Call as often as you like (e.g.
    /// every simulation tick); the meter latches one sub-sample per
    /// sub-interval boundary and ignores calls in between.
    ///
    /// `req_min` is the minimum capacity (in nodes/objects) needed to meet
    /// QoS at the current workload; `cap_prov` is the capacity actually
    /// provisioned.
    ///
    /// # Panics
    ///
    /// Panics if either value is negative or non-finite.
    pub fn record(&mut self, now: SimTime, req_min: f64, cap_prov: f64) {
        assert!(
            req_min.is_finite() && req_min >= 0.0 && cap_prov.is_finite() && cap_prov >= 0.0,
            "capacity samples must be finite and non-negative"
        );
        if now < self.next_sub_due {
            return;
        }
        self.next_sub_due = now + self.sub_interval;

        let excess = (cap_prov - req_min).max(0.0);
        let shortage = (req_min - cap_prov).max(0.0);
        self.window_excess += excess;
        self.window_shortage += shortage;
        self.window_count += 1;
        self.total_excess += excess;
        self.total_shortage += shortage;
        self.total_count += 1;
        if shortage > 0.0 {
            self.shortage_subs += 1;
        }

        if now.saturating_since(self.window_start) >= self.window {
            self.flush_window(now);
        }
    }

    fn flush_window(&mut self, now: SimTime) {
        if self.window_count > 0 {
            let n = f64::from(self.window_count);
            self.series
                .push(now, (self.window_excess + self.window_shortage) / n);
            self.excess_series.push(now, self.window_excess / n);
            self.shortage_series.push(now, self.window_shortage / n);
        }
        self.window_start = now;
        self.window_excess = 0.0;
        self.window_shortage = 0.0;
        self.window_count = 0;
    }

    /// Closes the final (possibly partial) window and returns the report.
    pub fn finish(mut self) -> AgilityReport {
        let at = self.window_start + self.window;
        self.flush_window(at.max(self.next_sub_due));
        AgilityReport {
            mean_agility: if self.total_count == 0 {
                0.0
            } else {
                (self.total_excess + self.total_shortage) / self.total_count as f64
            },
            mean_excess: if self.total_count == 0 {
                0.0
            } else {
                self.total_excess / self.total_count as f64
            },
            mean_shortage: if self.total_count == 0 {
                0.0
            } else {
                self.total_shortage / self.total_count as f64
            },
            sub_samples: self.total_count,
            shortage_fraction: if self.total_count == 0 {
                0.0
            } else {
                self.shortage_subs as f64 / self.total_count as f64
            },
            series: self.series,
            excess_series: self.excess_series,
            shortage_series: self.shortage_series,
        }
    }
}

/// The outcome of an agility measurement: the plotted series plus run-wide
/// averages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgilityReport {
    mean_agility: f64,
    mean_excess: f64,
    mean_shortage: f64,
    sub_samples: u64,
    shortage_fraction: f64,
    series: TimeSeries,
    excess_series: TimeSeries,
    shortage_series: TimeSeries,
}

impl AgilityReport {
    /// The SPEC agility over the whole run: `(ΣExcess + ΣShortage) / N`.
    pub fn mean_agility(&self) -> f64 {
        self.mean_agility
    }

    /// Mean excess capacity (resource wastage component).
    pub fn mean_excess(&self) -> f64 {
        self.mean_excess
    }

    /// Mean shortage (under-provisioning component).
    pub fn mean_shortage(&self) -> f64 {
        self.mean_shortage
    }

    /// Number of SPEC sub-samples the averages cover.
    pub fn sub_samples(&self) -> u64 {
        self.sub_samples
    }

    /// Fraction of sub-intervals that were under-provisioned — the share of
    /// time QoS was at risk. The paper's agility definition "will not be
    /// valid in a context where the QoS is not met" (§5.1); this statistic
    /// is how the harness checks that caveat stays small.
    pub fn shortage_fraction(&self) -> f64 {
        self.shortage_fraction
    }

    /// Agility per plot window over time (the Fig. 7 curve).
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Excess-only component over time.
    pub fn excess_series(&self) -> &TimeSeries {
        &self.excess_series
    }

    /// Shortage-only component over time.
    pub fn shortage_series(&self) -> &TimeSeries {
        &self.shortage_series
    }

    /// Fraction of plotted points where agility returned exactly to zero —
    /// the paper repeatedly notes ElasticRMI "oscillates between 0 and a
    /// positive value".
    pub fn zero_fraction(&self) -> f64 {
        self.series.zero_fraction().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_constant(req: f64, cap: f64, minutes: u64) -> AgilityReport {
        let mut meter = AgilityMeter::paper_default();
        for m in 0..minutes {
            meter.record(SimTime::from_minutes(m), req, cap);
        }
        meter.finish()
    }

    #[test]
    fn perfectly_provisioned_has_zero_agility() {
        let report = run_constant(5.0, 5.0, 100);
        assert_eq!(report.mean_agility(), 0.0);
        assert_eq!(report.zero_fraction(), 1.0);
    }

    #[test]
    fn excess_counts_positive() {
        let report = run_constant(5.0, 8.0, 60);
        assert_eq!(report.mean_agility(), 3.0);
        assert_eq!(report.mean_excess(), 3.0);
        assert_eq!(report.mean_shortage(), 0.0);
    }

    #[test]
    fn shortage_counts_positive() {
        let report = run_constant(8.0, 5.0, 60);
        assert_eq!(report.mean_agility(), 3.0);
        assert_eq!(report.mean_shortage(), 3.0);
        assert_eq!(report.mean_excess(), 0.0);
    }

    #[test]
    fn excess_and_shortage_do_not_cancel() {
        // Half the run over-provisioned by 2, half under by 2: SPEC agility
        // adds magnitudes rather than letting them cancel out.
        let mut meter = AgilityMeter::paper_default();
        for m in 0..50 {
            meter.record(SimTime::from_minutes(m), 5.0, 7.0);
        }
        for m in 50..100 {
            meter.record(SimTime::from_minutes(m), 7.0, 5.0);
        }
        let report = meter.finish();
        assert_eq!(report.mean_agility(), 2.0);
    }

    #[test]
    fn sub_interval_latching_ignores_dense_calls() {
        let mut meter =
            AgilityMeter::new(SimDuration::from_minutes(1), SimDuration::from_minutes(10));
        // Call every second for 10 minutes: only 10 sub-samples should land.
        for s in 0..600 {
            meter.record(SimTime::from_secs(s), 1.0, 2.0);
        }
        let report = meter.finish();
        assert_eq!(report.sub_samples(), 10);
        assert_eq!(report.mean_agility(), 1.0);
    }

    #[test]
    fn series_has_roughly_one_point_per_window() {
        let report = run_constant(4.0, 4.0, 100);
        // 100 minutes / 10-minute windows -> about 10 plotted points.
        let n = report.series().len();
        assert!((9..=11).contains(&n), "expected ~10 points, got {n}");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_capacity() {
        let mut meter = AgilityMeter::paper_default();
        meter.record(SimTime::ZERO, -1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "window must cover")]
    fn rejects_window_smaller_than_sub_interval() {
        let _ = AgilityMeter::new(SimDuration::from_minutes(10), SimDuration::from_minutes(1));
    }

    #[test]
    fn shortage_fraction_counts_underprovisioned_time() {
        let mut meter = AgilityMeter::paper_default();
        for m in 0..50 {
            meter.record(SimTime::from_minutes(m), 5.0, 6.0); // excess
        }
        for m in 50..100 {
            meter.record(SimTime::from_minutes(m), 6.0, 5.0); // shortage
        }
        let report = meter.finish();
        assert!((report.shortage_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_meter_reports_zero() {
        let report = AgilityMeter::paper_default().finish();
        assert_eq!(report.mean_agility(), 0.0);
        assert_eq!(report.sub_samples(), 0);
    }
}
