//! Structured invocation and elasticity tracing.
//!
//! Every layer of the middleware — stub, skeleton, pool runtime, scaling
//! engine, experiment harness — can emit typed [`TraceEvent`]s into a shared
//! ring-buffer [`TraceSink`]. A trace stitches one invocation's life back
//! together across retries and redirects (which otherwise only exist as
//! per-layer counters) and interleaves it with the control-plane decisions
//! (scale out/in, drains, sentinel elections) that explain *why* the
//! invocation travelled the way it did.
//!
//! Tracing is opt-in and cheap when off: components hold a [`TraceHandle`],
//! which is either disabled (a no-op, the default) or backed by a sink.
//! Timestamps come from whatever clock the emitting component runs on, so a
//! virtual-time experiment produces virtual-time traces.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

use erm_sim::{SimDuration, SimTime};

/// One typed event in the life of an invocation or of the pool.
///
/// Endpoints and member uids are carried as raw `u64`s so the metrics crate
/// stays independent of the transport layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A stub sent (or re-sent) a request to one member.
    AttemptStarted {
        /// Invocation id (stable across every attempt of one `invoke`).
        invocation: u64,
        /// 1-based attempt counter.
        attempt: u32,
        /// Target member endpoint.
        target: u64,
        /// Absolute deadline the attempt runs under.
        deadline: SimTime,
    },
    /// An attempt got no usable answer (send failure, timeout, dead member);
    /// the stub will retry elsewhere if budget remains.
    AttemptFailed {
        /// Invocation id.
        invocation: u64,
        /// The attempt that failed.
        attempt: u32,
        /// The member that did not answer.
        target: u64,
    },
    /// A member answered with `Redirected`; the stub follows with whatever
    /// deadline budget remains.
    AttemptRedirected {
        /// Invocation id.
        invocation: u64,
        /// The attempt that was redirected.
        attempt: u32,
        /// Budget left when the redirect was followed.
        remaining: SimDuration,
    },
    /// The invocation's deadline passed before any member answered.
    InvocationExpired {
        /// Invocation id.
        invocation: u64,
        /// Attempts consumed before expiry.
        attempts: u32,
    },
    /// The invocation finished with a response (success or remote error).
    InvocationCompleted {
        /// Invocation id.
        invocation: u64,
        /// Attempts consumed, including the successful one.
        attempts: u32,
        /// Whether the remote method returned normally.
        ok: bool,
    },
    /// A skeleton refused to dispatch a request whose deadline had already
    /// passed on arrival.
    RequestExpired {
        /// The rejecting member's uid.
        uid: u64,
        /// Invocation id from the request's context.
        invocation: u64,
        /// How far past its deadline the request was.
        late_by: SimDuration,
    },
    /// A skeleton shed a request (rebalance quota or shutdown drain).
    RequestShed {
        /// The shedding member's uid.
        uid: u64,
        /// Invocation id from the request's context.
        invocation: u64,
    },
    /// A skeleton admitted a request into its bounded run queue.
    RequestAdmitted {
        /// The admitting member's uid.
        uid: u64,
        /// Invocation id from the request's context.
        invocation: u64,
        /// Queue depth after admission.
        depth: u32,
    },
    /// A skeleton refused a request with `Overloaded`: the admission queue
    /// was full of live work.
    RequestOverloaded {
        /// The refusing member's uid.
        uid: u64,
        /// Invocation id from the request's context.
        invocation: u64,
        /// Live queue depth at rejection time.
        queue_depth: u32,
        /// The retry pause suggested to the stub.
        retry_after: SimDuration,
    },
    /// A stub attempt was answered with `Overloaded`; the stub backs off
    /// and tries elsewhere if budget remains.
    AttemptOverloaded {
        /// Invocation id.
        invocation: u64,
        /// The attempt that was refused.
        attempt: u32,
        /// The member that refused.
        target: u64,
        /// The server's suggested retry pause.
        retry_after: SimDuration,
    },
    /// The stub's client-side limiter refused an invocation locally —
    /// nothing was sent to the pool.
    InvocationThrottled {
        /// Invocation id.
        invocation: u64,
        /// How long the limiter suggests waiting.
        retry_after: SimDuration,
    },
    /// A member joined the pool.
    MemberJoined {
        /// The new member's uid.
        uid: u64,
    },
    /// A member finished its two-phase shutdown drain.
    MemberDrained {
        /// The drained member's uid.
        uid: u64,
    },
    /// A member was lost to a crash or slice revocation.
    MemberCrashed {
        /// The lost member's uid.
        uid: u64,
    },
    /// The sentinel changed (initial election or re-election after a crash).
    SentinelElected {
        /// The new sentinel's uid.
        uid: u64,
        /// Membership epoch at election time.
        epoch: u64,
    },
    /// The scaling engine (or harness controller) decided to resize.
    ScaleDecision {
        /// Pool size the decision was made at.
        pool_size: u32,
        /// Members to add (positive) or remove (negative).
        delta: i64,
    },
    /// A skeleton finished executing an admitted request. Emitted at
    /// completion time so span reconstruction can place the queue-wait and
    /// execute phases inside the client's attempt.
    RequestExecuted {
        /// The executing member's uid.
        uid: u64,
        /// Invocation id from the request's context.
        invocation: u64,
        /// Time the request spent admitted but waiting in the run queue.
        queued_for: SimDuration,
        /// Time the service spent executing it.
        ran_for: SimDuration,
    },
    /// A scaling rule crossed its threshold, triggering the decision emitted
    /// immediately after as [`TraceEvent::ScaleDecision`]. Observed value and
    /// threshold are in milli-units of whatever the rule measures (ms of
    /// queue delay, milli-percent of CPU, milli-votes) so the event stays
    /// `Eq`-comparable.
    RuleFired {
        /// Which rule fired (e.g. `queue-delay-above-bound`,
        /// `cpu-above-increase-threshold`).
        rule: &'static str,
        /// The sampled value, in milli-units.
        observed_milli: i64,
        /// The configured threshold it crossed, in milli-units.
        threshold_milli: i64,
    },
    /// The pool asked the cluster manager for slices (a resource offer).
    OfferRequested {
        /// Cluster-assigned request id, matching the eventual outcome.
        request_id: u64,
        /// Slices asked for.
        count: u32,
    },
    /// The cluster manager resolved a slice request. `granted == 0` means
    /// the offer was denied (no capacity, or every free slice on a failed
    /// node).
    OfferOutcome {
        /// The request this outcome resolves.
        request_id: u64,
        /// Slices granted (provisioning starts now).
        granted: u32,
        /// Slices originally requested.
        requested: u32,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::AttemptStarted {
                invocation,
                attempt,
                target,
                deadline,
            } => write!(
                f,
                "inv {invocation} attempt {attempt} -> endpoint {target} (deadline {deadline})"
            ),
            TraceEvent::AttemptFailed {
                invocation,
                attempt,
                target,
            } => {
                write!(
                    f,
                    "inv {invocation} attempt {attempt} failed at endpoint {target}"
                )
            }
            TraceEvent::AttemptRedirected {
                invocation,
                attempt,
                remaining,
            } => write!(
                f,
                "inv {invocation} attempt {attempt} redirected ({} budget left)",
                remaining
            ),
            TraceEvent::InvocationExpired {
                invocation,
                attempts,
            } => {
                write!(f, "inv {invocation} expired after {attempts} attempts")
            }
            TraceEvent::InvocationCompleted {
                invocation,
                attempts,
                ok,
            } => write!(
                f,
                "inv {invocation} completed after {attempts} attempts ({})",
                if *ok { "ok" } else { "remote error" }
            ),
            TraceEvent::RequestExpired {
                uid,
                invocation,
                late_by,
            } => {
                write!(
                    f,
                    "member {uid} rejected expired inv {invocation} ({late_by} late)"
                )
            }
            TraceEvent::RequestShed { uid, invocation } => {
                write!(f, "member {uid} shed inv {invocation}")
            }
            TraceEvent::RequestAdmitted {
                uid,
                invocation,
                depth,
            } => {
                write!(f, "member {uid} admitted inv {invocation} (depth {depth})")
            }
            TraceEvent::RequestOverloaded {
                uid,
                invocation,
                queue_depth,
                retry_after,
            } => write!(
                f,
                "member {uid} overloaded: refused inv {invocation} \
                 (depth {queue_depth}, retry in {retry_after})"
            ),
            TraceEvent::AttemptOverloaded {
                invocation,
                attempt,
                target,
                retry_after,
            } => write!(
                f,
                "inv {invocation} attempt {attempt} refused by overloaded \
                 endpoint {target} (retry in {retry_after})"
            ),
            TraceEvent::InvocationThrottled {
                invocation,
                retry_after,
            } => {
                write!(
                    f,
                    "inv {invocation} throttled locally (retry in {retry_after})"
                )
            }
            TraceEvent::MemberJoined { uid } => write!(f, "member {uid} joined"),
            TraceEvent::MemberDrained { uid } => write!(f, "member {uid} drained"),
            TraceEvent::MemberCrashed { uid } => write!(f, "member {uid} crashed"),
            TraceEvent::SentinelElected { uid, epoch } => {
                write!(f, "sentinel elected: member {uid} (epoch {epoch})")
            }
            TraceEvent::ScaleDecision { pool_size, delta } => {
                write!(f, "scale decision at size {pool_size}: delta {delta:+}")
            }
            TraceEvent::RequestExecuted {
                uid,
                invocation,
                queued_for,
                ran_for,
            } => write!(
                f,
                "member {uid} executed inv {invocation} (queued {queued_for}, ran {ran_for})"
            ),
            TraceEvent::RuleFired {
                rule,
                observed_milli,
                threshold_milli,
            } => write!(
                f,
                "rule {rule} fired ({observed_milli} vs threshold {threshold_milli}, milli-units)"
            ),
            TraceEvent::OfferRequested { request_id, count } => {
                write!(f, "offer {request_id} requested for {count} slice(s)")
            }
            TraceEvent::OfferOutcome {
                request_id,
                granted,
                requested,
            } => write!(
                f,
                "offer {request_id} resolved: {granted}/{requested} granted"
            ),
        }
    }
}

/// A [`TraceEvent`] with the time it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event happened, on the emitting component's clock.
    pub at: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.at, self.event)
    }
}

/// A bounded, thread-safe ring buffer of trace records.
///
/// When full, the oldest records are evicted (and counted in
/// [`TraceSink::dropped`]) so a long-running pool can keep tracing without
/// unbounded memory growth.
///
/// # Example
///
/// ```
/// use erm_metrics::{TraceEvent, TraceSink};
/// use erm_sim::SimTime;
///
/// let sink = TraceSink::new(128);
/// sink.record(SimTime::from_secs(1), TraceEvent::MemberJoined { uid: 0 });
/// assert_eq!(sink.snapshot().len(), 1);
/// ```
#[derive(Debug)]
pub struct TraceSink {
    buf: Mutex<Ring>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct Ring {
    records: VecDeque<TraceRecord>,
    dropped: u64,
    drop_warned: bool,
}

impl TraceSink {
    /// Creates a sink holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        TraceSink {
            buf: Mutex::new(Ring::default()),
            capacity: capacity.max(1),
        }
    }

    // A panicking emitter must not poison tracing for every other component
    // that shares the sink: recover the (always-consistent) ring state.
    fn ring(&self) -> std::sync::MutexGuard<'_, Ring> {
        self.buf.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends a record, evicting the oldest when full. The first eviction
    /// warns on stderr once, so a truncated trace is never silently mistaken
    /// for a complete one.
    pub fn record(&self, at: SimTime, event: TraceEvent) {
        let mut ring = self.ring();
        if ring.records.len() == self.capacity {
            ring.records.pop_front();
            ring.dropped += 1;
            if !ring.drop_warned {
                ring.drop_warned = true;
                eprintln!(
                    "warning: trace ring full at {} records; oldest events are being dropped \
                     (the trace is now truncated — see TraceSink::dropped())",
                    self.capacity
                );
            }
        }
        ring.records.push_back(TraceRecord { at, event });
    }

    /// A copy of the retained records, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.ring().records.iter().cloned().collect()
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.ring().records.len()
    }

    /// Whether nothing has been recorded (or everything was cleared).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring().dropped
    }

    /// Discards all retained records (the dropped counter is kept).
    pub fn clear(&self) {
        self.ring().records.clear();
    }

    /// Renders the retained records one per line, for experiment dumps.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for record in self.snapshot() {
            out.push_str(&record.to_string());
            out.push('\n');
        }
        out
    }
}

/// A cheap, cloneable handle components emit through: either disabled (the
/// default — every emit is a no-op) or backed by a shared [`TraceSink`].
#[derive(Debug, Clone, Default)]
pub struct TraceHandle {
    sink: Option<Arc<TraceSink>>,
}

impl TraceHandle {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        TraceHandle::default()
    }

    /// A handle backed by `sink`.
    pub fn new(sink: Arc<TraceSink>) -> Self {
        TraceHandle { sink: Some(sink) }
    }

    /// Creates a sink of `capacity` records and a handle onto it.
    pub fn buffered(capacity: usize) -> (Self, Arc<TraceSink>) {
        let sink = Arc::new(TraceSink::new(capacity));
        (TraceHandle::new(Arc::clone(&sink)), sink)
    }

    /// Whether emits reach a sink.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records `event` at time `at`, if enabled.
    pub fn emit(&self, at: SimTime, event: TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.record(at, event);
        }
    }

    /// The retained records, oldest first (empty when disabled).
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.sink.as_ref().map_or_else(Vec::new, |s| s.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_retains_in_order() {
        let sink = TraceSink::new(16);
        for uid in 0..4 {
            sink.record(SimTime::from_secs(uid), TraceEvent::MemberJoined { uid });
        }
        let records = sink.snapshot();
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].event, TraceEvent::MemberJoined { uid: 0 });
        assert_eq!(records[3].event, TraceEvent::MemberJoined { uid: 3 });
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let sink = TraceSink::new(2);
        for uid in 0..5 {
            sink.record(SimTime::ZERO, TraceEvent::MemberJoined { uid });
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
        let records = sink.snapshot();
        assert_eq!(records[0].event, TraceEvent::MemberJoined { uid: 3 });
        assert_eq!(records[1].event, TraceEvent::MemberJoined { uid: 4 });
    }

    #[test]
    fn disabled_handle_is_a_no_op() {
        let handle = TraceHandle::disabled();
        assert!(!handle.is_enabled());
        handle.emit(SimTime::ZERO, TraceEvent::MemberJoined { uid: 1 });
        assert!(handle.snapshot().is_empty());
    }

    #[test]
    fn enabled_handle_shares_the_sink() {
        let (handle, sink) = TraceHandle::buffered(8);
        let clone = handle.clone();
        clone.emit(
            SimTime::from_secs(2),
            TraceEvent::ScaleDecision {
                pool_size: 4,
                delta: 2,
            },
        );
        assert_eq!(sink.len(), 1);
        assert_eq!(handle.snapshot(), sink.snapshot());
    }

    #[test]
    fn dump_is_one_line_per_record() {
        let sink = TraceSink::new(8);
        sink.record(SimTime::from_secs(1), TraceEvent::MemberJoined { uid: 7 });
        sink.record(
            SimTime::from_secs(2),
            TraceEvent::ScaleDecision {
                pool_size: 1,
                delta: -1,
            },
        );
        let dump = sink.dump();
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.contains("member 7 joined"));
        assert!(dump.contains("delta -1"));
    }

    #[test]
    fn poisoned_sink_keeps_working() {
        let sink = Arc::new(TraceSink::new(8));
        sink.record(SimTime::ZERO, TraceEvent::MemberJoined { uid: 0 });
        // Poison the mutex by panicking while holding it.
        let poisoner = Arc::clone(&sink);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.buf.lock().unwrap();
            panic!("emitter panicked mid-record");
        })
        .join();
        // Every accessor recovers instead of cascading the panic.
        sink.record(SimTime::ZERO, TraceEvent::MemberJoined { uid: 1 });
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 0);
        assert_eq!(sink.snapshot().len(), 2);
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn clear_keeps_dropped_counter() {
        let sink = TraceSink::new(1);
        sink.record(SimTime::ZERO, TraceEvent::MemberJoined { uid: 0 });
        sink.record(SimTime::ZERO, TraceEvent::MemberJoined { uid: 1 });
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 1);
    }
}
