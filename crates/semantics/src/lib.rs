//! Invocation semantics for elastic object pools (wire v4).
//!
//! The pipelined stub retries aggressively — fast-failover on
//! `ConnectionClosed`, jittered backoff after timeouts, redirect splicing —
//! so a non-idempotent method can execute twice whenever a *reply* is lost
//! after the *request* landed. That is fine for echo and fatal for order
//! routing. This crate supplies the two pieces that turn retries into a
//! correctness feature instead of a hazard:
//!
//! - a per-method **semantics menu** ([`Semantics`], [`SemanticsTable`]):
//!   `AtMostOnce` / `AtLeastOnce` (the pre-v4 behavior) / `Maybe`, declared
//!   where methods are registered and carried on the wire inside the
//!   invocation context so every hop (stub, sentinel redirect, skeleton)
//!   agrees on the contract; and
//! - a per-skeleton **reply cache** ([`ReplyCache`]) keyed by
//!   `(origin, invocation id)` that records in-progress and completed
//!   invocations. Duplicate attempts of a completed invocation replay the
//!   cached reply; duplicates of an in-flight one park and are answered when
//!   the first execution finishes. Either way the duplicate never occupies a
//!   run-queue slot.
//!
//! The cache is deliberately boring where it matters: entries expire
//! deterministically on the injected clock (TTL = the invocation's deadline
//! plus a grace window), memory is bounded by an entry cap *and* a byte cap
//! with LRU eviction (evictions are counted, never silent), and entries are
//! tagged with the membership epoch they were created in so churn-era
//! suppression remains observable after a crash-recovery re-election.
//!
//! The crate is dependency-light on purpose: it knows about simulated time
//! (`erm-sim`) and endpoint identity (`erm-transport`) but **not** about the
//! RMI message or error types — the cached reply is a caller-chosen generic
//! `R`, so `elasticrmi` caches `Result<Vec<u8>, RemoteError>` without a
//! dependency cycle.

use std::collections::{BTreeMap, BTreeSet};

use erm_sim::SimTime;
use erm_transport::EndpointId;
use serde::{Deserialize, Serialize};

/// What the middleware guarantees about how many times one logical
/// invocation runs, regardless of how many wire attempts it took.
///
/// Encoded on the wire (v4) as a u32 enum index inside the invocation
/// context; the order of variants is therefore append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Semantics {
    /// The method executes **at most one** time. The stub commits to the
    /// first member a request was delivered to and re-asks *that* member on
    /// silence (timeout / broken connection); the skeleton's reply cache
    /// suppresses the duplicates, replaying the reply if the first attempt
    /// already ran. Explicit refusals (`Redirected`, `Overloaded`) prove the
    /// request never executed, so failover to another member stays legal.
    AtMostOnce,
    /// The pre-v4 contract: retry anywhere until the deadline. Lost replies
    /// can re-execute the method, so it must be idempotent.
    AtLeastOnce,
    /// Best effort: one wire attempt, no retransmission ever. Zero or one
    /// executions; any silence or refusal after the send is a client error.
    Maybe,
}

impl Default for Semantics {
    /// `AtLeastOnce` is the default because it is exactly the behavior every
    /// existing method was written against.
    fn default() -> Self {
        Semantics::AtLeastOnce
    }
}

impl Semantics {
    /// Stable wire index (u32 LE on the wire, append-only).
    pub fn wire_index(self) -> u32 {
        match self {
            Semantics::AtMostOnce => 0,
            Semantics::AtLeastOnce => 1,
            Semantics::Maybe => 2,
        }
    }

    /// Human name used in reports and docs.
    pub fn name(self) -> &'static str {
        match self {
            Semantics::AtMostOnce => "at-most-once",
            Semantics::AtLeastOnce => "at-least-once",
            Semantics::Maybe => "maybe",
        }
    }
}

/// Per-method semantics declarations: a default plus per-method overrides.
///
/// Declared once (alongside the method registry / pool config) and consulted
/// by the stub when it opens an invocation; the chosen [`Semantics`] then
/// rides inside the invocation context so skeletons never have to guess.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SemanticsTable {
    default: Semantics,
    methods: BTreeMap<String, Semantics>,
}

impl SemanticsTable {
    /// All methods `AtLeastOnce` — the pre-v4 world.
    pub fn new() -> Self {
        Self::default()
    }

    /// Change the fallback used for methods without an explicit entry.
    pub fn with_default(mut self, semantics: Semantics) -> Self {
        self.default = semantics;
        self
    }

    /// Declare one method's semantics (builder-style).
    pub fn method(mut self, name: impl Into<String>, semantics: Semantics) -> Self {
        self.methods.insert(name.into(), semantics);
        self
    }

    /// The semantics a given method was declared with.
    pub fn semantics_for(&self, method: &str) -> Semantics {
        self.methods.get(method).copied().unwrap_or(self.default)
    }

    /// Iterate declared overrides (for docs/report rendering).
    pub fn overrides(&self) -> impl Iterator<Item = (&str, Semantics)> {
        self.methods.iter().map(|(m, s)| (m.as_str(), *s))
    }
}

/// Tuning for one skeleton's [`ReplyCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplyCacheConfig {
    /// How long a completed reply outlives the invocation's deadline. The
    /// deadline itself bounds how late a duplicate can still be admitted, so
    /// a small grace window is enough to cover clock skew between the last
    /// admissible duplicate and the expiry sweep.
    pub grace: erm_sim::SimDuration,
    /// Maximum number of cache entries (in-progress + completed).
    pub max_entries: usize,
    /// Maximum bytes of cached reply payloads. In-progress entries count 0;
    /// completed entries count the caller-reported reply size.
    pub max_bytes: usize,
}

impl Default for ReplyCacheConfig {
    fn default() -> Self {
        Self {
            grace: erm_sim::SimDuration::from_millis(1_000),
            max_entries: 1_024,
            max_bytes: 1 << 20,
        }
    }
}

/// A duplicate attempt that arrived while the first execution was still in
/// flight. Answered (with the cached reply) when the execution completes or
/// aborts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParkedAttempt {
    /// Who to answer.
    pub from: EndpointId,
    /// The wire call id of the *duplicate* attempt — replies must echo the
    /// attempt's own call id or the stub will drop them as stale.
    pub call: u64,
}

/// Outcome of consulting the cache for an arriving attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup<R> {
    /// No live entry: this is new work. Admit it, and on successful
    /// admission call [`ReplyCache::begin`].
    Miss,
    /// The invocation is executing (or queued) right now; the attempt was
    /// parked and will be answered on completion.
    Parked,
    /// The invocation already completed; replay this cached reply.
    Replay(R),
}

/// Counters for one cache. Monotonic over the cache's lifetime (epoch
/// changes never reset them — suppression stats survive re-election).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DedupStats {
    /// Duplicate attempts suppressed (parked + replayed).
    pub hits: u64,
    /// Cached replies sent in place of a re-execution (immediate replays
    /// plus parked attempts answered at completion).
    pub replayed: u64,
    /// Attempts parked against an in-flight execution.
    pub parked: u64,
    /// Entries evicted by the LRU/byte bound (never silently).
    pub evicted: u64,
    /// Entries removed by deterministic TTL expiry.
    pub expired: u64,
    /// Live entries created in an earlier membership epoch than the current
    /// one (they stay valid — at-most-once is a per-invocation contract, not
    /// a per-epoch one — but churn-era carryover stays observable).
    pub epoch_carryover: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    origin: EndpointId,
    invocation: u64,
}

#[derive(Debug)]
enum State<R> {
    InProgress { parked: Vec<ParkedAttempt> },
    Completed { reply: R, bytes: usize },
}

#[derive(Debug)]
struct Entry<R> {
    state: State<R>,
    /// Deterministic TTL: invocation deadline + grace.
    expires: SimTime,
    /// Membership epoch the entry was created in.
    epoch: u64,
    /// LRU tick of the last touch.
    touched: u64,
}

/// Per-skeleton duplicate-suppression cache keyed by `(origin, invocation)`.
///
/// Bounded (entry cap + byte cap, LRU eviction of *completed* entries only —
/// evicting an in-progress entry would orphan parked attempts), with
/// deterministic expiry on the injected clock. Generic over the cached reply
/// type `R` so the RMI layer can cache its own outcome type without a
/// dependency cycle.
#[derive(Debug)]
pub struct ReplyCache<R> {
    config: ReplyCacheConfig,
    entries: BTreeMap<Key, Entry<R>>,
    /// LRU index: touch tick → key. Ticks are unique (monotone counter).
    lru: BTreeMap<u64, Key>,
    /// Expiry index so the per-request TTL sweep is O(expired), not O(live).
    expiry: BTreeSet<(SimTime, Key)>,
    tick: u64,
    bytes: usize,
    epoch: u64,
    stats: DedupStats,
}

impl<R: Clone> ReplyCache<R> {
    pub fn new(config: ReplyCacheConfig) -> Self {
        Self {
            config,
            entries: BTreeMap::new(),
            lru: BTreeMap::new(),
            expiry: BTreeSet::new(),
            tick: 0,
            bytes: 0,
            epoch: 0,
            stats: DedupStats::default(),
        }
    }

    /// Live entries (in-progress + completed).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes of cached reply payloads currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    pub fn stats(&self) -> DedupStats {
        self.stats
    }

    /// Record a membership-epoch advance (re-election, join/leave
    /// broadcast). Existing entries stay valid — the at-most-once contract
    /// is per invocation, not per epoch — but entries from older epochs are
    /// counted so churn-era suppression stays visible in reports.
    pub fn set_epoch(&mut self, epoch: u64) {
        if epoch > self.epoch {
            self.epoch = epoch;
            self.stats.epoch_carryover +=
                self.entries.values().filter(|e| e.epoch < epoch).count() as u64;
        }
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Consult the cache for an arriving attempt. Called *before* admission:
    /// a suppressed duplicate must never occupy a run-queue slot.
    ///
    /// `Miss` performs no mutation beyond the expiry check — record the
    /// in-progress entry with [`begin`](Self::begin) only once admission
    /// actually accepted the request.
    pub fn lookup(
        &mut self,
        origin: EndpointId,
        invocation: u64,
        from: EndpointId,
        call: u64,
        now: SimTime,
    ) -> Lookup<R> {
        let key = Key { origin, invocation };
        // Lazily drop an expired entry rather than replaying stale state.
        if self.entries.get(&key).is_some_and(|e| e.expires <= now) {
            self.remove(key);
            self.stats.expired += 1;
        }
        let tick = self.next_tick();
        let Some(entry) = self.entries.get_mut(&key) else {
            return Lookup::Miss;
        };
        self.lru.remove(&entry.touched);
        entry.touched = tick;
        self.lru.insert(tick, key);
        self.stats.hits += 1;
        match &mut entry.state {
            State::InProgress { parked } => {
                parked.push(ParkedAttempt { from, call });
                self.stats.parked += 1;
                Lookup::Parked
            }
            State::Completed { reply, .. } => {
                self.stats.replayed += 1;
                Lookup::Replay(reply.clone())
            }
        }
    }

    /// Record that an admitted invocation is now in flight. TTL is the
    /// invocation's own deadline plus the configured grace window, so the
    /// entry outlives every attempt the stub could still legally send.
    pub fn begin(&mut self, origin: EndpointId, invocation: u64, deadline: SimTime) {
        let key = Key { origin, invocation };
        let tick = self.next_tick();
        self.remove(key); // defensive: begin twice must not leak an LRU slot
        let expires = deadline + self.config.grace;
        self.entries.insert(
            key,
            Entry {
                state: State::InProgress { parked: Vec::new() },
                expires,
                epoch: self.epoch,
                touched: tick,
            },
        );
        self.lru.insert(tick, key);
        self.expiry.insert((expires, key));
        self.enforce_bounds();
    }

    /// The first execution finished: cache the reply for future duplicates
    /// and return every attempt that parked while it ran (each must be
    /// answered with this same reply under its own call id).
    ///
    /// `bytes` is the caller-reported payload size charged against the byte
    /// cap. No-op (returning no waiters) if the entry expired or was evicted
    /// while the request sat in the run queue.
    pub fn complete(
        &mut self,
        origin: EndpointId,
        invocation: u64,
        reply: R,
        bytes: usize,
    ) -> Vec<ParkedAttempt> {
        let key = Key { origin, invocation };
        let Some(entry) = self.entries.get_mut(&key) else {
            return Vec::new();
        };
        let waiters = match std::mem::replace(&mut entry.state, State::Completed { reply, bytes }) {
            State::InProgress { parked } => parked,
            State::Completed { bytes: old, .. } => {
                // Re-completing (shouldn't happen) must not double-charge.
                self.bytes = self.bytes.saturating_sub(old);
                Vec::new()
            }
        };
        self.bytes += bytes;
        self.stats.replayed += waiters.len() as u64;
        self.enforce_bounds();
        waiters
    }

    /// The in-progress execution was abandoned before it produced a reply
    /// (culled at its deadline, shed during drain, crashed member). Drops
    /// the entry and returns the parked attempts so the caller can answer
    /// them with the same failure it gave the original. A later retry is
    /// admitted as new work — which is safe precisely because the original
    /// never executed.
    pub fn abort(&mut self, origin: EndpointId, invocation: u64) -> Vec<ParkedAttempt> {
        let key = Key { origin, invocation };
        match self.remove(key) {
            Some(Entry {
                state: State::InProgress { parked },
                ..
            }) => parked,
            Some(completed) => {
                // Aborting a completed entry would forget a reply that a
                // duplicate may still need; put it back untouched (same
                // expiry and epoch, fresh LRU tick).
                let tick = self.next_tick();
                if let State::Completed { bytes, .. } = &completed.state {
                    self.bytes += bytes;
                }
                self.expiry.insert((completed.expires, key));
                self.entries.insert(
                    key,
                    Entry {
                        touched: tick,
                        ..completed
                    },
                );
                self.lru.insert(tick, key);
                Vec::new()
            }
            None => Vec::new(),
        }
    }

    /// Deterministic TTL sweep on the injected clock: remove every entry
    /// whose `deadline + grace` has passed. Returns how many were removed.
    /// O(expired) via the expiry index, so it is safe on the request path.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let dead: Vec<Key> = self
            .expiry
            .iter()
            .take_while(|(expires, _)| *expires <= now)
            .map(|(_, k)| *k)
            .collect();
        let n = dead.len();
        for key in dead {
            self.remove(key);
        }
        self.stats.expired += n as u64;
        n
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn remove(&mut self, key: Key) -> Option<Entry<R>> {
        let entry = self.entries.remove(&key)?;
        self.lru.remove(&entry.touched);
        self.expiry.remove(&(entry.expires, key));
        if let State::Completed { bytes, .. } = &entry.state {
            self.bytes = self.bytes.saturating_sub(*bytes);
        }
        Some(entry)
    }

    /// LRU eviction down to the entry and byte caps. Only *completed*
    /// entries are evictable: evicting an in-progress entry would orphan its
    /// parked attempts and re-admit a live duplicate. Every eviction is
    /// counted in [`DedupStats::evicted`].
    fn enforce_bounds(&mut self) {
        while self.entries.len() > self.config.max_entries || self.bytes > self.config.max_bytes {
            let victim = self
                .lru
                .values()
                .copied()
                .find(|k| matches!(self.entries[k].state, State::Completed { .. }));
            match victim {
                Some(key) => {
                    self.remove(key);
                    self.stats.evicted += 1;
                }
                // Nothing evictable (all in-progress): the entry cap yields
                // rather than break the at-most-once contract.
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erm_sim::SimDuration;

    const GRACE: SimDuration = SimDuration::from_millis(1_000);

    fn cache(max_entries: usize, max_bytes: usize) -> ReplyCache<&'static str> {
        ReplyCache::new(ReplyCacheConfig {
            grace: GRACE,
            max_entries,
            max_bytes,
        })
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    const ORIGIN: EndpointId = EndpointId(500);
    const FROM: EndpointId = EndpointId(501);

    #[test]
    fn menu_defaults_to_at_least_once() {
        let table = SemanticsTable::new().method("route", Semantics::AtMostOnce);
        assert_eq!(table.semantics_for("route"), Semantics::AtMostOnce);
        assert_eq!(table.semantics_for("echo"), Semantics::AtLeastOnce);
        let maybe_all = SemanticsTable::new().with_default(Semantics::Maybe);
        assert_eq!(maybe_all.semantics_for("anything"), Semantics::Maybe);
    }

    #[test]
    fn miss_then_park_then_replay() {
        let mut c = cache(8, 1 << 20);
        assert_eq!(c.lookup(ORIGIN, 1, FROM, 10, t(0)), Lookup::Miss);
        c.begin(ORIGIN, 1, t(400));
        // Attempt 2 while attempt 1 is queued: parked, not re-admitted.
        assert_eq!(c.lookup(ORIGIN, 1, FROM, 11, t(10)), Lookup::Parked);
        let waiters = c.complete(ORIGIN, 1, "ok", 2);
        assert_eq!(
            waiters,
            vec![ParkedAttempt {
                from: FROM,
                call: 11
            }]
        );
        // Attempt 3 after completion: replayed from cache.
        assert_eq!(c.lookup(ORIGIN, 1, FROM, 12, t(20)), Lookup::Replay("ok"));
        let s = c.stats();
        assert_eq!((s.hits, s.parked, s.replayed), (2, 1, 2));
    }

    #[test]
    fn entries_expire_at_deadline_plus_grace() {
        let mut c = cache(8, 1 << 20);
        c.begin(ORIGIN, 1, t(400));
        c.complete(ORIGIN, 1, "ok", 2);
        // One micro before expiry the reply is still replayable.
        assert_eq!(c.expire(t(1_400) - SimDuration::from_micros(1)), 0);
        assert_eq!(c.expire(t(1_400)), 1);
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
        // A post-expiry duplicate is new work (admission will reject it as
        // past its deadline anyway).
        assert_eq!(c.lookup(ORIGIN, 1, FROM, 13, t(1_401)), Lookup::Miss);
        assert_eq!(c.stats().expired, 1);
    }

    #[test]
    fn lookup_lazily_expires() {
        let mut c = cache(8, 1 << 20);
        c.begin(ORIGIN, 1, t(400));
        c.complete(ORIGIN, 1, "stale", 5);
        assert_eq!(c.lookup(ORIGIN, 1, FROM, 10, t(2_000)), Lookup::Miss);
        assert_eq!(c.stats().expired, 1);
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn lru_evicts_completed_only_and_counts() {
        let mut c = cache(2, 1 << 20);
        c.begin(ORIGIN, 1, t(400));
        c.complete(ORIGIN, 1, "a", 1);
        c.begin(ORIGIN, 2, t(400)); // in progress — not evictable
        c.begin(ORIGIN, 3, t(400)); // over the cap: evicts completed #1
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evicted, 1);
        assert_eq!(c.lookup(ORIGIN, 1, FROM, 10, t(10)), Lookup::Miss);
        assert_eq!(c.lookup(ORIGIN, 2, FROM, 11, t(10)), Lookup::Parked);
        assert_eq!(c.lookup(ORIGIN, 3, FROM, 12, t(10)), Lookup::Parked);
        // All remaining entries are in-progress: the cap yields instead of
        // orphaning parked attempts.
        c.begin(ORIGIN, 4, t(400));
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().evicted, 1);
    }

    #[test]
    fn byte_cap_evicts_lru_first() {
        let mut c = cache(64, 10);
        for inv in 1..=3u64 {
            c.begin(ORIGIN, inv, t(400));
            c.complete(ORIGIN, inv, "x", 4);
        }
        // 12 bytes > 10: the least-recently-touched entry (#1) goes.
        assert_eq!(c.bytes(), 8);
        assert_eq!(c.stats().evicted, 1);
        assert_eq!(c.lookup(ORIGIN, 1, FROM, 10, t(10)), Lookup::Miss);
        assert_eq!(c.lookup(ORIGIN, 2, FROM, 11, t(10)), Lookup::Replay("x"));
    }

    #[test]
    fn replay_touches_lru_order() {
        let mut c = cache(2, 1 << 20);
        c.begin(ORIGIN, 1, t(400));
        c.complete(ORIGIN, 1, "a", 1);
        c.begin(ORIGIN, 2, t(400));
        c.complete(ORIGIN, 2, "b", 1);
        // Touch #1 so #2 becomes the LRU victim.
        assert_eq!(c.lookup(ORIGIN, 1, FROM, 10, t(10)), Lookup::Replay("a"));
        c.begin(ORIGIN, 3, t(400));
        assert_eq!(c.lookup(ORIGIN, 2, FROM, 11, t(10)), Lookup::Miss);
        assert_eq!(c.lookup(ORIGIN, 1, FROM, 12, t(10)), Lookup::Replay("a"));
    }

    #[test]
    fn abort_returns_waiters_and_forgets_entry() {
        let mut c = cache(8, 1 << 20);
        c.begin(ORIGIN, 1, t(400));
        assert_eq!(c.lookup(ORIGIN, 1, FROM, 10, t(5)), Lookup::Parked);
        let waiters = c.abort(ORIGIN, 1);
        assert_eq!(
            waiters,
            vec![ParkedAttempt {
                from: FROM,
                call: 10
            }]
        );
        // The original never executed, so a retry is legitimately new work.
        assert_eq!(c.lookup(ORIGIN, 1, FROM, 11, t(6)), Lookup::Miss);
    }

    #[test]
    fn epoch_carryover_counts_surviving_entries() {
        let mut c = cache(8, 1 << 20);
        c.begin(ORIGIN, 1, t(400));
        c.complete(ORIGIN, 1, "ok", 2);
        c.begin(ORIGIN, 2, t(400));
        c.set_epoch(3);
        assert_eq!(c.stats().epoch_carryover, 2);
        // Entries survive the epoch change: replay still works and stats
        // are monotonic (nothing reset by re-election).
        assert_eq!(c.lookup(ORIGIN, 1, FROM, 10, t(10)), Lookup::Replay("ok"));
        // Stale epoch broadcasts are ignored.
        c.set_epoch(2);
        assert_eq!(c.epoch(), 3);
        assert_eq!(c.stats().epoch_carryover, 2);
    }

    #[test]
    fn distinct_origins_do_not_collide() {
        let mut c = cache(8, 1 << 20);
        c.begin(ORIGIN, 1, t(400));
        c.complete(ORIGIN, 1, "a", 1);
        assert_eq!(
            c.lookup(EndpointId(900), 1, FROM, 10, t(10)),
            Lookup::Miss,
            "same invocation id from another origin is different work"
        );
    }
}
