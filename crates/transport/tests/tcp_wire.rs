//! Wire-level tests for the TCP transport: golden frame bytes on a real
//! socket, reassembly of split/partial frames, coalesced batches, and
//! reconnect after the peer closes the connection.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use erm_transport::{EndpointId, Network, TcpHost};

/// Fixed frame part after the length word: from + to + addr_len.
const FRAME_FIXED: usize = 18;

/// Hand-encodes a frame exactly as the transport specifies it.
fn golden_frame(from: u64, to: u64, addr: &str, payload: &[u8]) -> Vec<u8> {
    let len = (FRAME_FIXED + addr.len() + payload.len()) as u32;
    let mut frame = Vec::new();
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&from.to_le_bytes());
    frame.extend_from_slice(&to.to_le_bytes());
    frame.extend_from_slice(&(addr.len() as u16).to_le_bytes());
    frame.extend_from_slice(addr.as_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Reads one frame off a raw socket, returning `(from, to, addr, payload)`.
fn read_frame(stream: &mut TcpStream) -> std::io::Result<(u64, u64, String, Vec<u8>)> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    assert!(len >= FRAME_FIXED, "malformed frame: len {len}");
    let mut frame = vec![0u8; len];
    stream.read_exact(&mut frame)?;
    let from = u64::from_le_bytes(frame[0..8].try_into().unwrap());
    let to = u64::from_le_bytes(frame[8..16].try_into().unwrap());
    let addr_len = u16::from_le_bytes(frame[16..18].try_into().unwrap()) as usize;
    let addr = String::from_utf8(frame[18..18 + addr_len].to_vec()).unwrap();
    let payload = frame[18 + addr_len..].to_vec();
    Ok((from, to, addr, payload))
}

/// Accepts one connection within `timeout` (the listener is non-blocking so
/// a hung test fails instead of wedging).
fn accept_within(listener: &TcpListener, timeout: Duration) -> TcpStream {
    let deadline = Instant::now() + timeout;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(5)))
                    .unwrap();
                return stream;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                assert!(
                    Instant::now() < deadline,
                    "no connection within {timeout:?}"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => panic!("accept failed: {e}"),
        }
    }
}

#[test]
fn golden_frame_bytes_on_the_wire() {
    // A raw listener stands in for the peer so the exact bytes the host
    // writes are observable.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.set_nonblocking(true).unwrap();
    let peer_addr: SocketAddr = listener.local_addr().unwrap();

    let host = TcpHost::bind("127.0.0.1:0", 3).unwrap();
    let (from, _mail) = host.open_endpoint();
    assert_eq!(from, EndpointId(3 << 32), "first endpoint of host 3");
    let to = EndpointId((7 << 32) | 5);
    host.register_peer(to, peer_addr);
    host.send(from, to, b"hello elastic".to_vec()).unwrap();

    let mut conn = accept_within(&listener, Duration::from_secs(5));
    let expected = golden_frame(
        3 << 32,
        (7 << 32) | 5,
        &host.local_addr().to_string(),
        b"hello elastic",
    );
    let mut got = vec![0u8; expected.len()];
    conn.read_exact(&mut got).unwrap();
    assert_eq!(
        got, expected,
        "frame layout is pinned: any change is a wire break"
    );

    // An empty payload is legal and still carries the advertised address.
    host.send(from, to, Vec::new()).unwrap();
    let (f, t, addr, payload) = read_frame(&mut conn).unwrap();
    assert_eq!((f, t), (3 << 32, (7 << 32) | 5));
    assert_eq!(addr, host.local_addr().to_string());
    assert!(payload.is_empty());
}

#[test]
fn split_frames_reassemble_across_short_reads_and_writes() {
    // A raw client dribbles frames at the host byte by byte (worst-case
    // short writes); the framing layer must reassemble them exactly.
    let host = TcpHost::bind("127.0.0.1:0", 0).unwrap();
    let (dest, mailbox) = host.open_endpoint();

    let mut conn = TcpStream::connect(host.local_addr()).unwrap();
    let frame = golden_frame(9 << 32, dest.0, "127.0.0.1:9999", b"split me");
    for chunk in frame.chunks(1) {
        conn.write_all(chunk).unwrap();
        conn.flush().unwrap();
    }
    let got = mailbox.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(got.from, EndpointId(9 << 32));
    assert_eq!(got.payload, b"split me");

    // Two frames coalesced into one write (what a batching sender emits)
    // must come out as two datagrams.
    let mut batch = golden_frame(9 << 32, dest.0, "", b"first");
    batch.extend_from_slice(&golden_frame(9 << 32, dest.0, "", b"second"));
    conn.write_all(&batch).unwrap();
    assert_eq!(
        mailbox
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .payload,
        b"first"
    );
    assert_eq!(
        mailbox
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .payload,
        b"second"
    );

    // A frame split mid-header across two writes with a pause in between.
    let frame = golden_frame(9 << 32, dest.0, "", b"mid-header split");
    conn.write_all(&frame[..10]).unwrap();
    conn.flush().unwrap();
    std::thread::sleep(Duration::from_millis(20));
    conn.write_all(&frame[10..]).unwrap();
    assert_eq!(
        mailbox
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .payload,
        b"mid-header split"
    );
}

#[test]
fn inbound_frames_teach_the_reply_route() {
    // The advertised address in a frame is enough for the receiving host to
    // route a reply — no register_peer in the reverse direction.
    let server = TcpHost::bind("127.0.0.1:0", 0).unwrap();
    let client = TcpHost::bind("127.0.0.1:0", 1).unwrap();
    let (s, server_mail) = server.open_endpoint();
    let (c, client_mail) = client.open_endpoint();
    client.register_host(0, server.local_addr());

    client.send(c, s, b"request".to_vec()).unwrap();
    let req = server_mail.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(req.payload, b"request");
    // The server never registered the client; the frame taught it.
    server.send(s, req.from, b"reply".to_vec()).unwrap();
    assert_eq!(
        client_mail
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .payload,
        b"reply"
    );
}

#[test]
fn reconnect_after_peer_close_delivers_later_frames() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.set_nonblocking(true).unwrap();
    let peer_addr = listener.local_addr().unwrap();

    let host = TcpHost::bind("127.0.0.1:0", 0).unwrap();
    let (from, _mail) = host.open_endpoint();
    let to = EndpointId(5 << 32);
    host.register_peer(to, peer_addr);

    // First connection: receive one frame, then slam the door.
    host.send(from, to, 0u64.to_le_bytes().to_vec()).unwrap();
    {
        let mut conn = accept_within(&listener, Duration::from_secs(5));
        let (_, _, _, payload) = read_frame(&mut conn).unwrap();
        assert_eq!(payload, 0u64.to_le_bytes());
        // Dropping conn closes it; the host's cached connection is now dead.
    }

    // Keep sending until a frame arrives on a *new* connection. The first
    // few sends may be swallowed by the dead socket's buffer (datagram
    // semantics permit loss); what matters is that the writer reconnects
    // and later frames flow again.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut seq = 1u64;
    let received = loop {
        assert!(Instant::now() < deadline, "writer never reconnected");
        host.send(from, to, seq.to_le_bytes().to_vec()).unwrap();
        seq += 1;
        match listener.accept() {
            Ok((mut conn, _)) => {
                conn.set_nonblocking(false).unwrap();
                conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
                let (_, _, _, payload) = read_frame(&mut conn).unwrap();
                break u64::from_le_bytes(payload.try_into().unwrap());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("accept failed: {e}"),
        }
    };
    assert!(
        received >= 1,
        "a post-close frame arrived on the new connection"
    );
    let stats = host.stats();
    assert!(
        stats.reconnects >= 1,
        "the connection pool must have reconnected: {stats:?}"
    );
}

#[test]
fn broken_peer_turns_endpoint_open_false_and_drops_frames() {
    // Bind a listener to reserve a port, then drop it: connects now fail
    // fast, so after the writer exhausts its attempts the peer is broken.
    let dead_addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let host = TcpHost::bind("127.0.0.1:0", 0).unwrap();
    let (from, _mail) = host.open_endpoint();
    let to = EndpointId(5 << 32);
    host.register_peer(to, dead_addr);
    assert!(
        host.endpoint_open(to),
        "no traffic yet: optimistically open"
    );

    host.send(from, to, b"into the void".to_vec()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while host.endpoint_open(to) {
        assert!(
            Instant::now() < deadline,
            "writer never marked the unreachable peer broken"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(host.stats().frames_dropped >= 1);
}
