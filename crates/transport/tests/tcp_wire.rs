//! Wire-level tests for the TCP transport: golden frame bytes on a real
//! socket, reassembly of split/partial/interleaved frames under
//! pipelining, coalesced batches, and reconnect after the peer closes the
//! connection.
//!
//! All waiting goes through [`erm_transport::testutil`] — readiness
//! polling with one generous shared deadline — instead of per-call sleeps
//! and short fixed timeouts, which flaked under CI load.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Instant;

use erm_transport::testutil::{accept_ready, eventually, recv_ready, TEST_DEADLINE};
use erm_transport::{EndpointId, Network, TcpHost};

/// Fixed frame part after the length word: from + to + addr_len.
const FRAME_FIXED: usize = 18;

/// Hand-encodes a frame exactly as the transport specifies it.
fn golden_frame(from: u64, to: u64, addr: &str, payload: &[u8]) -> Vec<u8> {
    let len = (FRAME_FIXED + addr.len() + payload.len()) as u32;
    let mut frame = Vec::new();
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&from.to_le_bytes());
    frame.extend_from_slice(&to.to_le_bytes());
    frame.extend_from_slice(&(addr.len() as u16).to_le_bytes());
    frame.extend_from_slice(addr.as_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Reads one frame off a raw socket, returning `(from, to, addr, payload)`.
fn read_frame(stream: &mut TcpStream) -> std::io::Result<(u64, u64, String, Vec<u8>)> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    assert!(len >= FRAME_FIXED, "malformed frame: len {len}");
    let mut frame = vec![0u8; len];
    stream.read_exact(&mut frame)?;
    let from = u64::from_le_bytes(frame[0..8].try_into().unwrap());
    let to = u64::from_le_bytes(frame[8..16].try_into().unwrap());
    let addr_len = u16::from_le_bytes(frame[16..18].try_into().unwrap()) as usize;
    let addr = String::from_utf8(frame[18..18 + addr_len].to_vec()).unwrap();
    let payload = frame[18 + addr_len..].to_vec();
    Ok((from, to, addr, payload))
}

#[test]
fn golden_frame_bytes_on_the_wire() {
    // A raw listener stands in for the peer so the exact bytes the host
    // writes are observable.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.set_nonblocking(true).unwrap();
    let peer_addr: SocketAddr = listener.local_addr().unwrap();

    let host = TcpHost::bind("127.0.0.1:0", 3).unwrap();
    let (from, _mail) = host.open_endpoint();
    assert_eq!(from, EndpointId(3 << 32), "first endpoint of host 3");
    let to = EndpointId((7 << 32) | 5);
    host.register_peer(to, peer_addr);
    host.send(from, to, b"hello elastic".to_vec()).unwrap();

    let mut conn = accept_ready(&listener, "the host's outbound connection");
    let expected = golden_frame(
        3 << 32,
        (7 << 32) | 5,
        &host.local_addr().to_string(),
        b"hello elastic",
    );
    let mut got = vec![0u8; expected.len()];
    conn.read_exact(&mut got).unwrap();
    assert_eq!(
        got, expected,
        "frame layout is pinned: any change is a wire break"
    );

    // An empty payload is legal and still carries the advertised address.
    host.send(from, to, Vec::new()).unwrap();
    let (f, t, addr, payload) = read_frame(&mut conn).unwrap();
    assert_eq!((f, t), (3 << 32, (7 << 32) | 5));
    assert_eq!(addr, host.local_addr().to_string());
    assert!(payload.is_empty());
}

#[test]
fn pipelined_batch_keeps_exact_golden_bytes() {
    // A pipelining stub sends many frames back-to-back; the event-driven
    // writer may coalesce them into fewer socket writes. Whatever the
    // batching, the byte *stream* must equal the frames' concatenation —
    // coalescing is a syscall optimisation, never a wire format change.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.set_nonblocking(true).unwrap();
    let peer_addr: SocketAddr = listener.local_addr().unwrap();

    let host = TcpHost::bind("127.0.0.1:0", 2).unwrap();
    let (from, _mail) = host.open_endpoint();
    let to = EndpointId(6 << 32);
    host.register_peer(to, peer_addr);

    let mut expected = Vec::new();
    for call in 0..8u64 {
        let payload = format!("call-{call}").into_bytes();
        expected.extend_from_slice(&golden_frame(
            from.0,
            to.0,
            &host.local_addr().to_string(),
            &payload,
        ));
        host.send(from, to, payload).unwrap();
    }

    let mut conn = accept_ready(&listener, "the host's outbound connection");
    let mut got = vec![0u8; expected.len()];
    conn.read_exact(&mut got).unwrap();
    assert_eq!(
        got, expected,
        "a coalesced batch must be byte-identical to the frames in order"
    );
}

#[test]
fn split_frames_reassemble_across_short_reads_and_writes() {
    // A raw client dribbles frames at the host byte by byte (worst-case
    // short writes); the framing layer must reassemble them exactly.
    let host = TcpHost::bind("127.0.0.1:0", 0).unwrap();
    let (dest, mailbox) = host.open_endpoint();

    let mut conn = TcpStream::connect(host.local_addr()).unwrap();
    let frame = golden_frame(9 << 32, dest.0, "127.0.0.1:9999", b"split me");
    for chunk in frame.chunks(1) {
        conn.write_all(chunk).unwrap();
        conn.flush().unwrap();
    }
    let got = recv_ready(&mailbox, "the byte-by-byte frame");
    assert_eq!(got.from, EndpointId(9 << 32));
    assert_eq!(got.payload, b"split me");

    // Two frames coalesced into one write (what a batching sender emits)
    // must come out as two datagrams.
    let mut batch = golden_frame(9 << 32, dest.0, "", b"first");
    batch.extend_from_slice(&golden_frame(9 << 32, dest.0, "", b"second"));
    conn.write_all(&batch).unwrap();
    assert_eq!(
        recv_ready(&mailbox, "first frame of the batch").payload,
        b"first"
    );
    assert_eq!(
        recv_ready(&mailbox, "second frame of the batch").payload,
        b"second"
    );

    // A frame split mid-header across two writes with a pause in between.
    let frame = golden_frame(9 << 32, dest.0, "", b"mid-header split");
    conn.write_all(&frame[..10]).unwrap();
    conn.flush().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));
    conn.write_all(&frame[10..]).unwrap();
    assert_eq!(
        recv_ready(&mailbox, "the mid-header-split frame").payload,
        b"mid-header split"
    );
}

#[test]
fn pipelined_frames_for_many_endpoints_reassemble_from_irregular_chunks() {
    // The pipelined-stub wire shape: one connection carrying a long run of
    // frames for several destination endpoints (and from several logical
    // senders), with chunk boundaries that never line up with frame
    // boundaries. Every frame must reach its own mailbox, in stream order,
    // with sender and payload intact — that correlation is what the
    // stub's call-id map builds on.
    let host = TcpHost::bind("127.0.0.1:0", 0).unwrap();
    let (endpoints, mailboxes): (Vec<_>, Vec<_>) = (0..4).map(|_| host.open_endpoint()).unzip();

    let total = 64usize;
    let mut stream_bytes = Vec::new();
    for i in 0..total {
        let sender = (9u64 << 32) | (i as u64 % 3);
        let dest = endpoints[i % endpoints.len()];
        stream_bytes.extend_from_slice(&golden_frame(
            sender,
            dest.0,
            "",
            format!("call-{i}").as_bytes(),
        ));
    }

    // Deterministically irregular chunk sizes: 1..=23 bytes, never aligned
    // with the frame length, so every header and payload gets split.
    let mut conn = TcpStream::connect(host.local_addr()).unwrap();
    let mut off = 0usize;
    let mut step = 1usize;
    while off < stream_bytes.len() {
        let n = step.min(stream_bytes.len() - off);
        conn.write_all(&stream_bytes[off..off + n]).unwrap();
        conn.flush().unwrap();
        off += n;
        step = (step * 3 + 1) % 23 + 1;
    }

    for (k, mailbox) in mailboxes.iter().enumerate() {
        let mut i = k;
        while i < total {
            let got = recv_ready(mailbox, &format!("frame call-{i} for endpoint {k}"));
            assert_eq!(
                got.from,
                EndpointId((9u64 << 32) | (i as u64 % 3)),
                "sender survives reassembly for call-{i}"
            );
            assert_eq!(
                got.payload,
                format!("call-{i}").as_bytes(),
                "payload survives reassembly for call-{i}"
            );
            i += endpoints.len();
        }
        assert!(
            mailbox.try_recv().is_err(),
            "no extra frames invented for endpoint {k}"
        );
    }
}

#[test]
fn inbound_frames_teach_the_reply_route() {
    // The advertised address in a frame is enough for the receiving host to
    // route a reply — no register_peer in the reverse direction.
    let server = TcpHost::bind("127.0.0.1:0", 0).unwrap();
    let client = TcpHost::bind("127.0.0.1:0", 1).unwrap();
    let (s, server_mail) = server.open_endpoint();
    let (c, client_mail) = client.open_endpoint();
    client.register_host(0, server.local_addr());

    client.send(c, s, b"request".to_vec()).unwrap();
    let req = recv_ready(&server_mail, "the client's request");
    assert_eq!(req.payload, b"request");
    // The server never registered the client; the frame taught it.
    server.send(s, req.from, b"reply".to_vec()).unwrap();
    assert_eq!(
        recv_ready(&client_mail, "the reply over the learned route").payload,
        b"reply"
    );
}

#[test]
fn reconnect_after_peer_close_delivers_later_frames() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.set_nonblocking(true).unwrap();
    let peer_addr = listener.local_addr().unwrap();

    let host = TcpHost::bind("127.0.0.1:0", 0).unwrap();
    let (from, _mail) = host.open_endpoint();
    let to = EndpointId(5 << 32);
    host.register_peer(to, peer_addr);

    // First connection: receive one frame, then slam the door.
    host.send(from, to, 0u64.to_le_bytes().to_vec()).unwrap();
    {
        let mut conn = accept_ready(&listener, "the first connection");
        let (_, _, _, payload) = read_frame(&mut conn).unwrap();
        assert_eq!(payload, 0u64.to_le_bytes());
        // Dropping conn closes it; the host's cached connection is now dead.
    }

    // Keep sending until a frame arrives on a *new* connection. The first
    // few sends may be swallowed by the dead socket's buffer (datagram
    // semantics permit loss); what matters is that the writer reconnects
    // and later frames flow again.
    let deadline = Instant::now() + TEST_DEADLINE;
    let mut seq = 1u64;
    let received = loop {
        assert!(Instant::now() < deadline, "writer never reconnected");
        host.send(from, to, seq.to_le_bytes().to_vec()).unwrap();
        seq += 1;
        match listener.accept() {
            Ok((mut conn, _)) => {
                conn.set_nonblocking(false).unwrap();
                conn.set_read_timeout(Some(TEST_DEADLINE)).unwrap();
                let (_, _, _, payload) = read_frame(&mut conn).unwrap();
                break u64::from_le_bytes(payload.try_into().unwrap());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(e) => panic!("accept failed: {e}"),
        }
    };
    assert!(
        received >= 1,
        "a post-close frame arrived on the new connection"
    );
    let stats = host.stats();
    assert!(
        stats.reconnects >= 1,
        "the connection pool must have reconnected: {stats:?}"
    );
}

#[test]
fn broken_peer_turns_endpoint_open_false_and_drops_frames() {
    // Bind a listener to reserve a port, then drop it: connects now fail
    // fast, so after the writer exhausts its attempts the peer is broken.
    let dead_addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let host = TcpHost::bind("127.0.0.1:0", 0).unwrap();
    let (from, _mail) = host.open_endpoint();
    let to = EndpointId(5 << 32);
    host.register_peer(to, dead_addr);
    assert!(
        host.endpoint_open(to),
        "no traffic yet: optimistically open"
    );

    host.send(from, to, b"into the void".to_vec()).unwrap();
    eventually("the unreachable peer is marked broken", || {
        !host.endpoint_open(to)
    });
    assert!(host.stats().frames_dropped >= 1);
}
