//! In-process network with fault injection.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::endpoint::{Datagram, EndpointId, Mailbox, Network, SendError};

/// An in-process [`Network`]: endpoints are crossbeam channels inside one
/// address space. This is the transport used by the threaded runtime in
/// tests and examples, and it supports the fault injection the paper's
/// fault-tolerance story (§4.4) needs exercising against:
///
/// * closing an endpoint (a crashed JVM — senders get
///   [`SendError::Unreachable`]),
/// * cutting a directed link (messages silently lost, like a network
///   partition).
///
/// Cloning shares the network.
///
/// # Example
///
/// ```
/// use erm_transport::{InProcNetwork, Network};
///
/// let net = InProcNetwork::new();
/// let (alice, _alice_mail) = net.open_endpoint();
/// let (bob, bob_mail) = net.open_endpoint();
/// net.send(alice, bob, b"hello".to_vec()).unwrap();
/// let msg = bob_mail.try_recv().unwrap();
/// assert_eq!(msg.from, alice);
/// assert_eq!(msg.payload, b"hello");
/// ```
#[derive(Debug, Clone, Default)]
pub struct InProcNetwork {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    registry: RwLock<HashMap<EndpointId, Sender<Datagram>>>,
    cut_links: RwLock<HashSet<(EndpointId, EndpointId)>>,
    next_id: AtomicU64,
    sent: AtomicU64,
    delivered: AtomicU64,
    latency_us: AtomicU64,
    delay_queue: Mutex<BinaryHeap<DelayedDelivery>>,
    delay_signal: Condvar,
    delay_thread_running: AtomicU64,
}

#[derive(Debug)]
struct DelayedDelivery {
    due: Instant,
    seq: u64,
    to: EndpointId,
    datagram: Datagram,
}

impl PartialEq for DelayedDelivery {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for DelayedDelivery {}
impl PartialOrd for DelayedDelivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayedDelivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

impl InProcNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a new endpoint, returning its id and mailbox. Ids are assigned
    /// in increasing order, which the pool runtime relies on for sentinel
    /// election.
    pub fn open_endpoint(&self) -> (EndpointId, Mailbox) {
        let id = EndpointId(self.inner.next_id.fetch_add(1, Ordering::SeqCst));
        let (tx, rx) = unbounded();
        self.inner.registry.write().insert(id, tx);
        (id, Mailbox::new(id, rx))
    }

    /// Closes an endpoint: subsequent sends to it fail with
    /// [`SendError::Unreachable`] and its mailbox reports closed once
    /// drained. Closing an unknown endpoint is a no-op.
    pub fn close_endpoint(&self, id: EndpointId) {
        self.inner.registry.write().remove(&id);
    }

    /// Whether `id` is currently open.
    pub fn is_open(&self, id: EndpointId) -> bool {
        self.inner.registry.read().contains_key(&id)
    }

    /// Cuts (or restores) the directed link `from -> to`. While cut, sends
    /// succeed but the datagram is silently dropped — indistinguishable, to
    /// the sender, from network loss.
    pub fn set_link_cut(&self, from: EndpointId, to: EndpointId, cut: bool) {
        let mut links = self.inner.cut_links.write();
        if cut {
            links.insert((from, to));
        } else {
            links.remove(&(from, to));
        }
    }

    /// Injects a fixed one-way delivery latency on every subsequent send
    /// (zero restores immediate delivery). A background delivery thread is
    /// started on first use. Useful for exercising client timeout/retry
    /// paths under a slow network.
    pub fn set_delivery_latency(&self, latency: Duration) {
        self.inner
            .latency_us
            .store(latency.as_micros() as u64, Ordering::SeqCst);
        if !latency.is_zero() && self.inner.delay_thread_running.swap(1, Ordering::SeqCst) == 0 {
            let inner = Arc::clone(&self.inner);
            std::thread::Builder::new()
                .name("inproc-delay".to_string())
                .spawn(move || delay_loop(inner))
                .expect("spawn delay thread");
        }
    }

    /// Total accepted sends.
    pub fn sent_count(&self) -> u64 {
        self.inner.sent.load(Ordering::Relaxed)
    }

    /// Total actually delivered datagrams (excludes cut-link losses).
    pub fn delivered_count(&self) -> u64 {
        self.inner.delivered.load(Ordering::Relaxed)
    }
}

impl crate::endpoint::Host for InProcNetwork {
    fn open(&self) -> (EndpointId, Mailbox) {
        self.open_endpoint()
    }

    fn close(&self, id: EndpointId) {
        self.close_endpoint(id);
    }
}

impl Network for InProcNetwork {
    fn send(&self, from: EndpointId, to: EndpointId, payload: Vec<u8>) -> Result<(), SendError> {
        if !self.inner.registry.read().contains_key(&to) {
            return Err(SendError::Unreachable(to));
        }
        self.inner.sent.fetch_add(1, Ordering::Relaxed);
        if self.inner.cut_links.read().contains(&(from, to)) {
            return Ok(()); // silently lost
        }
        let latency_us = self.inner.latency_us.load(Ordering::SeqCst);
        if latency_us > 0 {
            let seq = self.inner.sent.load(Ordering::Relaxed);
            let mut queue = self.inner.delay_queue.lock();
            queue.push(DelayedDelivery {
                due: Instant::now() + Duration::from_micros(latency_us),
                seq,
                to,
                datagram: Datagram { from, payload },
            });
            self.inner.delay_signal.notify_one();
            return Ok(());
        }
        let registry = self.inner.registry.read();
        if let Some(tx) = registry.get(&to) {
            if tx.send(Datagram { from, payload }).is_ok() {
                self.inner.delivered.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    fn endpoint_open(&self, id: EndpointId) -> bool {
        self.is_open(id)
    }
}

fn delay_loop(inner: Arc<Inner>) {
    let mut queue = inner.delay_queue.lock();
    loop {
        let now = Instant::now();
        while queue.peek().is_some_and(|d| d.due <= now) {
            let delivery = queue.pop().expect("peeked");
            // Deliver without holding the queue lock ordering issues: the
            // registry lock is independent.
            if let Some(tx) = inner.registry.read().get(&delivery.to) {
                if tx.send(delivery.datagram).is_ok() {
                    inner.delivered.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        match queue.peek().map(|d| d.due) {
            Some(due) => {
                let wait = due.saturating_duration_since(Instant::now());
                let _ = inner
                    .delay_signal
                    .wait_for(&mut queue, wait.max(Duration::from_micros(100)));
            }
            None => {
                let _ = inner
                    .delay_signal
                    .wait_for(&mut queue, Duration::from_millis(50));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::RecvError;
    use std::time::Duration;

    #[test]
    fn send_and_receive() {
        let net = InProcNetwork::new();
        let (a, _ma) = net.open_endpoint();
        let (b, mb) = net.open_endpoint();
        net.send(a, b, vec![1, 2, 3]).unwrap();
        let got = mb.recv().unwrap();
        assert_eq!(
            got,
            Datagram {
                from: a,
                payload: vec![1, 2, 3]
            }
        );
    }

    #[test]
    fn endpoint_ids_are_monotonic() {
        let net = InProcNetwork::new();
        let ids: Vec<_> = (0..5).map(|_| net.open_endpoint().0).collect();
        for pair in ids.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn closed_endpoint_is_unreachable() {
        let net = InProcNetwork::new();
        let (a, _ma) = net.open_endpoint();
        let (b, mb) = net.open_endpoint();
        net.close_endpoint(b);
        assert!(!net.is_open(b));
        assert_eq!(net.send(a, b, vec![]), Err(SendError::Unreachable(b)));
        assert_eq!(mb.recv(), Err(RecvError::Closed));
    }

    #[test]
    fn messages_queued_before_close_are_drained() {
        let net = InProcNetwork::new();
        let (a, _ma) = net.open_endpoint();
        let (b, mb) = net.open_endpoint();
        net.send(a, b, vec![9]).unwrap();
        net.close_endpoint(b);
        assert_eq!(mb.recv().unwrap().payload, vec![9]);
        assert_eq!(mb.recv(), Err(RecvError::Closed));
    }

    #[test]
    fn cut_link_loses_messages_silently() {
        let net = InProcNetwork::new();
        let (a, _ma) = net.open_endpoint();
        let (b, mb) = net.open_endpoint();
        net.set_link_cut(a, b, true);
        net.send(a, b, vec![1]).unwrap(); // reported ok
        assert_eq!(mb.try_recv(), Err(RecvError::Timeout));
        net.set_link_cut(a, b, false);
        net.send(a, b, vec![2]).unwrap();
        assert_eq!(mb.recv().unwrap().payload, vec![2]);
        assert_eq!(net.sent_count(), 2);
        assert_eq!(net.delivered_count(), 1);
    }

    #[test]
    fn cut_link_is_directional() {
        let net = InProcNetwork::new();
        let (a, ma) = net.open_endpoint();
        let (b, _mb) = net.open_endpoint();
        net.set_link_cut(a, b, true);
        net.send(b, a, vec![7]).unwrap();
        assert_eq!(ma.recv().unwrap().payload, vec![7]);
    }

    #[test]
    fn recv_timeout_expires() {
        let net = InProcNetwork::new();
        let (_a, ma) = net.open_endpoint();
        let err = ma.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvError::Timeout);
    }

    #[test]
    fn network_is_shareable_across_threads() {
        let net = InProcNetwork::new();
        let (a, _ma) = net.open_endpoint();
        let (b, mb) = net.open_endpoint();
        let net2 = net.clone();
        let handle = std::thread::spawn(move || {
            for i in 0..100u8 {
                net2.send(a, b, vec![i]).unwrap();
            }
        });
        handle.join().unwrap();
        let mut got = Vec::new();
        while let Ok(d) = mb.try_recv() {
            got.push(d.payload[0]);
        }
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn injected_latency_delays_delivery() {
        let net = InProcNetwork::new();
        let (a, _ma) = net.open_endpoint();
        let (b, mb) = net.open_endpoint();
        net.set_delivery_latency(Duration::from_millis(50));
        let start = Instant::now();
        net.send(a, b, vec![1]).unwrap();
        let got = mb.recv_timeout(Duration::from_secs(2)).unwrap();
        let elapsed = start.elapsed();
        assert_eq!(got.payload, vec![1]);
        assert!(
            elapsed >= Duration::from_millis(45),
            "delivered after {elapsed:?}, expected >= ~50ms"
        );
    }

    #[test]
    fn latency_preserves_per_link_order() {
        let net = InProcNetwork::new();
        let (a, _ma) = net.open_endpoint();
        let (b, mb) = net.open_endpoint();
        net.set_delivery_latency(Duration::from_millis(5));
        for i in 0..20u8 {
            net.send(a, b, vec![i]).unwrap();
        }
        for i in 0..20u8 {
            let got = mb.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(got.payload, vec![i], "order broken at {i}");
        }
    }

    #[test]
    fn resetting_latency_restores_immediate_delivery() {
        let net = InProcNetwork::new();
        let (a, _ma) = net.open_endpoint();
        let (b, mb) = net.open_endpoint();
        net.set_delivery_latency(Duration::from_millis(30));
        net.send(a, b, vec![1]).unwrap();
        net.set_delivery_latency(Duration::ZERO);
        net.send(a, b, vec![2]).unwrap();
        // The fast message arrives immediately; the slow one later.
        let first = mb.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(first.payload, vec![2]);
        let second = mb.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(second.payload, vec![1]);
    }
}
