//! TCP transport: the same [`Network`] contract over real sockets.
//!
//! Frame format on the wire: `[u32 length][u64 from][u64 to][payload]`,
//! all little-endian. Each host binds one listener; outgoing connections are
//! cached per peer address.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use parking_lot::RwLock;

use crate::endpoint::{Datagram, EndpointId, Mailbox, Network, SendError};

/// A TCP-backed [`Network`] host.
///
/// Each process runs one `TcpHost`; it owns the local endpoints and a
/// routing table mapping remote endpoint ids to the socket address of the
/// host serving them (exchanged out-of-band, the way RMI registries hand out
/// remote references).
///
/// Endpoint id allocation is partitioned by `host_index` (ids are
/// `host_index * 2^32 + n`) so ids remain unique and ordered across hosts
/// without coordination.
///
/// # Example
///
/// ```no_run
/// use erm_transport::{Network, TcpHost};
///
/// let host_a = TcpHost::bind("127.0.0.1:0", 0)?;
/// let host_b = TcpHost::bind("127.0.0.1:0", 1)?;
/// let (a, _mail_a) = host_a.open_endpoint();
/// let (b, mail_b) = host_b.open_endpoint();
/// host_a.register_peer(b, host_b.local_addr());
/// host_a.send(a, b, b"over tcp".to_vec())?;
/// let got = mail_b.recv()?;
/// assert_eq!(got.payload, b"over tcp");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct TcpHost {
    inner: Arc<HostInner>,
}

#[derive(Debug)]
struct HostInner {
    local_addr: SocketAddr,
    host_index: u32,
    next_local: AtomicU64,
    local: RwLock<HashMap<EndpointId, Sender<Datagram>>>,
    peers: RwLock<HashMap<EndpointId, SocketAddr>>,
    conns: Mutex<HashMap<SocketAddr, TcpStream>>,
    shutdown: AtomicBool,
}

impl TcpHost {
    /// Binds a listener on `addr` (use port 0 for an ephemeral port) and
    /// starts the accept loop.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn bind(addr: &str, host_index: u32) -> std::io::Result<TcpHost> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let inner = Arc::new(HostInner {
            local_addr,
            host_index,
            next_local: AtomicU64::new(0),
            local: RwLock::new(HashMap::new()),
            peers: RwLock::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
        });
        let accept_inner = Arc::clone(&inner);
        thread::Builder::new()
            .name(format!("tcp-accept-{local_addr}"))
            .spawn(move || accept_loop(listener, accept_inner))?;
        Ok(TcpHost { inner })
    }

    /// The address peers should use to reach endpoints on this host.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// Opens a local endpoint.
    pub fn open_endpoint(&self) -> (EndpointId, Mailbox) {
        let n = self.inner.next_local.fetch_add(1, Ordering::SeqCst);
        let id = EndpointId((u64::from(self.inner.host_index) << 32) | n);
        let (tx, rx) = unbounded();
        self.inner.local.write().insert(id, tx);
        (id, Mailbox::new(id, rx))
    }

    /// Closes a local endpoint.
    pub fn close_endpoint(&self, id: EndpointId) {
        self.inner.local.write().remove(&id);
    }

    /// Teaches this host that endpoint `id` lives on the host at `addr`.
    pub fn register_peer(&self, id: EndpointId, addr: SocketAddr) {
        self.inner.peers.write().insert(id, addr);
    }

    /// Stops accepting new connections (best-effort; used on drop paths in
    /// examples).
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Poke the accept loop awake.
        let _ = TcpStream::connect(self.inner.local_addr);
    }

    fn send_remote(
        &self,
        addr: SocketAddr,
        from: EndpointId,
        to: EndpointId,
        payload: &[u8],
    ) -> std::io::Result<()> {
        let mut conns = self.inner.conns.lock();
        // One write attempt over a cached connection, one over a fresh
        // connection if the cached one died.
        for attempt in 0..2 {
            let stream = match conns.entry(addr) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => e.insert(TcpStream::connect(addr)?),
            };
            match write_frame(stream, from, to, payload) {
                Ok(()) => return Ok(()),
                Err(e) if attempt == 0 => {
                    let _ = e;
                    conns.remove(&addr);
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop returns on success or final error")
    }
}

impl crate::endpoint::Host for TcpHost {
    fn open(&self) -> (EndpointId, Mailbox) {
        self.open_endpoint()
    }

    fn close(&self, id: EndpointId) {
        self.close_endpoint(id);
    }
}

impl Network for TcpHost {
    fn send(&self, from: EndpointId, to: EndpointId, payload: Vec<u8>) -> Result<(), SendError> {
        // Local fast path.
        if let Some(tx) = self.inner.local.read().get(&to) {
            let _ = tx.send(Datagram { from, payload });
            return Ok(());
        }
        let addr = {
            let peers = self.inner.peers.read();
            *peers.get(&to).ok_or(SendError::Unreachable(to))?
        };
        self.send_remote(addr, from, to, &payload)
            .map_err(|_| SendError::Unreachable(to))
    }
}

fn write_frame(
    stream: &mut TcpStream,
    from: EndpointId,
    to: EndpointId,
    payload: &[u8],
) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(4 + 16 + payload.len());
    let len = u32::try_from(16 + payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "payload too large"))?;
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&from.0.to_le_bytes());
    frame.extend_from_slice(&to.0.to_le_bytes());
    frame.extend_from_slice(payload);
    stream.write_all(&frame)
}

fn accept_loop(listener: TcpListener, inner: Arc<HostInner>) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_inner = Arc::clone(&inner);
        let _ = thread::Builder::new()
            .name("tcp-conn".to_string())
            .spawn(move || read_loop(stream, conn_inner));
    }
}

fn read_loop(mut stream: TcpStream, inner: Arc<HostInner>) {
    loop {
        let mut len_buf = [0u8; 4];
        if stream.read_exact(&mut len_buf).is_err() {
            return;
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if len < 16 {
            return; // malformed frame
        }
        let mut frame = vec![0u8; len];
        if stream.read_exact(&mut frame).is_err() {
            return;
        }
        let from = EndpointId(u64::from_le_bytes(frame[0..8].try_into().expect("8 bytes")));
        let to = EndpointId(u64::from_le_bytes(
            frame[8..16].try_into().expect("8 bytes"),
        ));
        let payload = frame[16..].to_vec();
        if let Some(tx) = inner.local.read().get(&to) {
            let _ = tx.send(Datagram { from, payload });
        }
        // Unknown destination: frame dropped, like a NIC with no listener.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pair() -> (TcpHost, TcpHost) {
        let a = TcpHost::bind("127.0.0.1:0", 0).unwrap();
        let b = TcpHost::bind("127.0.0.1:0", 1).unwrap();
        (a, b)
    }

    #[test]
    fn cross_host_roundtrip() {
        let (host_a, host_b) = pair();
        let (a, mail_a) = host_a.open_endpoint();
        let (b, mail_b) = host_b.open_endpoint();
        host_a.register_peer(b, host_b.local_addr());
        host_b.register_peer(a, host_a.local_addr());

        host_a.send(a, b, b"ping".to_vec()).unwrap();
        let got = mail_b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.from, a);
        assert_eq!(got.payload, b"ping");

        host_b.send(b, a, b"pong".to_vec()).unwrap();
        let got = mail_a.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.payload, b"pong");
    }

    #[test]
    fn local_delivery_skips_sockets() {
        let host = TcpHost::bind("127.0.0.1:0", 0).unwrap();
        let (a, _mail_a) = host.open_endpoint();
        let (b, mail_b) = host.open_endpoint();
        host.send(a, b, vec![42]).unwrap();
        assert_eq!(mail_b.recv().unwrap().payload, vec![42]);
    }

    #[test]
    fn unknown_peer_is_unreachable() {
        let host = TcpHost::bind("127.0.0.1:0", 0).unwrap();
        let (a, _mail) = host.open_endpoint();
        let ghost = EndpointId(u64::MAX);
        assert_eq!(
            host.send(a, ghost, vec![]),
            Err(SendError::Unreachable(ghost))
        );
    }

    #[test]
    fn endpoint_ids_are_partitioned_by_host() {
        let (host_a, host_b) = pair();
        let (a, _ma) = host_a.open_endpoint();
        let (b, _mb) = host_b.open_endpoint();
        assert_ne!(a, b);
        assert!(b > a, "host index orders ids");
    }

    #[test]
    fn many_messages_preserve_order_per_connection() {
        let (host_a, host_b) = pair();
        let (a, _mail_a) = host_a.open_endpoint();
        let (b, mail_b) = host_b.open_endpoint();
        host_a.register_peer(b, host_b.local_addr());
        for i in 0..200u32 {
            host_a.send(a, b, i.to_le_bytes().to_vec()).unwrap();
        }
        for i in 0..200u32 {
            let got = mail_b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(got.payload, i.to_le_bytes().to_vec());
        }
    }
}
