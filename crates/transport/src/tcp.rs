//! TCP transport: the same [`Network`] contract over real sockets.
//!
//! Frame format on the wire (all integers little-endian):
//!
//! ```text
//! [u32 length][u64 from][u64 to][u16 addr_len][addr utf8][payload]
//! ```
//!
//! `length` counts everything after itself (`16 + 2 + addr_len +
//! payload_len`). `addr` is the sender host's advertised listener address
//! (e.g. `127.0.0.1:41234`); a receiving host learns it and can route
//! replies back without any out-of-band registration — the same trick Java
//! RMI plays by embedding the endpoint in the remote reference.
//!
//! Each host binds one listener. Outgoing frames are handed to a per-peer
//! writer thread which coalesces everything queued into a single
//! `write_all` (batched writes), reconnects with bounded backoff when the
//! peer closed the connection, and marks the peer broken when reconnecting
//! fails — which [`Network::endpoint_open`] surfaces so stubs can fail over
//! instead of burning reply timeouts.
//!
//! This module is the one sanctioned wall-clock domain of the codebase:
//! protocol semantics run on the injected [`erm_sim::Clock`], but socket
//! I/O, reconnect backoff, and accept loops are real time by nature.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use parking_lot::RwLock;

use crate::endpoint::{Datagram, EndpointId, Mailbox, Network, SendError};

/// Fixed part of a frame after the length word: `from` + `to` + `addr_len`.
const FRAME_FIXED: usize = 8 + 8 + 2;
/// Writer threads coalesce at most this many queued frames per syscall.
const MAX_BATCH_FRAMES: usize = 64;
/// ... and at most this many bytes.
const MAX_BATCH_BYTES: usize = 64 * 1024;
/// Connection attempts per batch before the peer is declared broken.
const CONNECT_ATTEMPTS: u32 = 5;
/// Base reconnect backoff, doubled per attempt (wall clock: I/O layer).
const CONNECT_BACKOFF: Duration = Duration::from_millis(1);

/// Counters a [`TcpHost`] keeps about its socket activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpStats {
    /// Frames successfully written to a socket.
    pub frames_sent: u64,
    /// Frames parsed off inbound connections.
    pub frames_received: u64,
    /// Write syscalls issued (each may carry many coalesced frames).
    pub batches: u64,
    /// Connections re-established after an established one died.
    pub reconnects: u64,
    /// Frames dropped after every connect attempt to the peer failed.
    pub frames_dropped: u64,
}

/// A TCP-backed [`Network`] host.
///
/// Each process runs one `TcpHost`; it owns the local endpoints and a
/// routing table mapping remote endpoint ids to the socket address of the
/// host serving them. Routes are learned three ways: explicitly via
/// [`TcpHost::register_peer`], per host via [`TcpHost::register_host`]
/// (ids embed their host index, so one entry routes every endpoint of a
/// host — including ones that do not exist yet, which is what lets a stub
/// reach members an elastic pool adds later), and automatically from the
/// advertised address carried in every inbound frame.
///
/// Endpoint id allocation is partitioned by `host_index` (ids are
/// `host_index * 2^32 + n`) so ids remain unique and ordered across hosts
/// without coordination.
///
/// # Example
///
/// ```no_run
/// use erm_transport::{Network, TcpHost};
///
/// let host_a = TcpHost::bind("127.0.0.1:0", 0)?;
/// let host_b = TcpHost::bind("127.0.0.1:0", 1)?;
/// let (a, mail_a) = host_a.open_endpoint();
/// let (b, mail_b) = host_b.open_endpoint();
/// host_a.register_peer(b, host_b.local_addr());
/// host_a.send(a, b, b"over tcp".to_vec())?;
/// let got = mail_b.recv()?;
/// assert_eq!(got.payload, b"over tcp");
/// // host_b learned host_a's address from the frame: replies just work.
/// host_b.send(b, a, b"and back".to_vec())?;
/// assert_eq!(mail_a.recv()?.payload, b"and back");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct TcpHost {
    inner: Arc<HostInner>,
}

#[derive(Debug)]
struct HostInner {
    local_addr: SocketAddr,
    /// `local_addr` rendered once for embedding in outgoing frames.
    advertised: Vec<u8>,
    host_index: u32,
    next_local: AtomicU64,
    local: RwLock<HashMap<EndpointId, Sender<Datagram>>>,
    peers: RwLock<HashMap<EndpointId, SocketAddr>>,
    /// Fallback routes: host index -> listener address. Covers every
    /// endpoint of that host, present and future.
    host_routes: RwLock<HashMap<u32, SocketAddr>>,
    links: Mutex<HashMap<SocketAddr, Link>>,
    shutdown: AtomicBool,
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    batches: AtomicU64,
    reconnects: AtomicU64,
    frames_dropped: AtomicU64,
}

/// Handle to one per-peer writer thread.
#[derive(Debug)]
struct Link {
    tx: Sender<Vec<u8>>,
    /// Set by the writer when a full reconnect cycle failed; cleared on the
    /// next successful connect. `endpoint_open` reads it.
    broken: Arc<AtomicBool>,
}

impl TcpHost {
    /// Binds a listener on `addr` (use port 0 for an ephemeral port) and
    /// starts the accept loop.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn bind(addr: &str, host_index: u32) -> std::io::Result<TcpHost> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let inner = Arc::new(HostInner {
            local_addr,
            advertised: local_addr.to_string().into_bytes(),
            host_index,
            next_local: AtomicU64::new(0),
            local: RwLock::new(HashMap::new()),
            peers: RwLock::new(HashMap::new()),
            host_routes: RwLock::new(HashMap::new()),
            links: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            frames_sent: AtomicU64::new(0),
            frames_received: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            frames_dropped: AtomicU64::new(0),
        });
        let accept_inner = Arc::clone(&inner);
        thread::Builder::new()
            .name(format!("tcp-accept-{local_addr}"))
            .spawn(move || accept_loop(listener, accept_inner))?;
        Ok(TcpHost { inner })
    }

    /// The address peers should use to reach endpoints on this host.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// Opens a local endpoint.
    pub fn open_endpoint(&self) -> (EndpointId, Mailbox) {
        let n = self.inner.next_local.fetch_add(1, Ordering::SeqCst);
        let id = EndpointId((u64::from(self.inner.host_index) << 32) | n);
        let (tx, rx) = unbounded();
        self.inner.local.write().insert(id, tx);
        (id, Mailbox::new(id, rx))
    }

    /// Closes a local endpoint.
    pub fn close_endpoint(&self, id: EndpointId) {
        self.inner.local.write().remove(&id);
    }

    /// Teaches this host that endpoint `id` lives on the host at `addr`.
    pub fn register_peer(&self, id: EndpointId, addr: SocketAddr) {
        self.inner.peers.write().insert(id, addr);
    }

    /// Teaches this host that *every* endpoint whose id carries
    /// `host_index` lives on the host at `addr` — the one line of
    /// bootstrap a client needs to reach an elastic pool, since members the
    /// pool adds later share the server's host index.
    pub fn register_host(&self, host_index: u32, addr: SocketAddr) {
        self.inner.host_routes.write().insert(host_index, addr);
    }

    /// Snapshot of the socket counters.
    pub fn stats(&self) -> TcpStats {
        TcpStats {
            frames_sent: self.inner.frames_sent.load(Ordering::Relaxed),
            frames_received: self.inner.frames_received.load(Ordering::Relaxed),
            batches: self.inner.batches.load(Ordering::Relaxed),
            reconnects: self.inner.reconnects.load(Ordering::Relaxed),
            frames_dropped: self.inner.frames_dropped.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting new connections and winds down the writer threads
    /// (best-effort; used on drop paths in examples).
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Dropping the senders disconnects the channels; each writer exits
        // once it has drained what was already queued.
        self.inner.links.lock().clear();
        // Poke the accept loop awake.
        let _ = TcpStream::connect(self.inner.local_addr);
    }

    /// Routes `to` to a listener address, if any route is known.
    fn route(&self, to: EndpointId) -> Option<SocketAddr> {
        if let Some(addr) = self.inner.peers.read().get(&to) {
            return Some(*addr);
        }
        let host = (to.0 >> 32) as u32;
        self.inner.host_routes.read().get(&host).copied()
    }

    /// Hands a frame to the peer's writer thread, spawning it on first use.
    fn enqueue(&self, addr: SocketAddr, frame: Vec<u8>) {
        let mut links = self.inner.links.lock();
        let link = links.entry(addr).or_insert_with(|| {
            let (tx, rx) = unbounded();
            let broken = Arc::new(AtomicBool::new(false));
            let writer_broken = Arc::clone(&broken);
            let writer_inner = Arc::clone(&self.inner);
            let _ = thread::Builder::new()
                .name(format!("tcp-writer-{addr}"))
                .spawn(move || writer_loop(addr, rx, writer_broken, writer_inner));
            Link { tx, broken }
        });
        let _ = link.tx.send(frame);
    }
}

impl crate::endpoint::Host for TcpHost {
    fn open(&self) -> (EndpointId, Mailbox) {
        self.open_endpoint()
    }

    fn close(&self, id: EndpointId) {
        self.close_endpoint(id);
    }
}

impl Network for TcpHost {
    fn send(&self, from: EndpointId, to: EndpointId, payload: Vec<u8>) -> Result<(), SendError> {
        // Local fast path.
        if let Some(tx) = self.inner.local.read().get(&to) {
            let _ = tx.send(Datagram { from, payload });
            return Ok(());
        }
        let addr = self.route(to).ok_or(SendError::Unreachable(to))?;
        let frame = encode_frame(from, to, &self.inner.advertised, &payload)
            .ok_or(SendError::Unreachable(to))?;
        // Success means "accepted for delivery", like UDP: the writer thread
        // owns actual delivery, reconnecting as needed.
        self.enqueue(addr, frame);
        Ok(())
    }

    fn endpoint_open(&self, id: EndpointId) -> bool {
        if (id.0 >> 32) as u32 == self.inner.host_index {
            return self.inner.local.read().contains_key(&id);
        }
        let Some(addr) = self.route(id) else {
            return false;
        };
        match self.inner.links.lock().get(&addr) {
            Some(link) => !link.broken.load(Ordering::SeqCst),
            // No traffic yet: optimistically open.
            None => true,
        }
    }
}

/// Encodes one wire frame; `None` if the payload exceeds the u32 length.
fn encode_frame(
    from: EndpointId,
    to: EndpointId,
    advertised: &[u8],
    payload: &[u8],
) -> Option<Vec<u8>> {
    let addr_len = u16::try_from(advertised.len()).ok()?;
    let len = u32::try_from(FRAME_FIXED + advertised.len() + payload.len()).ok()?;
    let mut frame = Vec::with_capacity(4 + len as usize);
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&from.0.to_le_bytes());
    frame.extend_from_slice(&to.0.to_le_bytes());
    frame.extend_from_slice(&addr_len.to_le_bytes());
    frame.extend_from_slice(advertised);
    frame.extend_from_slice(payload);
    Some(frame)
}

/// The per-peer writer: drains the queue, coalescing everything ready into
/// one buffer per syscall, and reconnects (bounded, backed off) when the
/// connection died under it. A batch whose every connect attempt failed is
/// dropped and the peer marked broken — the datagram contract allows loss,
/// and `endpoint_open` turning false is what lets stubs fail over fast.
fn writer_loop(
    addr: SocketAddr,
    rx: Receiver<Vec<u8>>,
    broken: Arc<AtomicBool>,
    inner: Arc<HostInner>,
) {
    let mut stream: Option<TcpStream> = None;
    let mut ever_connected = false;
    while let Ok(first) = rx.recv() {
        let mut batch = first;
        let mut frames = 1u64;
        while batch.len() < MAX_BATCH_BYTES && (frames as usize) < MAX_BATCH_FRAMES {
            match rx.try_recv() {
                Ok(next) => {
                    batch.extend_from_slice(&next);
                    frames += 1;
                }
                Err(_) => break,
            }
        }
        let mut delivered = false;
        for attempt in 0..CONNECT_ATTEMPTS {
            if stream.is_none() {
                match TcpStream::connect(addr) {
                    Ok(s) => {
                        let _ = s.set_nodelay(true);
                        if ever_connected {
                            inner.reconnects.fetch_add(1, Ordering::Relaxed);
                        }
                        ever_connected = true;
                        broken.store(false, Ordering::SeqCst);
                        stream = Some(s);
                    }
                    Err(_) => {
                        if inner.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        thread::sleep(CONNECT_BACKOFF * 2u32.saturating_pow(attempt));
                        continue;
                    }
                }
            }
            match stream.as_mut().expect("connected above").write_all(&batch) {
                Ok(()) => {
                    delivered = true;
                    break;
                }
                // The peer closed on us: a partially written frame is torn
                // off by the receiver's framing; rewriting the whole batch
                // on a fresh connection trades at-most-once for
                // at-least-once on this boundary, which the RMI layer's
                // call-id matching already tolerates.
                Err(_) => stream = None,
            }
        }
        inner.batches.fetch_add(1, Ordering::Relaxed);
        if delivered {
            inner.frames_sent.fetch_add(frames, Ordering::Relaxed);
        } else {
            broken.store(true, Ordering::SeqCst);
            inner.frames_dropped.fetch_add(frames, Ordering::Relaxed);
        }
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<HostInner>) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_inner = Arc::clone(&inner);
        let _ = thread::Builder::new()
            .name("tcp-conn".to_string())
            .spawn(move || read_loop(stream, conn_inner));
    }
}

fn read_loop(mut stream: TcpStream, inner: Arc<HostInner>) {
    loop {
        let mut len_buf = [0u8; 4];
        if stream.read_exact(&mut len_buf).is_err() {
            return;
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if len < FRAME_FIXED {
            return; // malformed frame
        }
        let mut frame = vec![0u8; len];
        if stream.read_exact(&mut frame).is_err() {
            return;
        }
        let from = EndpointId(u64::from_le_bytes(frame[0..8].try_into().expect("8 bytes")));
        let to = EndpointId(u64::from_le_bytes(
            frame[8..16].try_into().expect("8 bytes"),
        ));
        let addr_len = u16::from_le_bytes(frame[16..18].try_into().expect("2 bytes")) as usize;
        if FRAME_FIXED + addr_len > len {
            return; // malformed frame
        }
        // Learn the sender's listener address so replies route without any
        // out-of-band registration.
        if addr_len > 0 {
            if let Some(addr) = std::str::from_utf8(&frame[18..18 + addr_len])
                .ok()
                .and_then(|s| s.parse::<SocketAddr>().ok())
            {
                let sender_host = (from.0 >> 32) as u32;
                inner.peers.write().insert(from, addr);
                inner.host_routes.write().insert(sender_host, addr);
            }
        }
        let payload = frame[FRAME_FIXED + addr_len..].to_vec();
        inner.frames_received.fetch_add(1, Ordering::Relaxed);
        if let Some(tx) = inner.local.read().get(&to) {
            let _ = tx.send(Datagram { from, payload });
        }
        // Unknown destination: frame dropped, like a NIC with no listener.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (TcpHost, TcpHost) {
        let a = TcpHost::bind("127.0.0.1:0", 0).unwrap();
        let b = TcpHost::bind("127.0.0.1:0", 1).unwrap();
        (a, b)
    }

    #[test]
    fn cross_host_roundtrip_learns_reply_route() {
        let (host_a, host_b) = pair();
        let (a, mail_a) = host_a.open_endpoint();
        let (b, mail_b) = host_b.open_endpoint();
        // Only a -> b is registered; b learns a's address from the frame.
        host_a.register_peer(b, host_b.local_addr());

        host_a.send(a, b, b"ping".to_vec()).unwrap();
        let got = mail_b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.from, a);
        assert_eq!(got.payload, b"ping");

        host_b.send(b, a, b"pong".to_vec()).unwrap();
        let got = mail_a.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.payload, b"pong");
    }

    #[test]
    fn host_route_reaches_endpoints_opened_later() {
        let (host_a, host_b) = pair();
        let (a, _mail_a) = host_a.open_endpoint();
        host_a.register_host(1, host_b.local_addr());
        // Endpoint opened *after* the route was registered: still reachable,
        // because routing is by host index, not per endpoint.
        let (b, mail_b) = host_b.open_endpoint();
        host_a.send(a, b, b"late".to_vec()).unwrap();
        assert_eq!(
            mail_b.recv_timeout(Duration::from_secs(5)).unwrap().payload,
            b"late"
        );
    }

    #[test]
    fn local_delivery_skips_sockets() {
        let host = TcpHost::bind("127.0.0.1:0", 0).unwrap();
        let (a, _mail_a) = host.open_endpoint();
        let (b, mail_b) = host.open_endpoint();
        host.send(a, b, vec![42]).unwrap();
        assert_eq!(mail_b.recv().unwrap().payload, vec![42]);
        assert_eq!(host.stats().batches, 0, "no socket involved");
    }

    #[test]
    fn unknown_peer_is_unreachable() {
        let host = TcpHost::bind("127.0.0.1:0", 0).unwrap();
        let (a, _mail) = host.open_endpoint();
        let ghost = EndpointId(u64::MAX);
        assert_eq!(
            host.send(a, ghost, vec![]),
            Err(SendError::Unreachable(ghost))
        );
        assert!(!host.endpoint_open(ghost), "no route, not open");
    }

    #[test]
    fn endpoint_ids_are_partitioned_by_host() {
        let (host_a, host_b) = pair();
        let (a, _ma) = host_a.open_endpoint();
        let (b, _mb) = host_b.open_endpoint();
        assert_ne!(a, b);
        assert!(b > a, "host index orders ids");
    }

    #[test]
    fn endpoint_open_tracks_local_endpoints() {
        let host = TcpHost::bind("127.0.0.1:0", 0).unwrap();
        let (a, _mail) = host.open_endpoint();
        assert!(host.endpoint_open(a));
        host.close_endpoint(a);
        assert!(!host.endpoint_open(a));
    }

    #[test]
    fn many_messages_preserve_order_per_connection() {
        let (host_a, host_b) = pair();
        let (a, _mail_a) = host_a.open_endpoint();
        let (b, mail_b) = host_b.open_endpoint();
        host_a.register_peer(b, host_b.local_addr());
        for i in 0..200u32 {
            host_a.send(a, b, i.to_le_bytes().to_vec()).unwrap();
        }
        for i in 0..200u32 {
            let got = mail_b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(got.payload, i.to_le_bytes().to_vec());
        }
        let stats = host_a.stats();
        assert_eq!(stats.frames_sent, 200);
        assert!(
            stats.batches <= stats.frames_sent,
            "writer may coalesce but never splits"
        );
    }
}
