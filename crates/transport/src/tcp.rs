//! TCP transport: the same [`Network`] contract over real sockets.
//!
//! Frame format on the wire (all integers little-endian):
//!
//! ```text
//! [u32 length][u64 from][u64 to][u16 addr_len][addr utf8][payload]
//! ```
//!
//! `length` counts everything after itself (`16 + 2 + addr_len +
//! payload_len`). `addr` is the sender host's advertised listener address
//! (e.g. `127.0.0.1:41234`); a receiving host learns it and can route
//! replies back without any out-of-band registration — the same trick Java
//! RMI plays by embedding the endpoint in the remote reference.
//!
//! Each host binds one listener and runs **one event-loop thread** over a
//! readiness poller ([`crate::poller`]): the loop accepts connections,
//! reassembles inbound frames from nonblocking reads, and flushes per-link
//! outbound queues with write-interest-driven nonblocking writes. One I/O
//! core therefore drives hundreds of connections — the per-peer
//! reader/writer thread pairs of the original implementation are gone, but
//! the public API, the wire format, and the failure semantics are
//! unchanged: writes coalesce queued frames into batched syscalls, dead
//! connections reconnect with bounded backoff (rewriting the in-flight
//! batch, trading at-most-once for at-least-once on that boundary), and a
//! peer whose every connect attempt failed is marked broken — which
//! [`Network::endpoint_open`] surfaces so stubs can fail over instead of
//! burning reply timeouts.
//!
//! Outbound queues are unbounded but carry a high-water mark: a link whose
//! queued bytes cross [`LINK_HIGH_WATER_BYTES`] reports backpressure
//! through [`Network::backpressure`] until the queue drains below half the
//! mark. Pipelined callers (open-loop generators, stubs with hundreds of
//! outstanding invocations) use that signal to stop injecting instead of
//! ballooning the queue.
//!
//! This module is the one sanctioned wall-clock domain of the codebase:
//! protocol semantics run on the injected [`erm_sim::Clock`], but socket
//! I/O, reconnect backoff, and readiness waits are real time by nature.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};
use erm_metrics::{Counter, Gauge, MetricsHandle};
use parking_lot::Mutex;
use parking_lot::RwLock;

use crate::endpoint::{Datagram, EndpointId, Mailbox, Network, SendError};
use crate::poller::{Event, Interest, Poller, Waker};

/// Fixed part of a frame after the length word: `from` + `to` + `addr_len`.
const FRAME_FIXED: usize = 8 + 8 + 2;
/// The event loop coalesces at most this many queued frames per batch.
const MAX_BATCH_FRAMES: usize = 64;
/// ... and at most this many bytes (one frame may exceed it alone).
const MAX_BATCH_BYTES: usize = 64 * 1024;
/// Largest frame the reassembler will accept; longer means a corrupt
/// stream and the connection is dropped.
const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;
/// Bytes read per `read(2)` on an inbound-ready connection.
const READ_CHUNK: usize = 64 * 1024;
/// Connection attempts per pending batch before the peer is declared broken.
const CONNECT_ATTEMPTS: u32 = 5;
/// Base reconnect backoff, doubled per attempt (wall clock: I/O layer).
const CONNECT_BACKOFF: Duration = Duration::from_millis(1);
/// Ceiling on one blocking connect attempt inside the event loop.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(100);
/// Poll timeout when nothing is scheduled; wakeups cut it short.
const IDLE_TICK: Duration = Duration::from_millis(500);

/// Queued outbound bytes above which a link reports backpressure.
pub const LINK_HIGH_WATER_BYTES: usize = 1 << 20;
/// Backpressure clears once the queue drains below this (half the mark,
/// so the signal doesn't flap at the boundary).
const LINK_LOW_WATER_BYTES: usize = LINK_HIGH_WATER_BYTES / 2;

/// Counters a [`TcpHost`] keeps about its socket activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpStats {
    /// Frames successfully written to a socket.
    pub frames_sent: u64,
    /// Frames parsed off inbound connections.
    pub frames_received: u64,
    /// Write syscalls issued (each may carry many coalesced frames).
    pub batches: u64,
    /// Connections re-established after an established one died.
    pub reconnects: u64,
    /// Frames dropped after every connect attempt to the peer failed.
    pub frames_dropped: u64,
    /// Write syscalls that accepted only part of the batch.
    pub partial_writes: u64,
    /// Write syscalls refused outright (`EWOULDBLOCK`), re-armed via
    /// write interest.
    pub wouldblock_retries: u64,
    /// Times a link's outbound queue crossed [`LINK_HIGH_WATER_BYTES`].
    pub backpressure_events: u64,
}

/// A TCP-backed [`Network`] host.
///
/// Each process runs one `TcpHost`; it owns the local endpoints and a
/// routing table mapping remote endpoint ids to the socket address of the
/// host serving them. Routes are learned three ways: explicitly via
/// [`TcpHost::register_peer`], per host via [`TcpHost::register_host`]
/// (ids embed their host index, so one entry routes every endpoint of a
/// host — including ones that do not exist yet, which is what lets a stub
/// reach members an elastic pool adds later), and automatically from the
/// advertised address carried in every inbound frame.
///
/// Endpoint id allocation is partitioned by `host_index` (ids are
/// `host_index * 2^32 + n`) so ids remain unique and ordered across hosts
/// without coordination.
///
/// # Example
///
/// ```no_run
/// use erm_transport::{Network, TcpHost};
///
/// let host_a = TcpHost::bind("127.0.0.1:0", 0)?;
/// let host_b = TcpHost::bind("127.0.0.1:0", 1)?;
/// let (a, mail_a) = host_a.open_endpoint();
/// let (b, mail_b) = host_b.open_endpoint();
/// host_a.register_peer(b, host_b.local_addr());
/// host_a.send(a, b, b"over tcp".to_vec())?;
/// let got = mail_b.recv()?;
/// assert_eq!(got.payload, b"over tcp");
/// // host_b learned host_a's address from the frame: replies just work.
/// host_b.send(b, a, b"and back".to_vec())?;
/// assert_eq!(mail_a.recv()?.payload, b"and back");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct TcpHost {
    inner: Arc<HostInner>,
}

#[derive(Debug)]
struct HostInner {
    local_addr: SocketAddr,
    /// `local_addr` rendered once for embedding in outgoing frames.
    advertised: Vec<u8>,
    host_index: u32,
    next_local: AtomicU64,
    local: RwLock<HashMap<EndpointId, Sender<Datagram>>>,
    peers: RwLock<HashMap<EndpointId, SocketAddr>>,
    /// Fallback routes: host index -> listener address. Covers every
    /// endpoint of that host, present and future.
    host_routes: RwLock<HashMap<u32, SocketAddr>>,
    /// Sender-visible half of each outbound link; the event loop owns the
    /// sockets themselves.
    links: Mutex<HashMap<SocketAddr, Arc<LinkShared>>>,
    /// Nudges the event loop out of its poll when senders queue work.
    waker: Waker,
    /// Set by senders after queueing; cleared by the loop before it
    /// flushes, so bursts collapse into one wakeup per loop pass.
    dirty: AtomicBool,
    shutdown: AtomicBool,
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    batches: AtomicU64,
    reconnects: AtomicU64,
    frames_dropped: AtomicU64,
    partial_writes: AtomicU64,
    wouldblock_retries: AtomicU64,
    backpressure_events: AtomicU64,
    telemetry: OnceLock<TcpTelemetry>,
}

/// Registry instruments mirroring [`TcpStats`] plus two live gauges.
#[derive(Debug)]
struct TcpTelemetry {
    frames_sent: Counter,
    frames_received: Counter,
    batches: Counter,
    reconnects: Counter,
    frames_dropped: Counter,
    partial_writes: Counter,
    wouldblock_retries: Counter,
    backpressure_events: Counter,
    queued_bytes: Gauge,
    links_backpressured: Gauge,
}

/// The half of an outbound link both senders and the event loop touch.
#[derive(Debug, Default)]
struct LinkShared {
    /// Encoded frames awaiting the event loop, FIFO per link.
    queue: Mutex<VecDeque<Vec<u8>>>,
    /// Byte size of `queue` (senders add, the loop subtracts), kept
    /// outside the lock so `backpressure` checks stay wait-free.
    queued_bytes: AtomicU64,
    /// Set when a full reconnect cycle failed; cleared on the next
    /// successful connect. `endpoint_open` reads it.
    broken: AtomicBool,
    /// Set when `queued_bytes` crossed the high-water mark; cleared once
    /// the loop drains the queue below the low-water mark.
    backpressured: AtomicBool,
}

impl HostInner {
    fn tel(&self) -> Option<&TcpTelemetry> {
        self.telemetry.get()
    }

    fn count_sent(&self, n: u64) {
        self.frames_sent.fetch_add(n, Ordering::Relaxed);
        if let Some(t) = self.tel() {
            t.frames_sent.add(n);
        }
    }

    fn count_received(&self, n: u64) {
        self.frames_received.fetch_add(n, Ordering::Relaxed);
        if let Some(t) = self.tel() {
            t.frames_received.add(n);
        }
    }

    fn count_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = self.tel() {
            t.batches.incr();
        }
    }

    fn count_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = self.tel() {
            t.reconnects.incr();
        }
    }

    fn count_dropped(&self, n: u64) {
        self.frames_dropped.fetch_add(n, Ordering::Relaxed);
        if let Some(t) = self.tel() {
            t.frames_dropped.add(n);
        }
    }

    fn count_partial(&self) {
        self.partial_writes.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = self.tel() {
            t.partial_writes.incr();
        }
    }

    fn count_wouldblock(&self) {
        self.wouldblock_retries.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = self.tel() {
            t.wouldblock_retries.incr();
        }
    }

    fn count_backpressure(&self) {
        self.backpressure_events.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = self.tel() {
            t.backpressure_events.incr();
            t.links_backpressured.add(1);
        }
    }

    fn gauge_backpressure_cleared(&self) {
        if let Some(t) = self.tel() {
            t.links_backpressured.add(-1);
        }
    }

    fn gauge_queued(&self, delta: i64) {
        if let Some(t) = self.tel() {
            t.queued_bytes.add(delta);
        }
    }
}

impl TcpHost {
    /// Binds a listener on `addr` (use port 0 for an ephemeral port) and
    /// starts the event-loop thread.
    ///
    /// # Errors
    ///
    /// Propagates socket bind and poller setup errors.
    pub fn bind(addr: &str, host_index: u32) -> std::io::Result<TcpHost> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let (poller, waker) = Poller::new()?;
        let inner = Arc::new(HostInner {
            local_addr,
            advertised: local_addr.to_string().into_bytes(),
            host_index,
            next_local: AtomicU64::new(0),
            local: RwLock::new(HashMap::new()),
            peers: RwLock::new(HashMap::new()),
            host_routes: RwLock::new(HashMap::new()),
            links: Mutex::new(HashMap::new()),
            waker,
            dirty: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            frames_sent: AtomicU64::new(0),
            frames_received: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            frames_dropped: AtomicU64::new(0),
            partial_writes: AtomicU64::new(0),
            wouldblock_retries: AtomicU64::new(0),
            backpressure_events: AtomicU64::new(0),
            telemetry: OnceLock::new(),
        });
        let loop_inner = Arc::clone(&inner);
        thread::Builder::new()
            .name(format!("tcp-loop-{local_addr}"))
            .spawn(move || {
                EventLoop {
                    inner: loop_inner,
                    poller,
                    listener,
                    inbound: HashMap::new(),
                    out: HashMap::new(),
                    chunk: vec![0u8; READ_CHUNK],
                }
                .run();
            })?;
        Ok(TcpHost { inner })
    }

    /// The address peers should use to reach endpoints on this host.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// Opens a local endpoint.
    pub fn open_endpoint(&self) -> (EndpointId, Mailbox) {
        let n = self.inner.next_local.fetch_add(1, Ordering::SeqCst);
        let id = EndpointId((u64::from(self.inner.host_index) << 32) | n);
        let (tx, rx) = unbounded();
        self.inner.local.write().insert(id, tx);
        (id, Mailbox::new(id, rx))
    }

    /// Closes a local endpoint.
    pub fn close_endpoint(&self, id: EndpointId) {
        self.inner.local.write().remove(&id);
    }

    /// Teaches this host that endpoint `id` lives on the host at `addr`.
    pub fn register_peer(&self, id: EndpointId, addr: SocketAddr) {
        self.inner.peers.write().insert(id, addr);
    }

    /// Teaches this host that *every* endpoint whose id carries
    /// `host_index` lives on the host at `addr` — the one line of
    /// bootstrap a client needs to reach an elastic pool, since members the
    /// pool adds later share the server's host index.
    pub fn register_host(&self, host_index: u32, addr: SocketAddr) {
        self.inner.host_routes.write().insert(host_index, addr);
    }

    /// Snapshot of the socket counters.
    pub fn stats(&self) -> TcpStats {
        TcpStats {
            frames_sent: self.inner.frames_sent.load(Ordering::Relaxed),
            frames_received: self.inner.frames_received.load(Ordering::Relaxed),
            batches: self.inner.batches.load(Ordering::Relaxed),
            reconnects: self.inner.reconnects.load(Ordering::Relaxed),
            frames_dropped: self.inner.frames_dropped.load(Ordering::Relaxed),
            partial_writes: self.inner.partial_writes.load(Ordering::Relaxed),
            wouldblock_retries: self.inner.wouldblock_retries.load(Ordering::Relaxed),
            backpressure_events: self.inner.backpressure_events.load(Ordering::Relaxed),
        }
    }

    /// Registers `tcp.*` instruments with `metrics`: one counter per
    /// [`TcpStats`] field plus live `tcp.outbound.queued_bytes` and
    /// `tcp.links.backpressured` gauges. Later installs on the same host
    /// are ignored, matching the other components' `install_metrics`.
    pub fn install_metrics(&self, metrics: &MetricsHandle) {
        let _ = self.inner.telemetry.set(TcpTelemetry {
            frames_sent: metrics.counter("tcp.frames.sent"),
            frames_received: metrics.counter("tcp.frames.received"),
            batches: metrics.counter("tcp.write.batches"),
            reconnects: metrics.counter("tcp.reconnects"),
            frames_dropped: metrics.counter("tcp.frames.dropped"),
            partial_writes: metrics.counter("tcp.write.partial"),
            wouldblock_retries: metrics.counter("tcp.write.wouldblock"),
            backpressure_events: metrics.counter("tcp.backpressure.events"),
            queued_bytes: metrics.gauge("tcp.outbound.queued_bytes"),
            links_backpressured: metrics.gauge("tcp.links.backpressured"),
        });
    }

    /// Stops the event loop (best-effort; used on drop paths in examples).
    /// Undelivered queued frames are abandoned.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.waker.wake();
    }

    /// Routes `to` to a listener address, if any route is known.
    fn route(&self, to: EndpointId) -> Option<SocketAddr> {
        if let Some(addr) = self.inner.peers.read().get(&to) {
            return Some(*addr);
        }
        let host = (to.0 >> 32) as u32;
        self.inner.host_routes.read().get(&host).copied()
    }

    /// Queues a frame on the peer's link (created on first use) and nudges
    /// the event loop.
    fn enqueue(&self, addr: SocketAddr, frame: Vec<u8>) {
        let link = {
            let mut links = self.inner.links.lock();
            Arc::clone(links.entry(addr).or_default())
        };
        let len = frame.len() as u64;
        link.queue.lock().push_back(frame);
        let total = link.queued_bytes.fetch_add(len, Ordering::SeqCst) + len;
        self.inner.gauge_queued(len as i64);
        if total as usize >= LINK_HIGH_WATER_BYTES
            && !link.backpressured.swap(true, Ordering::SeqCst)
        {
            self.inner.count_backpressure();
        }
        if !self.inner.dirty.swap(true, Ordering::SeqCst) {
            self.inner.waker.wake();
        }
    }
}

impl crate::endpoint::Host for TcpHost {
    fn open(&self) -> (EndpointId, Mailbox) {
        self.open_endpoint()
    }

    fn close(&self, id: EndpointId) {
        self.close_endpoint(id);
    }
}

impl Network for TcpHost {
    fn send(&self, from: EndpointId, to: EndpointId, payload: Vec<u8>) -> Result<(), SendError> {
        // Local fast path.
        if let Some(tx) = self.inner.local.read().get(&to) {
            let _ = tx.send(Datagram { from, payload });
            return Ok(());
        }
        let addr = self.route(to).ok_or(SendError::Unreachable(to))?;
        let frame = encode_frame(from, to, &self.inner.advertised, &payload)
            .ok_or(SendError::Unreachable(to))?;
        // Success means "accepted for delivery", like UDP: the event loop
        // owns actual delivery, reconnecting as needed.
        self.enqueue(addr, frame);
        Ok(())
    }

    fn endpoint_open(&self, id: EndpointId) -> bool {
        if (id.0 >> 32) as u32 == self.inner.host_index {
            return self.inner.local.read().contains_key(&id);
        }
        let Some(addr) = self.route(id) else {
            return false;
        };
        match self.inner.links.lock().get(&addr) {
            Some(link) => !link.broken.load(Ordering::SeqCst),
            // No traffic yet: optimistically open.
            None => true,
        }
    }

    fn backpressure(&self, to: EndpointId) -> bool {
        if (to.0 >> 32) as u32 == self.inner.host_index {
            return false;
        }
        let Some(addr) = self.route(to) else {
            return false;
        };
        self.inner
            .links
            .lock()
            .get(&addr)
            .is_some_and(|link| link.backpressured.load(Ordering::SeqCst))
    }
}

/// Encodes one wire frame; `None` if the payload exceeds the u32 length.
fn encode_frame(
    from: EndpointId,
    to: EndpointId,
    advertised: &[u8],
    payload: &[u8],
) -> Option<Vec<u8>> {
    let addr_len = u16::try_from(advertised.len()).ok()?;
    let len = u32::try_from(FRAME_FIXED + advertised.len() + payload.len()).ok()?;
    let mut frame = Vec::with_capacity(4 + len as usize);
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&from.0.to_le_bytes());
    frame.extend_from_slice(&to.0.to_le_bytes());
    frame.extend_from_slice(&addr_len.to_le_bytes());
    frame.extend_from_slice(advertised);
    frame.extend_from_slice(payload);
    Some(frame)
}

/// One accepted inbound connection plus its reassembly buffer.
#[derive(Debug)]
struct InboundConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// The event loop's private half of an outbound link: the socket, the
/// batch being written, and the reconnect schedule.
#[derive(Debug)]
struct OutLink {
    shared: Arc<LinkShared>,
    conn: Option<TcpStream>,
    /// Frames peers push back on the outbound socket (unusual but legal);
    /// also where a peer's FIN is observed.
    read_buf: Vec<u8>,
    /// The batch currently being written: coalesced frames, a cursor, and
    /// per-frame end offsets so `frames_sent` counts a frame exactly once
    /// even across partial writes and whole-batch rewrites.
    scratch: Vec<u8>,
    scratch_off: usize,
    scratch_frames: Vec<usize>,
    scratch_sent: usize,
    attempts: u32,
    ever_connected: bool,
    next_connect_at: Option<Instant>,
    /// Register write interest next poll (a write returned `EWOULDBLOCK`).
    want_write: bool,
}

impl OutLink {
    fn new(shared: Arc<LinkShared>) -> OutLink {
        OutLink {
            shared,
            conn: None,
            read_buf: Vec::new(),
            scratch: Vec::new(),
            scratch_off: 0,
            scratch_frames: Vec::new(),
            scratch_sent: 0,
            attempts: 0,
            ever_connected: false,
            next_connect_at: None,
            want_write: false,
        }
    }

    /// Anything left to deliver (scratch remainder or queued frames)?
    fn has_pending(&self) -> bool {
        self.scratch_off < self.scratch.len() || !self.shared.queue.lock().is_empty()
    }

    /// Tears down the connection so the next `drive_connects` pass
    /// redials; the in-flight batch rewinds to its start (at-least-once).
    fn drop_conn(&mut self) {
        self.conn = None;
        self.scratch_off = 0;
        self.want_write = false;
        self.next_connect_at = None;
    }
}

/// Routing target of one ready fd.
#[derive(Debug, Clone, Copy)]
enum Token {
    Listener,
    Inbound(RawFd),
    Out(SocketAddr),
}

/// The single I/O thread behind a [`TcpHost`].
struct EventLoop {
    inner: Arc<HostInner>,
    poller: Poller,
    listener: TcpListener,
    inbound: HashMap<RawFd, InboundConn>,
    out: HashMap<SocketAddr, OutLink>,
    chunk: Vec<u8>,
}

impl EventLoop {
    fn run(mut self) {
        let mut fds: Vec<(RawFd, Interest)> = Vec::new();
        let mut tokens: HashMap<RawFd, Token> = HashMap::new();
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            // Clear the dirty flag *before* flushing: a sender that queues
            // after this point wakes the poller, so nothing is stranded.
            self.inner.dirty.store(false, Ordering::SeqCst);
            self.adopt_new_links();
            self.drive_connects();
            let addrs: Vec<SocketAddr> = self.out.keys().copied().collect();
            for addr in &addrs {
                self.flush(*addr);
            }

            fds.clear();
            tokens.clear();
            let listener_fd = self.listener.as_raw_fd();
            fds.push((listener_fd, Interest::READ));
            tokens.insert(listener_fd, Token::Listener);
            for &fd in self.inbound.keys() {
                fds.push((fd, Interest::READ));
                tokens.insert(fd, Token::Inbound(fd));
            }
            for (addr, link) in &self.out {
                if let Some(conn) = &link.conn {
                    let fd = conn.as_raw_fd();
                    let interest = if link.want_write {
                        Interest::READ_WRITE
                    } else {
                        Interest::READ
                    };
                    fds.push((fd, interest));
                    tokens.insert(fd, Token::Out(*addr));
                }
            }

            let timeout = self.next_timeout();
            if self.poller.wait(&fds, Some(timeout), &mut events).is_err() {
                // Poller failure is unrecoverable fd exhaustion; back off
                // rather than spin.
                thread::sleep(Duration::from_millis(10));
                continue;
            }
            if self.inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            for ev in events.iter().copied() {
                match tokens.get(&ev.fd) {
                    Some(Token::Listener) => self.accept_ready(),
                    Some(Token::Inbound(fd)) => self.inbound_ready(*fd, ev.error),
                    Some(Token::Out(addr)) => self.out_ready(*addr, ev),
                    None => {}
                }
            }
        }
    }

    /// Creates loop-side state for links senders opened since last pass.
    fn adopt_new_links(&mut self) {
        let links = self.inner.links.lock();
        for (addr, shared) in links.iter() {
            if !self.out.contains_key(addr) {
                self.out.insert(*addr, OutLink::new(Arc::clone(shared)));
            }
        }
    }

    /// Dials every disconnected link with pending output whose backoff has
    /// elapsed. Refused connects are instant on loopback; an unanswered
    /// SYN blocks at most [`CONNECT_TIMEOUT`].
    fn drive_connects(&mut self) {
        let inner = Arc::clone(&self.inner);
        let now = Instant::now();
        for (addr, link) in self.out.iter_mut() {
            if link.conn.is_some() || !link.has_pending() {
                continue;
            }
            if link.next_connect_at.is_some_and(|due| now < due) {
                continue;
            }
            match TcpStream::connect_timeout(addr, CONNECT_TIMEOUT) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_nonblocking(true);
                    if link.ever_connected {
                        inner.count_reconnect();
                    }
                    link.ever_connected = true;
                    link.shared.broken.store(false, Ordering::SeqCst);
                    link.attempts = 0;
                    link.next_connect_at = None;
                    link.conn = Some(stream);
                }
                Err(_) => {
                    link.attempts += 1;
                    if link.attempts >= CONNECT_ATTEMPTS {
                        give_up(link, &inner);
                        link.attempts = 0;
                        link.next_connect_at = None;
                    } else {
                        let backoff = CONNECT_BACKOFF * 2u32.saturating_pow(link.attempts - 1);
                        link.next_connect_at = Some(now + backoff);
                    }
                }
            }
        }
    }

    /// Writes as much of the link's pending output as the socket accepts:
    /// refills the scratch batch from the queue, issues nonblocking
    /// writes, and re-arms write interest on `EWOULDBLOCK`.
    fn flush(&mut self, addr: SocketAddr) {
        let inner = Arc::clone(&self.inner);
        let Some(link) = self.out.get_mut(&addr) else {
            return;
        };
        if link.conn.is_none() {
            return;
        }
        loop {
            if link.scratch_off == link.scratch.len() {
                link.scratch.clear();
                link.scratch_frames.clear();
                link.scratch_off = 0;
                link.scratch_sent = 0;
                let mut taken = 0usize;
                {
                    let mut queue = link.shared.queue.lock();
                    while link.scratch_frames.len() < MAX_BATCH_FRAMES
                        && link.scratch.len() < MAX_BATCH_BYTES
                    {
                        let Some(frame) = queue.pop_front() else {
                            break;
                        };
                        taken += frame.len();
                        link.scratch.extend_from_slice(&frame);
                        link.scratch_frames.push(link.scratch.len());
                    }
                }
                if taken > 0 {
                    let left = link
                        .shared
                        .queued_bytes
                        .fetch_sub(taken as u64, Ordering::SeqCst)
                        - taken as u64;
                    inner.gauge_queued(-(taken as i64));
                    if left as usize <= LINK_LOW_WATER_BYTES
                        && link.shared.backpressured.swap(false, Ordering::SeqCst)
                    {
                        inner.gauge_backpressure_cleared();
                    }
                }
                if link.scratch.is_empty() {
                    link.want_write = false;
                    return;
                }
            }
            let conn = link.conn.as_mut().expect("checked above");
            match conn.write(&link.scratch[link.scratch_off..]) {
                Ok(0) => {
                    link.drop_conn();
                    return;
                }
                Ok(n) => {
                    inner.count_batch();
                    if n < link.scratch.len() - link.scratch_off {
                        inner.count_partial();
                    }
                    link.scratch_off += n;
                    while link.scratch_sent < link.scratch_frames.len()
                        && link.scratch_frames[link.scratch_sent] <= link.scratch_off
                    {
                        link.scratch_sent += 1;
                        inner.count_sent(1);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    inner.count_wouldblock();
                    link.want_write = true;
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // The peer closed on us: a partially written frame is torn
                // off by the receiver's framing; rewriting the whole batch
                // on a fresh connection trades at-most-once for
                // at-least-once on this boundary, which the RMI layer's
                // call-id matching already tolerates. `scratch_sent` is
                // kept so rewritten frames aren't counted sent twice.
                Err(_) => {
                    link.drop_conn();
                    return;
                }
            }
        }
    }

    /// Drains the accept queue into `inbound`.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.inbound.insert(
                        stream.as_raw_fd(),
                        InboundConn {
                            stream,
                            buf: Vec::new(),
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Reads and reassembles frames from one inbound connection; drops the
    /// connection on EOF, I/O error, or a malformed stream.
    fn inbound_ready(&mut self, fd: RawFd, error: bool) {
        let inner = Arc::clone(&self.inner);
        let Some(conn) = self.inbound.get_mut(&fd) else {
            return;
        };
        let open = read_available(&mut conn.stream, &mut conn.buf, &mut self.chunk);
        let well_formed = parse_frames(&mut conn.buf, &inner).is_ok();
        if !open || !well_formed || error {
            self.inbound.remove(&fd);
        }
    }

    /// Handles readiness on an outbound connection: flushes on writable,
    /// reads on readable (frames a peer pushes back, or its FIN), and
    /// tears the socket down on error so the reconnect path takes over.
    fn out_ready(&mut self, addr: SocketAddr, ev: Event) {
        if ev.readable || ev.error {
            let inner = Arc::clone(&self.inner);
            let Some(link) = self.out.get_mut(&addr) else {
                return;
            };
            let Some(conn) = link.conn.as_mut() else {
                return;
            };
            let open = read_available(conn, &mut link.read_buf, &mut self.chunk);
            let well_formed = parse_frames(&mut link.read_buf, &inner).is_ok();
            if !open || !well_formed || ev.error {
                link.drop_conn();
                return;
            }
        }
        if ev.writable {
            self.flush(addr);
        }
    }

    /// Poll timeout: the earliest reconnect deadline, else a lazy tick
    /// (wakeups cut either short).
    fn next_timeout(&self) -> Duration {
        let now = Instant::now();
        let mut timeout = IDLE_TICK;
        for link in self.out.values() {
            if link.conn.is_none() && link.has_pending() {
                let due = link.next_connect_at.unwrap_or(now);
                timeout = timeout.min(due.saturating_duration_since(now));
            }
        }
        timeout
    }
}

/// Every connect attempt failed: drop everything pending, mark the link
/// broken (surfaced by `endpoint_open`), and clear backpressure — the
/// datagram contract allows loss, and failing fast is what lets stubs
/// fail over instead of waiting out reply timeouts.
fn give_up(link: &mut OutLink, inner: &HostInner) {
    let unsent_scratch = (link.scratch_frames.len() - link.scratch_sent) as u64;
    let queued = {
        let mut queue = link.shared.queue.lock();
        let n = queue.len() as u64;
        queue.clear();
        n
    };
    let cleared_bytes = link.shared.queued_bytes.swap(0, Ordering::SeqCst);
    inner.gauge_queued(-(cleared_bytes as i64));
    link.scratch.clear();
    link.scratch_frames.clear();
    link.scratch_off = 0;
    link.scratch_sent = 0;
    link.want_write = false;
    if link.shared.backpressured.swap(false, Ordering::SeqCst) {
        inner.gauge_backpressure_cleared();
    }
    link.shared.broken.store(true, Ordering::SeqCst);
    let dropped = unsent_scratch + queued;
    if dropped > 0 {
        inner.count_dropped(dropped);
    }
}

/// Nonblocking read of whatever the socket has into `buf`. Returns whether
/// the connection is still open (false on EOF or a hard error).
fn read_available(stream: &mut TcpStream, buf: &mut Vec<u8>, chunk: &mut [u8]) -> bool {
    loop {
        match stream.read(chunk) {
            Ok(0) => return false,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if n < chunk.len() {
                    // Short read: the socket is (almost certainly) drained;
                    // anything more re-arms via level-triggered readiness.
                    return true;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}

/// Extracts every complete frame from `buf` (draining consumed bytes,
/// keeping any trailing partial frame for the next read), learns reply
/// routes from advertised addresses, and delivers payloads to local
/// mailboxes.
///
/// # Errors
///
/// A nonsensical length or header means the stream is corrupt beyond
/// resynchronization; the caller must drop the connection.
fn parse_frames(buf: &mut Vec<u8>, inner: &HostInner) -> Result<(), ()> {
    let mut consumed = 0usize;
    let result = loop {
        let avail = buf.len() - consumed;
        if avail < 4 {
            break Ok(());
        }
        let len =
            u32::from_le_bytes(buf[consumed..consumed + 4].try_into().expect("4 bytes")) as usize;
        if !(FRAME_FIXED..=MAX_FRAME_BYTES).contains(&len) {
            break Err(()); // malformed frame
        }
        if avail < 4 + len {
            break Ok(());
        }
        let frame = &buf[consumed + 4..consumed + 4 + len];
        let from = EndpointId(u64::from_le_bytes(frame[0..8].try_into().expect("8 bytes")));
        let to = EndpointId(u64::from_le_bytes(
            frame[8..16].try_into().expect("8 bytes"),
        ));
        let addr_len = u16::from_le_bytes(frame[16..18].try_into().expect("2 bytes")) as usize;
        if FRAME_FIXED + addr_len > len {
            break Err(()); // malformed frame
        }
        // Learn the sender's listener address so replies route without any
        // out-of-band registration.
        if addr_len > 0 {
            if let Some(addr) = std::str::from_utf8(&frame[18..18 + addr_len])
                .ok()
                .and_then(|s| s.parse::<SocketAddr>().ok())
            {
                let sender_host = (from.0 >> 32) as u32;
                inner.peers.write().insert(from, addr);
                inner.host_routes.write().insert(sender_host, addr);
            }
        }
        let payload = frame[FRAME_FIXED + addr_len..].to_vec();
        inner.count_received(1);
        if let Some(tx) = inner.local.read().get(&to) {
            let _ = tx.send(Datagram { from, payload });
        }
        // Unknown destination: frame dropped, like a NIC with no listener.
        consumed += 4 + len;
    };
    if consumed > 0 {
        buf.drain(..consumed);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{eventually, recv_ready};

    fn pair() -> (TcpHost, TcpHost) {
        let a = TcpHost::bind("127.0.0.1:0", 0).unwrap();
        let b = TcpHost::bind("127.0.0.1:0", 1).unwrap();
        (a, b)
    }

    #[test]
    fn cross_host_roundtrip_learns_reply_route() {
        let (host_a, host_b) = pair();
        let (a, mail_a) = host_a.open_endpoint();
        let (b, mail_b) = host_b.open_endpoint();
        // Only a -> b is registered; b learns a's address from the frame.
        host_a.register_peer(b, host_b.local_addr());

        host_a.send(a, b, b"ping".to_vec()).unwrap();
        let got = recv_ready(&mail_b, "ping at b");
        assert_eq!(got.from, a);
        assert_eq!(got.payload, b"ping");

        host_b.send(b, a, b"pong".to_vec()).unwrap();
        let got = recv_ready(&mail_a, "pong back at a");
        assert_eq!(got.payload, b"pong");
    }

    #[test]
    fn host_route_reaches_endpoints_opened_later() {
        let (host_a, host_b) = pair();
        let (a, _mail_a) = host_a.open_endpoint();
        host_a.register_host(1, host_b.local_addr());
        // Endpoint opened *after* the route was registered: still reachable,
        // because routing is by host index, not per endpoint.
        let (b, mail_b) = host_b.open_endpoint();
        host_a.send(a, b, b"late".to_vec()).unwrap();
        assert_eq!(recv_ready(&mail_b, "late frame").payload, b"late");
    }

    #[test]
    fn local_delivery_skips_sockets() {
        let host = TcpHost::bind("127.0.0.1:0", 0).unwrap();
        let (a, _mail_a) = host.open_endpoint();
        let (b, mail_b) = host.open_endpoint();
        host.send(a, b, vec![42]).unwrap();
        assert_eq!(mail_b.recv().unwrap().payload, vec![42]);
        assert_eq!(host.stats().batches, 0, "no socket involved");
    }

    #[test]
    fn unknown_peer_is_unreachable() {
        let host = TcpHost::bind("127.0.0.1:0", 0).unwrap();
        let (a, _mail) = host.open_endpoint();
        let ghost = EndpointId(u64::MAX);
        assert_eq!(
            host.send(a, ghost, vec![]),
            Err(SendError::Unreachable(ghost))
        );
        assert!(!host.endpoint_open(ghost), "no route, not open");
    }

    #[test]
    fn endpoint_ids_are_partitioned_by_host() {
        let (host_a, host_b) = pair();
        let (a, _ma) = host_a.open_endpoint();
        let (b, _mb) = host_b.open_endpoint();
        assert_ne!(a, b);
        assert!(b > a, "host index orders ids");
    }

    #[test]
    fn endpoint_open_tracks_local_endpoints() {
        let host = TcpHost::bind("127.0.0.1:0", 0).unwrap();
        let (a, _mail) = host.open_endpoint();
        assert!(host.endpoint_open(a));
        host.close_endpoint(a);
        assert!(!host.endpoint_open(a));
    }

    #[test]
    fn many_messages_preserve_order_per_connection() {
        let (host_a, host_b) = pair();
        let (a, _mail_a) = host_a.open_endpoint();
        let (b, mail_b) = host_b.open_endpoint();
        host_a.register_peer(b, host_b.local_addr());
        for i in 0..200u32 {
            host_a.send(a, b, i.to_le_bytes().to_vec()).unwrap();
        }
        for i in 0..200u32 {
            let got = recv_ready(&mail_b, "ordered frame");
            assert_eq!(got.payload, i.to_le_bytes().to_vec());
        }
        let stats = host_a.stats();
        assert_eq!(stats.frames_sent, 200);
        assert!(
            stats.batches <= stats.frames_sent,
            "writer may coalesce but never splits"
        );
    }

    #[test]
    fn slow_peer_raises_backpressure_until_drained() {
        // A peer that accepts but never reads: the kernel buffers fill, the
        // link queue grows past the high-water mark, and `backpressure`
        // turns true. Once the peer drains everything, it clears again.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let peer_addr = listener.local_addr().unwrap();
        let host = TcpHost::bind("127.0.0.1:0", 0).unwrap();
        let (from, _mail) = host.open_endpoint();
        let to = EndpointId(9 << 32);
        host.register_peer(to, peer_addr);

        let frame_payload = vec![0u8; 256 * 1024];
        let frames = 64usize; // 16 MiB total: far beyond any socket buffer
        for _ in 0..frames {
            host.send(from, to, frame_payload.clone()).unwrap();
        }
        eventually("backpressure raised on the stalled link", || {
            host.backpressure(to)
        });
        assert!(host.stats().backpressure_events >= 1, "{:?}", host.stats());
        // The enqueue path raises the signal; give the event loop time to
        // actually hit the full socket buffer before asserting on it.
        eventually("a full socket buffer surfaces as EWOULDBLOCK", || {
            host.stats().wouldblock_retries >= 1
        });

        // Drain: read until every frame arrived, then the signal clears.
        let (mut conn, _) = listener.accept().unwrap();
        let expect =
            frames * (4 + FRAME_FIXED + host.local_addr().to_string().len() + frame_payload.len());
        let mut seen = 0usize;
        let mut sink = vec![0u8; 1 << 20];
        while seen < expect {
            let n = conn.read(&mut sink).unwrap();
            assert!(n > 0, "peer stream ended early at {seen}/{expect}");
            seen += n;
        }
        eventually("backpressure cleared after drain", || {
            !host.backpressure(to)
        });
        eventually("every frame counted sent", || {
            host.stats().frames_sent == frames as u64
        });
    }

    #[test]
    fn install_metrics_mirrors_stats_into_registry() {
        let (metrics, registry) = MetricsHandle::shared();
        let (host_a, host_b) = pair();
        host_a.install_metrics(&metrics);
        let (a, _mail_a) = host_a.open_endpoint();
        let (b, mail_b) = host_b.open_endpoint();
        host_a.register_peer(b, host_b.local_addr());
        host_a.send(a, b, b"counted".to_vec()).unwrap();
        recv_ready(&mail_b, "counted frame");
        eventually("tcp.frames.sent reaches the registry", || {
            registry
                .snapshot(erm_sim::SimTime::ZERO)
                .counters
                .iter()
                .any(|&(name, v)| name == "tcp.frames.sent" && v == 1)
        });
    }
}
