//! Endpoint identities, datagrams and the network abstraction.

use std::fmt;
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};
use serde::{Deserialize, Serialize};

/// Identifies one communication endpoint (a client stub, a skeleton, or the
/// pool runtime). Endpoint ids are assigned by the network and unique within
/// it; the pool uses their monotonic order for its "royal hierarchy" leader
/// election (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EndpointId(pub u64);

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep-{}", self.0)
    }
}

/// A received message: the sender plus the opaque payload (encoded with
/// [`crate::to_bytes`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Which endpoint sent this payload.
    pub from: EndpointId,
    /// The encoded message.
    pub payload: Vec<u8>,
}

/// Errors surfaced by [`Network::send`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError {
    /// The destination endpoint does not exist or has been closed — the
    /// error a stub observes when an object "has been removed from the pool
    /// after its identity is sent" (paper §4.3).
    Unreachable(EndpointId),
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::Unreachable(id) => write!(f, "endpoint {id} is unreachable"),
        }
    }
}

impl std::error::Error for SendError {}

/// Errors surfaced when receiving from a [`Mailbox`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived within the allowed time.
    Timeout,
    /// The endpoint was closed and its queue drained.
    Closed,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "receive timed out"),
            RecvError::Closed => write!(f, "endpoint closed"),
        }
    }
}

impl std::error::Error for RecvError {}

/// A byte-moving network: the lowest layer of the RMI stack. Implemented by
/// [`crate::InProcNetwork`] (tests, examples, simulations) and
/// [`crate::TcpHost`] (real sockets).
pub trait Network: Send + Sync {
    /// Delivers `payload` from `from` to `to`.
    ///
    /// # Errors
    ///
    /// [`SendError::Unreachable`] when the destination is unknown or closed.
    /// A successful return means *accepted for delivery*, not processed —
    /// injected message loss looks like success, exactly like UDP.
    fn send(&self, from: EndpointId, to: EndpointId, payload: Vec<u8>) -> Result<(), SendError>;

    /// Whether `id` is known to be reachable. This is a *connection health*
    /// hint, not a delivery guarantee: `false` means the endpoint is
    /// definitely gone (a TCP RST, a closed in-proc registry entry) and a
    /// waiter should fail over immediately instead of burning its reply
    /// timeout; `true` means nothing stronger than "not known dead" — the
    /// default for transports that cannot tell.
    fn endpoint_open(&self, id: EndpointId) -> bool {
        let _ = id;
        true
    }

    /// Whether the path toward `id` is congested: the transport has more
    /// outbound bytes queued for that destination than its high-water mark
    /// and a pipelined caller should stop injecting until it clears. Like
    /// [`Network::endpoint_open`] this is advisory — `false` is the safe
    /// default for transports that cannot tell (sends still succeed either
    /// way; the queue just grows).
    fn backpressure(&self, to: EndpointId) -> bool {
        let _ = to;
        false
    }
}

/// A [`Network`] that can also mint and retire endpoints locally — what a
/// pool runtime needs to host skeletons. Implemented by
/// [`crate::InProcNetwork`] and [`crate::TcpHost`].
pub trait Host: Network {
    /// Opens a fresh endpoint on this host.
    fn open(&self) -> (EndpointId, Mailbox);
    /// Closes a local endpoint; later sends to it fail with
    /// [`SendError::Unreachable`].
    fn close(&self, id: EndpointId);
}

/// The receiving half of an endpoint.
#[derive(Debug)]
pub struct Mailbox {
    id: EndpointId,
    receiver: Receiver<Datagram>,
}

impl Mailbox {
    pub(crate) fn new(id: EndpointId, receiver: Receiver<Datagram>) -> Self {
        Mailbox { id, receiver }
    }

    /// This mailbox's endpoint id.
    pub fn id(&self) -> EndpointId {
        self.id
    }

    /// Blocks until a datagram arrives.
    ///
    /// # Errors
    ///
    /// [`RecvError::Closed`] once the endpoint is closed and drained.
    pub fn recv(&self) -> Result<Datagram, RecvError> {
        self.receiver.recv().map_err(|_| RecvError::Closed)
    }

    /// Waits up to `timeout` for a datagram.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] on expiry, [`RecvError::Closed`] when closed.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Datagram, RecvError> {
        self.receiver.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RecvError::Timeout,
            RecvTimeoutError::Disconnected => RecvError::Closed,
        })
    }

    /// Returns a datagram if one is already queued.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] when empty, [`RecvError::Closed`] when closed.
    pub fn try_recv(&self) -> Result<Datagram, RecvError> {
        self.receiver.try_recv().map_err(|e| match e {
            TryRecvError::Empty => RecvError::Timeout,
            TryRecvError::Disconnected => RecvError::Closed,
        })
    }

    /// Number of queued datagrams.
    pub fn len(&self) -> usize {
        self.receiver.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.receiver.is_empty()
    }
}
