//! Readiness-polling helpers for socket tests.
//!
//! Socket tests used to sprinkle raw `recv_timeout(5s)` calls and
//! hand-rolled accept loops; under CI load the fixed bounds flake and the
//! failure messages say nothing about *what* never arrived. These helpers
//! poll readiness with one generous shared deadline and panic with the
//! caller's description of the thing being waited for.
//!
//! This module is test support shared between the crate's unit tests and
//! its integration tests (and downstream crates' socket tests); it is not
//! part of the stable transport API.

use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use crate::endpoint::{Datagram, Mailbox, RecvError};

/// Ceiling on any single wait. Generous on purpose: a correct system
/// passes in milliseconds; the bound only decides how long a genuinely
/// broken run takes to fail.
pub const TEST_DEADLINE: Duration = Duration::from_secs(30);

/// How often predicates are re-checked while waiting.
const PROBE: Duration = Duration::from_millis(2);

/// Receives the next datagram, waiting up to [`TEST_DEADLINE`].
///
/// # Panics
///
/// Panics with `what` if nothing arrives in time or the mailbox closes.
pub fn recv_ready(mailbox: &Mailbox, what: &str) -> Datagram {
    let deadline = Instant::now() + TEST_DEADLINE;
    loop {
        match mailbox.recv_timeout(Duration::from_millis(50)) {
            Ok(datagram) => return datagram,
            Err(RecvError::Timeout) => assert!(
                Instant::now() < deadline,
                "timed out after {TEST_DEADLINE:?} waiting for {what}"
            ),
            Err(RecvError::Closed) => panic!("mailbox closed while waiting for {what}"),
        }
    }
}

/// Polls `pred` until it returns true.
///
/// # Panics
///
/// Panics with `what` if the predicate is still false at [`TEST_DEADLINE`].
pub fn eventually(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + TEST_DEADLINE;
    while !pred() {
        assert!(
            Instant::now() < deadline,
            "condition not reached within {TEST_DEADLINE:?}: {what}"
        );
        std::thread::sleep(PROBE);
    }
}

/// Accepts one connection from a *nonblocking* listener, returned blocking
/// with a read timeout of [`TEST_DEADLINE`] so a wedged test fails loudly
/// instead of hanging.
///
/// # Panics
///
/// Panics with `what` if no connection arrives in time.
pub fn accept_ready(listener: &TcpListener, what: &str) -> TcpStream {
    let deadline = Instant::now() + TEST_DEADLINE;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).unwrap();
                stream.set_read_timeout(Some(TEST_DEADLINE)).unwrap();
                return stream;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                assert!(
                    Instant::now() < deadline,
                    "no connection within {TEST_DEADLINE:?}: {what}"
                );
                std::thread::sleep(PROBE);
            }
            Err(e) => panic!("accept failed while waiting for {what}: {e}"),
        }
    }
}
