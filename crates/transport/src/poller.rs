//! A minimal readiness poller over `poll(2)` — the hand-rolled event-loop
//! substrate behind [`crate::TcpHost`].
//!
//! The repo's dependency policy is "no heavy I/O crates" (no mio, no tokio),
//! so this module binds the three POSIX calls an event loop actually needs
//! (`poll`, `pipe`, `fcntl`) directly. `poll(2)` instead of `epoll(7)`
//! keeps the wrapper portable across Unixes and is O(n) in *registered*
//! fds per wait — fine for the hundreds of connections a host drives; the
//! interest list is rebuilt per wait from the caller's live set, which
//! sidesteps all of epoll's registration bookkeeping.
//!
//! Cross-thread wakeup uses the classic self-pipe trick: [`Waker::wake`]
//! writes one byte to a nonblocking pipe whose read end sits in every
//! interest set; [`Poller::wait`] drains it and reports `woken`.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

#[allow(non_camel_case_types)]
mod sys {
    use std::os::raw::{c_int, c_short, c_void};

    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct pollfd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    #[cfg(target_os = "linux")]
    pub const O_NONBLOCK: c_int = 0o4000;
    #[cfg(not(target_os = "linux"))]
    pub const O_NONBLOCK: c_int = 0x0004;

    // `nfds_t` is `unsigned long` on Linux/glibc and `unsigned int` on the
    // BSDs; on the LP64 SysV ABI passing the wider type is benign, so the
    // Linux signature is used everywhere.
    pub type nfds_t = std::os::raw::c_ulong;

    extern "C" {
        pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    }
}

fn set_nonblocking_fd(fd: RawFd) -> io::Result<()> {
    // SAFETY: plain fcntl on an fd we own; no memory is passed.
    unsafe {
        let flags = sys::fcntl(fd, sys::F_GETFL, 0);
        if flags < 0 {
            return Err(io::Error::last_os_error());
        }
        if sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

/// What a caller wants to hear about one fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd accepts more bytes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read-plus-write interest (a link with pending output).
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The fd the report is about.
    pub fd: RawFd,
    /// Bytes (or a pending accept, or a hangup) are waiting to be read.
    pub readable: bool,
    /// The socket accepts more bytes.
    pub writable: bool,
    /// `POLLERR`/`POLLHUP`/`POLLNVAL`: the connection is dead or the fd
    /// invalid; the owner should tear it down.
    pub error: bool,
}

/// The waitable half. Owns the self-pipe read end.
#[derive(Debug)]
pub struct Poller {
    wake_rx: RawFd,
}

/// Cloneable cross-thread wakeup handle (self-pipe write end).
#[derive(Debug)]
pub struct Waker {
    wake_tx: RawFd,
}

impl Poller {
    /// Creates a poller and its wakeup handle.
    ///
    /// # Errors
    ///
    /// Propagates `pipe(2)`/`fcntl(2)` failures (fd exhaustion).
    pub fn new() -> io::Result<(Poller, Waker)> {
        let mut fds = [0i32; 2];
        // SAFETY: pipe writes exactly two fds into the array.
        if unsafe { sys::pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        let (rx, tx) = (fds[0], fds[1]);
        set_nonblocking_fd(rx)?;
        set_nonblocking_fd(tx)?;
        Ok((Poller { wake_rx: rx }, Waker { wake_tx: tx }))
    }

    /// Blocks until any registered fd is ready, the timeout passes, or a
    /// [`Waker::wake`] arrives. Ready fds are appended to `events`
    /// (cleared first); returns whether a wakeup was among them.
    ///
    /// # Errors
    ///
    /// Propagates `poll(2)` failures other than `EINTR` (which retries).
    pub fn wait(
        &self,
        fds: &[(RawFd, Interest)],
        timeout: Option<Duration>,
        events: &mut Vec<Event>,
    ) -> io::Result<bool> {
        events.clear();
        let mut pollfds: Vec<sys::pollfd> = Vec::with_capacity(fds.len() + 1);
        pollfds.push(sys::pollfd {
            fd: self.wake_rx,
            events: sys::POLLIN,
            revents: 0,
        });
        for &(fd, interest) in fds {
            let mut ev = 0;
            if interest.readable {
                ev |= sys::POLLIN;
            }
            if interest.writable {
                ev |= sys::POLLOUT;
            }
            pollfds.push(sys::pollfd {
                fd,
                events: ev,
                revents: 0,
            });
        }
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        loop {
            // SAFETY: pollfds outlives the call and nfds matches its length.
            let n = unsafe {
                sys::poll(
                    pollfds.as_mut_ptr(),
                    pollfds.len() as sys::nfds_t,
                    timeout_ms,
                )
            };
            if n >= 0 {
                break;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
        let woken = pollfds[0].revents != 0;
        if woken {
            self.drain_wake();
        }
        for pfd in &pollfds[1..] {
            if pfd.revents == 0 {
                continue;
            }
            events.push(Event {
                fd: pfd.fd,
                readable: pfd.revents & sys::POLLIN != 0,
                writable: pfd.revents & sys::POLLOUT != 0,
                error: pfd.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0,
            });
        }
        Ok(woken)
    }

    fn drain_wake(&self) {
        let mut buf = [0u8; 64];
        // SAFETY: reading into a local buffer from our nonblocking pipe.
        while unsafe { sys::read(self.wake_rx, buf.as_mut_ptr().cast(), buf.len()) } > 0 {}
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: closing an fd we own exactly once.
        unsafe { sys::close(self.wake_rx) };
    }
}

impl Waker {
    /// Interrupts a concurrent (or the next) [`Poller::wait`]. Lock-free and
    /// signal-safe; a full pipe means a wakeup is already pending, which is
    /// all a level-triggered loop needs.
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: writing one byte from a local to our nonblocking pipe.
        unsafe { sys::write(self.wake_tx, (&byte as *const u8).cast(), 1) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: closing an fd we own exactly once.
        unsafe { sys::close(self.wake_tx) };
    }
}

// The write end travels to whichever threads need to nudge the loop.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn wake_interrupts_an_idle_wait() {
        let (poller, waker) = Poller::new().unwrap();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let mut events = Vec::new();
        let woken = poller
            .wait(&[], Some(Duration::from_secs(5)), &mut events)
            .unwrap();
        assert!(woken, "the waker must interrupt the wait");
        assert!(events.is_empty());
        handle.join().unwrap();
    }

    #[test]
    fn readable_socket_is_reported() {
        use std::os::fd::AsRawFd;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.write_all(b"x").unwrap();
        let (poller, _waker) = Poller::new().unwrap();
        let mut events = Vec::new();
        poller
            .wait(
                &[(server.as_raw_fd(), Interest::READ)],
                Some(Duration::from_secs(5)),
                &mut events,
            )
            .unwrap();
        assert!(
            events
                .iter()
                .any(|e| e.fd == server.as_raw_fd() && e.readable),
            "pending byte must mark the socket readable: {events:?}"
        );
    }

    #[test]
    fn timeout_returns_empty() {
        let (poller, _waker) = Poller::new().unwrap();
        let mut events = Vec::new();
        let woken = poller
            .wait(&[], Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert!(!woken);
        assert!(events.is_empty());
    }
}
