//! A compact, non-self-describing binary wire format.
//!
//! This is the marshalling layer that Java RMI gets from object
//! serialization and the paper's stubs/skeletons perform when they
//! "serialize and marshal parameters" (§2.3). Remote method arguments and
//! return values of any `Serialize`/`Deserialize` type travel through
//! [`to_bytes`]/[`from_bytes`].
//!
//! Encoding rules (little-endian throughout):
//!
//! * fixed-width integers and floats as their raw bytes,
//! * `bool` as one byte (0/1),
//! * `char` as a `u32` scalar value,
//! * strings and byte strings as a `u32` length followed by the bytes,
//! * `Option` as a 0/1 tag followed by the value,
//! * sequences and maps as a `u32` length followed by the elements,
//! * enum variants as a `u32` variant index followed by the payload,
//! * structs and tuples as their fields in order, with no framing.
//!
//! The format is not self-describing: decoding drives off the target type
//! (like bincode). The encoding itself is implemented by the `serde` traits
//! (each type writes and reads its own bytes); this module contributes the
//! whole-message contract — a complete value, no trailing bytes — and the
//! [`WireError`] type the rest of the workspace reports.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Errors produced by the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    UnexpectedEof,
    /// Decoded bytes that are not valid for the target type.
    Invalid(String),
    /// A feature of the serde data model this format does not support.
    Unsupported(&'static str),
    /// Error bubbled up from a `Serialize`/`Deserialize` impl.
    Custom(String),
    /// Input had trailing bytes after a complete value.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of input"),
            WireError::Invalid(what) => write!(f, "invalid encoding: {what}"),
            WireError::Unsupported(what) => write!(f, "unsupported serde feature: {what}"),
            WireError::Custom(msg) => write!(f, "{msg}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<serde::Error> for WireError {
    fn from(e: serde::Error) -> WireError {
        match e {
            serde::Error::UnexpectedEof => WireError::UnexpectedEof,
            serde::Error::Invalid(what) => WireError::Invalid(what),
            serde::Error::Custom(msg) => WireError::Custom(msg),
        }
    }
}

/// Serializes `value` into a fresh byte vector.
///
/// # Errors
///
/// Infallible for every type in this workspace; the `Result` is kept so
/// callers are insulated from future fallible encodings (and it mirrors the
/// API of format crates like bincode).
///
/// # Example
///
/// ```
/// let bytes = erm_transport::to_bytes(&(42u32, "hello")).unwrap();
/// let back: (u32, String) = erm_transport::from_bytes(&bytes).unwrap();
/// assert_eq!(back, (42, "hello".to_string()));
/// ```
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::new();
    value.serialize(&mut out);
    Ok(out)
}

/// Deserializes a value of type `T` from `bytes`, requiring the input to be
/// consumed exactly.
///
/// # Errors
///
/// Returns [`WireError::UnexpectedEof`] on truncated input,
/// [`WireError::TrailingBytes`] when input remains after the value, and
/// [`WireError::Invalid`] on malformed data (e.g. non-UTF-8 strings).
pub fn from_bytes<'a, T: Deserialize<'a>>(bytes: &'a [u8]) -> Result<T, WireError> {
    let mut input = bytes;
    let value = T::deserialize(&mut input)?;
    if input.is_empty() {
        Ok(value)
    } else {
        Err(WireError::TrailingBytes(input.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn roundtrip<T: Serialize + for<'a> Deserialize<'a> + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = to_bytes(&value).unwrap();
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Order {
        id: u64,
        symbol: String,
        quantity: i32,
        limit: Option<f64>,
        tags: Vec<String>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Command {
        Ping,
        Put { key: String, value: Vec<u8> },
        Batch(Vec<Command>),
        Pair(u8, u8),
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(true);
        roundtrip(false);
        roundtrip(-42i8);
        roundtrip(i64::MIN);
        roundtrip(u64::MAX);
        roundtrip(u128::MAX);
        roundtrip(3.25f32);
        roundtrip(f64::MIN_POSITIVE);
        roundtrip('λ');
        roundtrip(());
    }

    #[test]
    fn strings_and_bytes_roundtrip() {
        roundtrip(String::from("hello, 世界"));
        roundtrip(String::new());
        roundtrip(vec![0u8, 255, 127]);
    }

    #[test]
    fn options_roundtrip() {
        roundtrip(Option::<u32>::None);
        roundtrip(Some(7u32));
        roundtrip(Some(Some(false)));
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u32>::new());
        let mut map = HashMap::new();
        map.insert("a".to_string(), 1u64);
        map.insert("b".to_string(), 2u64);
        roundtrip(map);
    }

    #[test]
    fn structs_roundtrip() {
        roundtrip(Order {
            id: 99,
            symbol: "HPQ".into(),
            quantity: -500,
            limit: Some(23.5),
            tags: vec!["algo".into(), "ioc".into()],
        });
    }

    #[test]
    fn enums_roundtrip() {
        roundtrip(Command::Ping);
        roundtrip(Command::Put {
            key: "k".into(),
            value: vec![1, 2, 3],
        });
        roundtrip(Command::Batch(vec![Command::Ping, Command::Pair(1, 2)]));
    }

    #[test]
    fn nested_generics_roundtrip() {
        roundtrip(vec![Some((1u8, "x".to_string())), None]);
        roundtrip(Result::<u32, String>::Ok(5));
        roundtrip(Result::<u32, String>::Err("boom".into()));
    }

    #[test]
    fn truncated_input_is_eof() {
        let bytes = to_bytes(&12345u64).unwrap();
        let err = from_bytes::<u64>(&bytes[..4]).unwrap_err();
        assert_eq!(err, WireError::UnexpectedEof);
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = to_bytes(&1u8).unwrap();
        bytes.push(0);
        let err = from_bytes::<u8>(&bytes).unwrap_err();
        assert_eq!(err, WireError::TrailingBytes(1));
    }

    #[test]
    fn invalid_bool_rejected() {
        let err = from_bytes::<bool>(&[2]).unwrap_err();
        assert!(matches!(err, WireError::Invalid(_)));
    }

    #[test]
    fn invalid_utf8_rejected() {
        // Length 2, then invalid UTF-8.
        let bytes = [2, 0, 0, 0, 0xff, 0xfe];
        let err = from_bytes::<String>(&bytes).unwrap_err();
        assert!(matches!(err, WireError::Invalid(_)));
    }

    #[test]
    fn invalid_char_scalar_rejected() {
        let bytes = 0xD800u32.to_le_bytes(); // surrogate, not a char
        let err = from_bytes::<char>(&bytes).unwrap_err();
        assert!(matches!(err, WireError::Invalid(_)));
    }

    #[test]
    fn encoding_is_compact() {
        // u32 + u8 should be exactly 5 bytes: no framing overhead.
        assert_eq!(to_bytes(&(7u32, 1u8)).unwrap().len(), 5);
        // An empty vec is just its 4-byte length.
        assert_eq!(to_bytes(&Vec::<u64>::new()).unwrap().len(), 4);
    }
}

/// Seeded randomized roundtrips: deterministic replacements for the former
/// proptest properties (the build environment cannot fetch proptest).
#[cfg(test)]
mod randomized {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_string(rng: &mut StdRng) -> String {
        let len = rng.gen_range(0usize..64);
        (0..len)
            .map(|_| loop {
                // Any scalar value, surrogates excluded by from_u32.
                if let Some(c) = char::from_u32(rng.gen_range(0u32..=0x10FFFF)) {
                    return c;
                }
            })
            .collect()
    }

    #[test]
    fn roundtrip_primitives_full_range() {
        let mut rng = StdRng::seed_from_u64(0xE1A5);
        for _ in 0..500 {
            let a: i64 = rng.gen();
            let b = f64::from_bits(rng.gen());
            let c: bool = rng.gen();
            let bytes = to_bytes(&(a, b, c)).unwrap();
            let (a2, b2, c2): (i64, f64, bool) = from_bytes(&bytes).unwrap();
            assert_eq!(a, a2);
            assert!(b == b2 || (b.is_nan() && b2.is_nan()));
            assert_eq!(c, c2);
        }
    }

    #[test]
    fn roundtrip_random_strings() {
        let mut rng = StdRng::seed_from_u64(0x57F1);
        for _ in 0..200 {
            let s = rand_string(&mut rng);
            let bytes = to_bytes(&s).unwrap();
            let s2: String = from_bytes(&bytes).unwrap();
            assert_eq!(s, s2);
        }
    }

    #[test]
    fn truncation_is_graceful() {
        let mut rng = StdRng::seed_from_u64(0x7A0C);
        for _ in 0..200 {
            let len = rng.gen_range(0usize..32);
            let values: Vec<u32> = (0..len).map(|_| rng.gen()).collect();
            let bytes = to_bytes(&values).unwrap();
            let cut = rng.gen_range(0usize..200).min(bytes.len());
            // Must error or succeed — never panic.
            let _ = from_bytes::<Vec<u32>>(&bytes[..cut]);
        }
    }

    #[test]
    fn vec_u32_size_formula() {
        let mut rng = StdRng::seed_from_u64(0x5123);
        for _ in 0..100 {
            let len = rng.gen_range(0usize..64);
            let values: Vec<u32> = (0..len).map(|_| rng.gen()).collect();
            let bytes = to_bytes(&values).unwrap();
            assert_eq!(bytes.len(), 4 + 4 * values.len());
        }
    }
}
