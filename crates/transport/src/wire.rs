//! A compact, non-self-describing binary serde format.
//!
//! This is the marshalling layer that Java RMI gets from object
//! serialization and the paper's stubs/skeletons perform when they
//! "serialize and marshal parameters" (§2.3). Remote method arguments and
//! return values of any `Serialize`/`Deserialize` type travel through
//! [`to_bytes`]/[`from_bytes`].
//!
//! Encoding rules (little-endian throughout):
//!
//! * fixed-width integers and floats as their raw bytes,
//! * `bool` as one byte (0/1),
//! * `char` as a `u32` scalar value,
//! * strings and byte strings as a `u32` length followed by the bytes,
//! * `Option` as a 0/1 tag followed by the value,
//! * sequences and maps as a `u32` length followed by the elements,
//! * enum variants as a `u32` variant index followed by the payload,
//! * structs and tuples as their fields in order, with no framing.
//!
//! The format is not self-describing: decoding drives off the target type,
//! so `deserialize_any` is unsupported (like bincode).

use std::fmt;

use serde::de::{self, DeserializeSeed, Visitor};
use serde::{ser, Deserialize, Serialize};

/// Errors produced by the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    UnexpectedEof,
    /// Decoded bytes that are not valid for the target type.
    Invalid(String),
    /// A feature of the serde data model this format does not support.
    Unsupported(&'static str),
    /// Error bubbled up from a `Serialize`/`Deserialize` impl.
    Custom(String),
    /// Input had trailing bytes after a complete value.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of input"),
            WireError::Invalid(what) => write!(f, "invalid encoding: {what}"),
            WireError::Unsupported(what) => write!(f, "unsupported serde feature: {what}"),
            WireError::Custom(msg) => write!(f, "{msg}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for WireError {}

impl ser::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Custom(msg.to_string())
    }
}

impl de::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Custom(msg.to_string())
    }
}

/// Serializes `value` into a fresh byte vector.
///
/// # Errors
///
/// Returns [`WireError::Unsupported`] for unlength-ed sequences and
/// [`WireError::Custom`] for errors raised by the type's `Serialize` impl.
///
/// # Example
///
/// ```
/// let bytes = erm_transport::to_bytes(&(42u32, "hello")).unwrap();
/// let back: (u32, String) = erm_transport::from_bytes(&bytes).unwrap();
/// assert_eq!(back, (42, "hello".to_string()));
/// ```
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, WireError> {
    let mut serializer = BinSerializer { out: Vec::new() };
    value.serialize(&mut serializer)?;
    Ok(serializer.out)
}

/// Deserializes a value of type `T` from `bytes`, requiring the input to be
/// consumed exactly.
///
/// # Errors
///
/// Returns [`WireError::UnexpectedEof`] on truncated input,
/// [`WireError::TrailingBytes`] when input remains after the value, and
/// [`WireError::Invalid`] on malformed data (e.g. non-UTF-8 strings).
pub fn from_bytes<'a, T: Deserialize<'a>>(bytes: &'a [u8]) -> Result<T, WireError> {
    let mut deserializer = BinDeserializer { input: bytes };
    let value = T::deserialize(&mut deserializer)?;
    if deserializer.input.is_empty() {
        Ok(value)
    } else {
        Err(WireError::TrailingBytes(deserializer.input.len()))
    }
}

struct BinSerializer {
    out: Vec<u8>,
}

impl BinSerializer {
    fn write_len(&mut self, len: usize) -> Result<(), WireError> {
        let len32 = u32::try_from(len)
            .map_err(|_| WireError::Invalid(format!("length {len} exceeds u32")))?;
        self.out.extend_from_slice(&len32.to_le_bytes());
        Ok(())
    }
}

macro_rules! ser_fixed {
    ($method:ident, $ty:ty) => {
        fn $method(self, v: $ty) -> Result<(), WireError> {
            self.out.extend_from_slice(&v.to_le_bytes());
            Ok(())
        }
    };
}

impl<'a> ser::Serializer for &'a mut BinSerializer {
    type Ok = ();
    type Error = WireError;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), WireError> {
        self.out.push(u8::from(v));
        Ok(())
    }

    ser_fixed!(serialize_i8, i8);
    ser_fixed!(serialize_i16, i16);
    ser_fixed!(serialize_i32, i32);
    ser_fixed!(serialize_i64, i64);
    ser_fixed!(serialize_i128, i128);
    ser_fixed!(serialize_u8, u8);
    ser_fixed!(serialize_u16, u16);
    ser_fixed!(serialize_u32, u32);
    ser_fixed!(serialize_u64, u64);
    ser_fixed!(serialize_u128, u128);
    ser_fixed!(serialize_f32, f32);
    ser_fixed!(serialize_f64, f64);

    fn serialize_char(self, v: char) -> Result<(), WireError> {
        self.serialize_u32(v as u32)
    }

    fn serialize_str(self, v: &str) -> Result<(), WireError> {
        self.write_len(v.len())?;
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), WireError> {
        self.write_len(v.len())?;
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), WireError> {
        self.out.push(0);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), WireError> {
        self.out.push(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), WireError> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), WireError> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), WireError> {
        self.serialize_u32(variant_index)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Compound<'a>, WireError> {
        let len = len.ok_or(WireError::Unsupported("sequences of unknown length"))?;
        self.write_len(len)?;
        Ok(Compound { ser: self })
    }

    fn serialize_tuple(self, _len: usize) -> Result<Compound<'a>, WireError> {
        Ok(Compound { ser: self })
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, WireError> {
        Ok(Compound { ser: self })
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, WireError> {
        self.serialize_u32(variant_index)?;
        Ok(Compound { ser: self })
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Compound<'a>, WireError> {
        let len = len.ok_or(WireError::Unsupported("maps of unknown length"))?;
        self.write_len(len)?;
        Ok(Compound { ser: self })
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, WireError> {
        Ok(Compound { ser: self })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, WireError> {
        self.serialize_u32(variant_index)?;
        Ok(Compound { ser: self })
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

/// Shared compound serializer for sequences, tuples, maps and structs.
pub struct Compound<'a> {
    ser: &'a mut BinSerializer,
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = WireError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = WireError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = WireError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), WireError> {
        key.serialize(&mut *self.ser)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

struct BinDeserializer<'de> {
    input: &'de [u8],
}

impl<'de> BinDeserializer<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], WireError> {
        if self.input.len() < n {
            return Err(WireError::UnexpectedEof);
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn read_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn read_u32(&mut self) -> Result<u32, WireError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    fn read_len(&mut self) -> Result<usize, WireError> {
        Ok(self.read_u32()? as usize)
    }
}

macro_rules! de_fixed {
    ($method:ident, $visit:ident, $ty:ty, $n:expr) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
            let bytes = self.take($n)?;
            visitor.$visit(<$ty>::from_le_bytes(bytes.try_into().expect("fixed width")))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut BinDeserializer<'de> {
    type Error = WireError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::Unsupported(
            "deserialize_any (format is not self-describing)",
        ))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.read_u8()? {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            other => Err(WireError::Invalid(format!("bool tag {other}"))),
        }
    }

    de_fixed!(deserialize_i8, visit_i8, i8, 1);
    de_fixed!(deserialize_i16, visit_i16, i16, 2);
    de_fixed!(deserialize_i32, visit_i32, i32, 4);
    de_fixed!(deserialize_i64, visit_i64, i64, 8);
    de_fixed!(deserialize_i128, visit_i128, i128, 16);
    de_fixed!(deserialize_u8, visit_u8, u8, 1);
    de_fixed!(deserialize_u16, visit_u16, u16, 2);
    de_fixed!(deserialize_u32, visit_u32, u32, 4);
    de_fixed!(deserialize_u64, visit_u64, u64, 8);
    de_fixed!(deserialize_u128, visit_u128, u128, 16);
    de_fixed!(deserialize_f32, visit_f32, f32, 4);
    de_fixed!(deserialize_f64, visit_f64, f64, 8);

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let scalar = self.read_u32()?;
        let c = char::from_u32(scalar)
            .ok_or_else(|| WireError::Invalid(format!("char scalar {scalar:#x}")))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.read_len()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes)
            .map_err(|e| WireError::Invalid(format!("string is not UTF-8: {e}")))?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.read_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.read_u8()? {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            other => Err(WireError::Invalid(format!("option tag {other}"))),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.read_len()?;
        visitor.visit_seq(CountedAccess { de: self, remaining: len })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_seq(CountedAccess { de: self, remaining: len })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.read_len()?;
        visitor.visit_map(CountedAccess { de: self, remaining: len })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::Unsupported("identifier deserialization"))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::Unsupported(
            "ignored_any (format is not self-describing)",
        ))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct CountedAccess<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
    remaining: usize,
}

impl<'de> de::SeqAccess<'de> for CountedAccess<'_, 'de> {
    type Error = WireError;

    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, WireError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de> de::MapAccess<'de> for CountedAccess<'_, 'de> {
    type Error = WireError;

    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, WireError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value, WireError> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
}

impl<'de> de::EnumAccess<'de> for EnumAccess<'_, 'de> {
    type Error = WireError;
    type Variant = Self;

    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), WireError> {
        let index = self.de.read_u32()?;
        let value = seed.deserialize(de::value::U32Deserializer::<WireError>::new(index))?;
        Ok((value, self))
    }
}

impl<'de> de::VariantAccess<'de> for EnumAccess<'_, 'de> {
    type Error = WireError;

    fn unit_variant(self) -> Result<(), WireError> {
        Ok(())
    }

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value, WireError> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, WireError> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn roundtrip<T: Serialize + for<'a> Deserialize<'a> + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = to_bytes(&value).unwrap();
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Order {
        id: u64,
        symbol: String,
        quantity: i32,
        limit: Option<f64>,
        tags: Vec<String>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Command {
        Ping,
        Put { key: String, value: Vec<u8> },
        Batch(Vec<Command>),
        Pair(u8, u8),
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(true);
        roundtrip(false);
        roundtrip(-42i8);
        roundtrip(i64::MIN);
        roundtrip(u64::MAX);
        roundtrip(u128::MAX);
        roundtrip(3.25f32);
        roundtrip(f64::MIN_POSITIVE);
        roundtrip('λ');
        roundtrip(());
    }

    #[test]
    fn strings_and_bytes_roundtrip() {
        roundtrip(String::from("hello, 世界"));
        roundtrip(String::new());
        roundtrip(vec![0u8, 255, 127]);
    }

    #[test]
    fn options_roundtrip() {
        roundtrip(Option::<u32>::None);
        roundtrip(Some(7u32));
        roundtrip(Some(Some(false)));
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u32>::new());
        let mut map = HashMap::new();
        map.insert("a".to_string(), 1u64);
        map.insert("b".to_string(), 2u64);
        roundtrip(map);
    }

    #[test]
    fn structs_roundtrip() {
        roundtrip(Order {
            id: 99,
            symbol: "HPQ".into(),
            quantity: -500,
            limit: Some(23.5),
            tags: vec!["algo".into(), "ioc".into()],
        });
    }

    #[test]
    fn enums_roundtrip() {
        roundtrip(Command::Ping);
        roundtrip(Command::Put {
            key: "k".into(),
            value: vec![1, 2, 3],
        });
        roundtrip(Command::Batch(vec![Command::Ping, Command::Pair(1, 2)]));
    }

    #[test]
    fn nested_generics_roundtrip() {
        roundtrip(vec![Some((1u8, "x".to_string())), None]);
        roundtrip(Result::<u32, String>::Ok(5));
        roundtrip(Result::<u32, String>::Err("boom".into()));
    }

    #[test]
    fn truncated_input_is_eof() {
        let bytes = to_bytes(&12345u64).unwrap();
        let err = from_bytes::<u64>(&bytes[..4]).unwrap_err();
        assert_eq!(err, WireError::UnexpectedEof);
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = to_bytes(&1u8).unwrap();
        bytes.push(0);
        let err = from_bytes::<u8>(&bytes).unwrap_err();
        assert_eq!(err, WireError::TrailingBytes(1));
    }

    #[test]
    fn invalid_bool_rejected() {
        let err = from_bytes::<bool>(&[2]).unwrap_err();
        assert!(matches!(err, WireError::Invalid(_)));
    }

    #[test]
    fn invalid_utf8_rejected() {
        // Length 2, then invalid UTF-8.
        let bytes = [2, 0, 0, 0, 0xff, 0xfe];
        let err = from_bytes::<String>(&bytes).unwrap_err();
        assert!(matches!(err, WireError::Invalid(_)));
    }

    #[test]
    fn invalid_char_scalar_rejected() {
        let bytes = 0xD800u32.to_le_bytes(); // surrogate, not a char
        let err = from_bytes::<char>(&bytes).unwrap_err();
        assert!(matches!(err, WireError::Invalid(_)));
    }

    #[test]
    fn encoding_is_compact() {
        // u32 + u8 should be exactly 5 bytes: no framing overhead.
        assert_eq!(to_bytes(&(7u32, 1u8)).unwrap().len(), 5);
        // An empty vec is just its 4-byte length.
        assert_eq!(to_bytes(&Vec::<u64>::new()).unwrap().len(), 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Primitive roundtrips for the full value ranges.
        #[test]
        fn roundtrip_primitives(a in any::<i64>(), b in any::<f64>(), c in any::<bool>()) {
            let bytes = to_bytes(&(a, b, c)).unwrap();
            let (a2, b2, c2): (i64, f64, bool) = from_bytes(&bytes).unwrap();
            prop_assert_eq!(a, a2);
            prop_assert!(b == b2 || (b.is_nan() && b2.is_nan()));
            prop_assert_eq!(c, c2);
        }

        /// Strings of arbitrary unicode roundtrip.
        #[test]
        fn roundtrip_strings(s in "\\PC{0,64}") {
            let bytes = to_bytes(&s).unwrap();
            let s2: String = from_bytes(&bytes).unwrap();
            prop_assert_eq!(s, s2);
        }

        /// Truncating a valid encoding never panics; it errors.
        #[test]
        fn truncation_is_graceful(
            values in proptest::collection::vec(any::<u32>(), 0..32),
            cut in 0usize..200,
        ) {
            let bytes = to_bytes(&values).unwrap();
            let cut = cut.min(bytes.len());
            let _ = from_bytes::<Vec<u32>>(&bytes[..cut]);
        }

        /// Encoded size of a u32 vector is exactly 4 + 4n (compactness
        /// contract other crates rely on for capacity planning).
        #[test]
        fn vec_u32_size_formula(values in proptest::collection::vec(any::<u32>(), 0..64)) {
            let bytes = to_bytes(&values).unwrap();
            prop_assert_eq!(bytes.len(), 4 + 4 * values.len());
        }
    }
}
