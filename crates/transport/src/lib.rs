#![warn(missing_docs)]

//! RMI wire layer for the ElasticRMI reproduction (paper §2.3).
//!
//! Three layers live here, mirroring what Java RMI gives the paper for free:
//!
//! 1. **Marshalling** — [`to_bytes`]/[`from_bytes`], a compact binary serde
//!    format standing in for Java object serialization (see [`mod@wire`]'s
//!    module docs for the encoding).
//! 2. **Endpoints** — [`EndpointId`], [`Mailbox`] and the [`Network`] trait:
//!    opaque datagrams between addressable endpoints.
//! 3. **Transports** — [`InProcNetwork`] (channels within one process, with
//!    crash/partition fault injection for tests) and [`TcpHost`] (real
//!    sockets, frame-delimited).
//!
//! The RMI *protocol* — requests, responses, redirects, pool-control
//! messages — is defined one layer up, in the `elasticrmi` crate; this crate
//! only moves bytes.

pub mod testutil;
pub mod wire;

mod endpoint;
mod inproc;
mod poller;
mod tcp;

pub use endpoint::{Datagram, EndpointId, Host, Mailbox, Network, RecvError, SendError};
pub use inproc::InProcNetwork;
pub use tcp::{TcpHost, TcpStats, LINK_HIGH_WATER_BYTES};
pub use wire::{from_bytes, to_bytes, WireError};
